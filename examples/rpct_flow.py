#!/usr/bin/env python
"""Reduced pin-count testing: the three scan architectures of Figure 4.

For the same test set we drive, cycle-accurately:

  (a) single scan chain, one pin          (Figure 4a)
  (b) m scan chains, still one pin        (Figure 4b) — same test time
  (c) m scan chains, m/K pins + decoders  (Figure 4c) — time / (m/K)

Run:  python examples/rpct_flow.py
"""

from repro.analysis import Table
from repro.core import NineCEncoder
from repro.decompressor import (
    ATEChannel,
    MultiScanDecompressor,
    ParallelDecompressor,
    SingleScanDecompressor,
)
from repro.testdata import TestSet, fill_test_set, load_benchmark

K = 8
P = 8  # f_scan = 8 x f_ate
NUM_CHAINS = 32


def main() -> None:
    bench = load_benchmark("s9234")
    # Pad the scan width to a chain multiple for the multi-chain builds.
    width = ((bench.num_cells + NUM_CHAINS - 1) // NUM_CHAINS) * NUM_CHAINS
    padded = TestSet([p.padded(width) for p in bench], name=bench.name)
    test_set = fill_test_set(padded, "mt")  # what the ATE would apply
    stream = test_set.to_stream()
    encoding = NineCEncoder(K).encode(stream)
    channel = ATEChannel(f_ate_hz=50e6, p=P)

    print(f"{bench.name}: {test_set.num_patterns} patterns x "
          f"{width} cells = {test_set.total_bits} bits, "
          f"CR @ K={K}: {encoding.compression_ratio:.1f}%")

    table = Table(
        ["architecture", "pins", "SoC cycles", "time (ms)", "vs (a)"],
        title=f"Figure 4 architectures (m={NUM_CHAINS}, K={K}, p={P})",
        precision=3,
    )

    # (a) single scan chain, one pin
    single = SingleScanDecompressor(K, p=P).run_encoding(encoding, x_fill=0)
    t_single = channel.seconds_from_soc_cycles(single.soc_cycles)
    table.add_row("(a) single-scan, 1 pin", 1, single.soc_cycles,
                  t_single * 1e3, 1.0)

    # (b) m chains behind one decoder + m-bit shifter, one pin
    multi = MultiScanDecompressor(
        K, num_chains=NUM_CHAINS,
        chain_length=test_set.total_bits // NUM_CHAINS, p=P,
    ).run_encoding(encoding, x_fill=0)
    t_multi = channel.seconds_from_soc_cycles(multi.soc_cycles)
    table.add_row(f"(b) {NUM_CHAINS} chains, 1 pin", 1, multi.soc_cycles,
                  t_multi * 1e3, t_multi / t_single)

    # (c) m chains, one decoder per K chains -> m/K pins
    parallel = ParallelDecompressor(
        k=K, num_chains=NUM_CHAINS, chain_length=width // NUM_CHAINS, p=P,
    )
    result = parallel.run(test_set, x_fill=0)
    t_parallel = channel.seconds_from_soc_cycles(result.soc_cycles)
    table.add_row(
        f"(c) {NUM_CHAINS} chains, {result.num_pins} pins",
        result.num_pins, result.soc_cycles, t_parallel * 1e3,
        t_parallel / t_single,
    )
    table.print()

    assert multi.soc_cycles == single.soc_cycles, \
        "Figure 4b must not increase test time"
    assert result.test_set.covers(padded), \
        "every architecture must deliver the original patterns"
    print("\nall architectures delivered the exact test patterns")
    print(f"(b) uses 1 pin at identical test time; "
          f"(c) cuts time to {t_parallel / t_single:.2f}x with "
          f"{result.num_pins} pins")


if __name__ == "__main__":
    main()
