#!/usr/bin/env python
"""Emit the on-chip decompressor RTL (Figures 1 and 3) as Verilog.

Writes ``ninec_decoder_k<K>.v`` (single-scan, Figure 1) and
``ninec_multiscan_k<K>_m<M>.v`` (single-pin multi-scan, Figure 3) into
``./rtl/`` and prints the estimated hardware cost next to each file —
showing the paper's point that only the counter and shifter grow with K
while the control FSM stays fixed.

Run:  python examples/generate_rtl.py [output_dir]
"""

import sys
from pathlib import Path

from repro.analysis import Table
from repro.decompressor import (
    decoder_cost,
    generate_decoder_verilog,
    generate_multiscan_verilog,
)


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "rtl")
    out_dir.mkdir(parents=True, exist_ok=True)

    table = Table(
        ["file", "K", "FSM gate-eq", "counter flops", "shifter flops"],
        title="generated decompressor RTL",
    )
    for k in (8, 16, 32):
        rtl = generate_decoder_verilog(k)
        path = out_dir / f"ninec_decoder_k{k}.v"
        path.write_text(rtl)
        cost = decoder_cost(k)
        table.add_row(path.name, k, cost.fsm_gate_equivalents,
                      cost.counter_flops, cost.shifter_flops)

    multiscan = generate_multiscan_verilog(8, 16)
    ms_path = out_dir / "ninec_multiscan_k8_m16.v"
    ms_path.write_text(multiscan)
    cost = decoder_cost(8)
    table.add_row(ms_path.name, 8, cost.fsm_gate_equivalents,
                  cost.counter_flops, cost.shifter_flops)
    table.print()

    print(f"\n{len(list(out_dir.glob('*.v')))} Verilog files in {out_dir}/")
    print("note the constant FSM cost across K — the paper's reuse claim")


if __name__ == "__main__":
    main()
