#!/usr/bin/env python
"""Compare 9C against the baseline test-data compression codes.

Reproduces the structure of the paper's Table IV on every ISCAS'89
benchmark profile: each code runs at its per-circuit best
parameterization, every round trip is verified, and the average row
shows the paper's headline claim (9C's average CR beats the field).

Run:  python examples/code_comparison.py
"""

from repro.analysis import Table
from repro.codes import roundtrip_ok, table4_codes
from repro.testdata import ISCAS89_PROFILES, load_benchmark

CODES = ("9c", "fdr", "efdr", "arl", "golomb", "vihc", "selhuff", "mtc")


def main() -> None:
    totals = {name: 0.0 for name in CODES}
    table = Table(["circuit"] + list(CODES),
                  title="compression ratio CR% by code (cf. paper Table IV)")
    small = load_benchmark("s5378", fraction=0.05)

    for bench_name in ISCAS89_PROFILES:
        test_set = load_benchmark(bench_name)
        stream = test_set.to_stream()
        codes = table4_codes(stream)
        row = []
        for code_name in CODES:
            code = codes[code_name]
            assert roundtrip_ok(code, small.to_stream()), code.name
            cr = code.compression_ratio(stream)
            totals[code_name] += cr
            row.append(cr)
        table.add_row(bench_name, *row)

    averages = [totals[name] / len(ISCAS89_PROFILES) for name in CODES]
    table.add_row("average", *averages)
    table.print()

    best = max(zip(CODES, averages), key=lambda kv: kv[1])
    print(f"\nbest average CR: {best[0]} at {best[1]:.2f}%")
    if best[0] == "9c":
        print("reproduces the paper's claim: 9C's average CR tops the field")


if __name__ == "__main__":
    main()
