#!/usr/bin/env python
"""Quickstart: compress a scan test set with 9C and get it back.

Run:  python examples/quickstart.py
"""

from repro import NineCDecoder, NineCEncoder, TernaryVector, coding_table
from repro.analysis import Table
from repro.testdata import TestSet, load_benchmark


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The nine-codeword code itself (paper Table I, K=8)
    # ------------------------------------------------------------------
    table = Table(["case", "input block", "codeword", "size (bits)"],
                  title="9C coding table for K=8")
    for row in coding_table(8):
        table.add_row(row.case.name, row.input_block, row.codeword,
                      row.size_bits)
    print(table.render())

    # ------------------------------------------------------------------
    # 2. Compress a tiny hand-made test set
    # ------------------------------------------------------------------
    cubes = TestSet.from_strings(
        ["00000000" "0000X01X",
         "1X1X111X" "00001111",
         "XXXXXXXX" "01XX10XX"],
        name="demo",
    )
    stream = cubes.to_stream()
    encoder = NineCEncoder(k=8)
    encoding = encoder.encode(stream)
    print(f"\n|T_D| = {encoding.original_length} bits, "
          f"|T_E| = {encoding.compressed_size} bits, "
          f"CR = {encoding.compression_ratio:.1f}%, "
          f"leftover X = {encoding.leftover_x}")

    decoded = NineCDecoder(k=8).decode(encoding)
    assert decoded.covers(stream), "decode must preserve every specified bit"
    print(f"decoded stream covers the original cubes: "
          f"{decoded.covers(stream)}")

    # ------------------------------------------------------------------
    # 3. A real benchmark profile (MinTest-calibrated surrogate)
    # ------------------------------------------------------------------
    bench = load_benchmark("s5378")
    result = encoder.encode(bench.to_stream())
    print(f"\ns5378: |T_D| = {result.original_length}, "
          f"CR @ K=8 = {result.compression_ratio:.2f}%, "
          f"LX = {result.leftover_x_percent:.2f}% of T_D")
    stats = ", ".join(f"N{case.value}={count}"
                      for case, count in result.case_counts.items())
    print(f"codeword statistics: {stats}")


if __name__ == "__main__":
    main()
