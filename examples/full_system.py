#!/usr/bin/env python
"""The whole reduced-pin-count test system in one run.

One ATE pin streams the 9C-compressed deterministic test set; the
on-chip decoder expands it into the scan chain; responses compact into
a MISR; the tester compares a single signature.  Good devices pass,
devices with any targeted defect fail.

Run:  python examples/full_system.py
"""

import os

from repro.analysis import Table
from repro.circuits import load_circuit
from repro.system import TestSession

CIRCUIT = os.environ.get("ATPG_CIRCUIT", "g256")


def main() -> None:
    circuit = load_circuit(CIRCUIT)
    print(f"device under test: {circuit!r}")

    session = TestSession(circuit, k=8, p=8, misr_width=16,
                          fill_strategy="random", seed=11)
    session.prepare()
    atpg = session.atpg_result
    print(f"deterministic set : {len(session.cubes)} cubes, "
          f"coverage {atpg.fault_coverage:.1f}%")
    print(f"compressed stream : {session.encoding.compressed_size} bits "
          f"(CR {session.encoding.compression_ratio:.1f}%), one ATE pin")

    golden = session.run()
    print(f"golden signature  : 0x{golden.signature:04x}  "
          f"({golden.soc_cycles} SoC cycles)")

    sample = atpg.detected[:: max(1, len(atpg.detected) // 12)]
    table = Table(["injected fault", "signature", "verdict"],
                  title="screening defective devices")
    caught = 0
    for fault in sample:
        verdict = session.run(fault)
        caught += not verdict.passed
        table.add_row(str(fault), f"0x{verdict.signature:04x}",
                      "FAIL (caught)" if not verdict.passed else "PASS (alias!)")
    table.print()
    print(f"\n{caught}/{len(sample)} sampled defects caught by the "
          f"single-pin signature test")
    assert caught >= len(sample) - 1


if __name__ == "__main__":
    main()
