#!/usr/bin/env python
"""Explore the 9C trade-off space on one benchmark.

The paper's Section IV argues 9C lets the DFT engineer trade off
compression ratio, leftover don't-cares (for non-modeled-fault fill),
test application time and scan-in power by choosing K.  This example
walks all four axes for one circuit.

Run:  python examples/tradeoff_explorer.py [benchmark]
"""

import sys

from repro.analysis import Table, choose_k, compare_fills, pareto_front, sweep_p
from repro.core import NineCDecoder, NineCEncoder
from repro.testdata import TABLE2_BLOCK_SIZES, TestSet, load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s15850"
    bench = load_benchmark(name)
    stream = bench.to_stream()
    print(f"{name}: {bench.total_bits} bits, "
          f"{bench.x_density * 100:.1f}% don't-cares")

    # --- CR / LX sweep (Tables II + III in one) ------------------------
    table = Table(["K", "CR%", "LX%", "TAT% (p=8)"],
                  title="block-size sweep")
    for k in TABLE2_BLOCK_SIZES:
        enc = NineCEncoder(k).measure(stream)
        tat = sweep_p(stream, k, ps=(8,))[8]
        table.add_row(k, enc.compression_ratio, enc.leftover_x_percent,
                      tat.tat_percent)
    table.print()

    # --- Pareto front ---------------------------------------------------
    front = pareto_front(stream)
    print("\nPareto-optimal K values (CR% vs LX%):",
          ", ".join(str(k) for k in sorted(front)))

    # --- constrained choice ----------------------------------------------
    for floor in (0.0, 10.0, 20.0):
        choice = choose_k(stream, min_leftover_x_percent=floor)
        print(f"LX >= {floor:4.1f}%  ->  K={choice.k:2d}  "
              f"CR={choice.compression_ratio:5.2f}%  "
              f"LX={choice.leftover_x_percent:5.2f}%")

    # --- power of the leftover-X fills -----------------------------------
    choice = choose_k(stream, min_leftover_x_percent=10.0)
    encoding = NineCEncoder(choice.k).encode(stream)
    decoded = NineCDecoder(choice.k).decode(encoding)
    decoded_set = TestSet.from_stream(decoded, bench.num_cells)
    report = compare_fills(decoded_set)
    table = Table(["fill", "total WTM", "peak WTM", "vs random"],
                  title=f"scan-in power of leftover-X fills (K={choice.k})")
    for strategy in ("random", "zero", "one", "mt"):
        table.add_row(strategy, report.total[strategy],
                      report.peak[strategy],
                      f"{report.reduction_vs_random(strategy):+.1f}%")
    table.print()
    print("\nMT-fill of the surviving don't-cares cuts scan power; random "
          "fill buys non-modeled-fault coverage — the user picks.")


if __name__ == "__main__":
    main()
