#!/usr/bin/env python
"""End-to-end DFT flow on a generated full-scan circuit.

circuit -> collapsed stuck-at faults -> PODEM test cubes -> static
compaction -> 9C compression -> cycle-accurate on-chip decompression ->
random X-fill -> fault simulation.  The closing assertion is the whole
point of leftover-X compression: coverage after the compressed round
trip equals coverage of the raw cubes.

Run:  python examples/atpg_to_ate.py
"""

import os

from repro.analysis import Table, leftover_x_coverage_experiment
from repro.atpg import generate_test_cubes
from repro.circuits import fault_simulate, load_circuit
from repro.core import NineCEncoder
from repro.decompressor import SingleScanDecompressor
from repro.testdata import TestSet, fill_test_set

# ATPG_CIRCUIT=g64 gives a fast run (used by the example smoke tests).
CIRCUIT = os.environ.get("ATPG_CIRCUIT", "g256")
K = 8


def main() -> None:
    circuit = load_circuit(CIRCUIT)
    print(f"circuit: {circuit!r}")

    # 1. ATPG
    atpg = generate_test_cubes(circuit)
    cubes = atpg.test_set
    print(f"ATPG: {atpg.statistics['collapsed_faults']} collapsed faults, "
          f"coverage {atpg.fault_coverage:.1f}%, "
          f"efficiency {atpg.test_efficiency:.1f}%, "
          f"{len(cubes)} cubes, X density {cubes.x_density * 100:.1f}%")

    # 2. Compress
    stream = cubes.to_stream()
    encoding = NineCEncoder(K).encode(stream)
    print(f"9C @ K={K}: |T_D|={encoding.original_length} -> "
          f"|T_E|={encoding.compressed_size} "
          f"(CR {encoding.compression_ratio:.1f}%, "
          f"leftover X {encoding.leftover_x_percent:.1f}%)")

    # 3. Decompress through the cycle-accurate single-scan architecture
    decompressor = SingleScanDecompressor(
        K, p=8, scan_length=circuit.scan_length
    )
    trace = decompressor.run_encoding(encoding)
    decoded = TestSet.from_stream(
        trace.output[: cubes.total_bits], circuit.scan_length
    )
    assert decoded.covers(cubes), "decompressed data must cover the cubes"
    print(f"decompression: {trace.soc_cycles} SoC cycles, "
          f"{trace.ate_cycles} ATE cycles, "
          f"{len(trace.patterns)} patterns delivered")

    # 4. Fill the leftover X randomly and fault-simulate
    applied = fill_test_set(decoded, "random", seed=42)
    graded = fault_simulate(circuit, applied, atpg.detected)
    assert not graded.undetected, "compression must not lose coverage"
    print(f"after round trip + random fill: "
          f"{len(graded.detected)}/{len(atpg.detected)} targeted faults "
          f"still detected")

    # 5. Leftover-X bonus: random fill vs constant fills on extra faults
    reports = leftover_x_coverage_experiment(atpg, k=K, seed=7)
    table = Table(["fill", "bonus faults detected", "coverage %"],
                  title="non-modeled-fault proxy (faults beyond ATPG targets)")
    for strategy, report in sorted(reports.items()):
        table.add_row(strategy, report.bonus_detected,
                      report.coverage_percent)
    table.print()


if __name__ == "__main__":
    main()
