"""Unit + integration tests for PODEM, compaction and the ATPG flow."""

import pytest

from repro.atpg import (
    Podem,
    generate_test_cubes,
    reverse_order_compact,
    static_compact,
)
from repro.circuits import (
    Fault,
    collapsed_faults,
    detects,
    fault_simulate,
    fault_simulate_cubes,
    load_circuit,
)
from repro.core import TernaryVector
from repro.testdata import TestSet, fill_test_set


class TestPodem:
    def test_c17_all_faults_testable(self):
        c17 = load_circuit("c17")
        podem = Podem(c17)
        for fault in collapsed_faults(c17):
            result = podem.generate(fault)
            assert result.detected, f"{fault} should be testable"
            assert detects(c17, result.cube, fault), str(fault)

    def test_s27_all_faults_testable(self):
        s27 = load_circuit("s27")
        podem = Podem(s27)
        for fault in collapsed_faults(s27):
            result = podem.generate(fault)
            assert result.detected, f"{fault} should be testable"
            assert detects(s27, result.cube, fault), str(fault)

    def test_untestable_fault_proven(self):
        # y = AND(a, a) has a redundant input: y.in1/sa... actually use a
        # classic redundancy: y = OR(a, NOT(a)) is constant 1, so y/sa1 is
        # untestable.
        from repro.circuits import Gate, GateType, Netlist

        n = Netlist(
            "red", ["a"], ["y"],
            [Gate("na", GateType.NOT, ("a",)),
             Gate("y", GateType.OR, ("a", "na"))],
        )
        result = Podem(n).generate(Fault("y", 1))
        assert result.status == "untestable"

    def test_cube_has_x(self):
        # g64 cubes should leave many inputs unassigned.
        g64 = load_circuit("g64")
        podem = Podem(g64)
        faults = collapsed_faults(g64)
        cubes = [podem.generate(f).cube for f in faults[:20]]
        cubes = [c for c in cubes if c is not None]
        assert cubes
        assert any(c.num_x > 0 for c in cubes)

    def test_abort_respects_limit(self):
        g64 = load_circuit("g64")
        podem = Podem(g64, backtrack_limit=0)
        statuses = {podem.generate(f).status for f in collapsed_faults(g64)[:40]}
        assert statuses <= {"detected", "untestable", "aborted"}


class TestStaticCompact:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            static_compact(TestSet.from_strings(["01"]), strategy="magic")

    def test_best_fit_prefers_denser_overlap(self):
        # "11XX" is compatible with both slots; best-fit picks "1X1X"
        # (one shared specified position) over "XXXX" (zero).
        ts = TestSet.from_strings(["1X1X", "XXXX", "11XX"])
        first = static_compact(ts, strategy="first_fit")
        best = static_compact(ts, strategy="best_fit")
        # first-fit merges everything into slot 0 anyway here; construct
        # a case where the choice differs:
        ts2 = TestSet.from_strings(["0XXX", "1X1X", "11XX"])
        best2 = static_compact(ts2, strategy="best_fit")
        assert best2.num_patterns == 2
        assert best2[1].to_string() == "111X"
        assert first.num_patterns >= 1 and best.num_patterns >= 1

    def test_best_fit_preserves_coverage(self):
        s27 = load_circuit("s27")
        faults = collapsed_faults(s27)
        res = generate_test_cubes(s27, compact=False)
        before = set(fault_simulate_cubes(s27, res.test_set, faults).detected)
        compacted = static_compact(res.test_set, strategy="best_fit")
        after = set(fault_simulate_cubes(s27, compacted, faults).detected)
        assert before <= after

    def test_merges_compatible(self):
        ts = TestSet.from_strings(["0XX1", "01XX", "1XXX"])
        out = static_compact(ts)
        assert out.num_patterns == 2
        assert out[0].to_string() == "01X1"

    def test_keeps_incompatible(self):
        ts = TestSet.from_strings(["01", "10"])
        assert static_compact(ts).num_patterns == 2

    def test_coverage_preserved(self):
        s27 = load_circuit("s27")
        faults = collapsed_faults(s27)
        res = generate_test_cubes(s27, compact=False)
        before = set(fault_simulate_cubes(s27, res.test_set, faults).detected)
        compacted = static_compact(res.test_set)
        after = set(fault_simulate_cubes(s27, compacted, faults).detected)
        assert before <= after


class TestReverseOrderCompact:
    def test_drops_useless_patterns(self):
        c17 = load_circuit("c17")
        faults = collapsed_faults(c17)
        base = generate_test_cubes(c17).test_set
        padded = TestSet(list(base) + [base[0]], name="padded")
        out = reverse_order_compact(c17, padded, faults)
        assert out.num_patterns <= padded.num_patterns
        cov = fault_simulate_cubes(c17, out, faults).coverage
        assert cov == fault_simulate_cubes(c17, padded, faults).coverage


class TestFlowIntegration:
    @pytest.mark.parametrize("name,min_coverage", [
        ("c17", 100.0), ("s27", 100.0), ("g64", 80.0),
    ])
    def test_flow_reaches_coverage(self, name, min_coverage):
        circuit = load_circuit(name)
        result = generate_test_cubes(circuit)
        assert result.fault_coverage >= min_coverage
        assert result.statistics["patterns"] == len(result.test_set)

    def test_detected_faults_graded_by_cubes(self):
        s27 = load_circuit("s27")
        result = generate_test_cubes(s27)
        grading = fault_simulate_cubes(s27, result.test_set, result.detected)
        assert not grading.undetected

    @pytest.mark.parametrize("strategy", ["zero", "one", "random", "mt"])
    def test_any_fill_preserves_coverage(self, strategy):
        """The soundness property behind leftover-X compression."""
        g64 = load_circuit("g64")
        result = generate_test_cubes(g64)
        filled = fill_test_set(result.test_set, strategy, seed=11)
        graded = fault_simulate(g64, filled, result.detected)
        assert not graded.undetected

    def test_compression_roundtrip_preserves_coverage(self):
        """ATPG cubes -> 9C encode -> decode -> fill -> same coverage."""
        from repro.core import NineCDecoder, NineCEncoder

        s27 = load_circuit("s27")
        result = generate_test_cubes(s27)
        stream = result.test_set.to_stream()
        encoding = NineCEncoder(4).encode(stream)
        decoded = NineCDecoder(4).decode(encoding)
        assert decoded.covers(stream)
        decoded_set = TestSet.from_stream(decoded, s27.scan_length)
        filled = fill_test_set(decoded_set, "random", seed=5)
        graded = fault_simulate(s27, filled, result.detected)
        assert not graded.undetected
