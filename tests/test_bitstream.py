"""Unit tests for repro.core.bitstream."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    TernaryStreamReader,
    TernaryStreamWriter,
    TernaryVector,
    bits_from_int,
    int_from_bits,
)

from .conftest import ternary_vectors


class TestWriter:
    def test_write_bit(self):
        w = TernaryStreamWriter()
        for b in (0, 1, 2):
            w.write_bit(b)
        assert w.to_vector().to_string() == "01X"
        assert len(w) == 3

    def test_write_bit_invalid(self):
        with pytest.raises(ValueError):
            TernaryStreamWriter().write_bit(3)

    def test_write_bits(self):
        w = TernaryStreamWriter()
        w.write_bits([1, 0, 2, 1])
        assert w.to_vector().to_string() == "10X1"

    def test_write_bits_invalid(self):
        with pytest.raises(ValueError):
            TernaryStreamWriter().write_bits([0, 4])

    @pytest.mark.parametrize(
        "values", [[3], [256], [-1], [257, 0], [1 << 70], [0, 1, -300]]
    )
    def test_write_bits_out_of_range_is_valueerror(self, values):
        """Regression: the documented error contract for any bad symbol.

        256 and -1 used to escape as numpy ``OverflowError`` because the
        range check ran after a uint8 cast.
        """
        w = TernaryStreamWriter()
        with pytest.raises(ValueError):
            w.write_bits(values)
        # a failed write must not corrupt the stream
        assert len(w) == 0
        assert len(w.to_vector()) == 0

    def test_write_bits_after_rejected_write(self):
        w = TernaryStreamWriter()
        w.write_bit(1)
        with pytest.raises(ValueError):
            w.write_bits([0, 256])
        w.write_bits([0, 2])
        assert w.to_vector().to_string() == "10X"

    def test_write_vector(self):
        w = TernaryStreamWriter()
        w.write_vector(TernaryVector("0X1"))
        w.write_vector(TernaryVector("10"))
        assert w.to_vector().to_string() == "0X110"

    def test_write_uint(self):
        w = TernaryStreamWriter()
        w.write_uint(5, 4)
        assert w.to_vector().to_string() == "0101"

    def test_write_uint_overflow(self):
        with pytest.raises(ValueError):
            TernaryStreamWriter().write_uint(4, 2)

    def test_empty_snapshot(self):
        assert len(TernaryStreamWriter().to_vector()) == 0

    def test_write_vector_copies_symbols(self):
        # regression: write_vector used to append a *reference* to the
        # vector's buffer, so mutating the vector afterwards silently
        # corrupted an already-written stream snapshot
        w = TernaryStreamWriter()
        vec = TernaryVector("0X1")
        w.write_vector(vec)
        vec.data[:] = 1
        assert w.to_vector().to_string() == "0X1"

    def test_write_vector_empty_adds_no_chunk(self):
        w = TernaryStreamWriter()
        w.write_vector(TernaryVector(""))
        assert w._chunks == [] and len(w) == 0

    def test_write_bits_empty_adds_no_chunk(self):
        # regression: empty iterables used to append zero-length numpy
        # chunks, growing the chunk list without adding any symbols
        w = TernaryStreamWriter()
        w.write_bits([])
        w.write_bits([1, 0])
        w.write_bits([])
        w.write_bits(np.array([], dtype=np.uint8))
        assert len(w._chunks) == 1
        assert w.to_vector().to_string() == "10"


class TestReader:
    def test_read_bits(self):
        r = TernaryStreamReader(TernaryVector("01X"))
        assert [r.read_bit(), r.read_bit(), r.read_bit()] == [0, 1, 2]
        assert r.at_end()

    def test_read_past_end(self):
        r = TernaryStreamReader(TernaryVector("0"))
        r.read_bit()
        with pytest.raises(EOFError):
            r.read_bit()

    def test_read_vector(self):
        r = TernaryStreamReader(TernaryVector("01X10"))
        assert r.read_vector(3).to_string() == "01X"
        assert r.remaining == 2

    def test_read_vector_overrun(self):
        with pytest.raises(EOFError):
            TernaryStreamReader(TernaryVector("01")).read_vector(3)

    def test_read_uint(self):
        r = TernaryStreamReader(TernaryVector("0101"))
        assert r.read_uint(4) == 5

    def test_read_uint_rejects_x(self):
        with pytest.raises(ValueError):
            TernaryStreamReader(TernaryVector("0X")).read_uint(2)

    def test_peek_does_not_consume(self):
        r = TernaryStreamReader(TernaryVector("10"))
        assert r.peek_bit() == 1
        assert r.read_bit() == 1

    def test_peek_past_end(self):
        with pytest.raises(EOFError):
            TernaryStreamReader(TernaryVector("")).peek_bit()


class TestIntHelpers:
    @pytest.mark.parametrize("value,width,bits", [
        (0, 1, (0,)),
        (1, 1, (1,)),
        (5, 4, (0, 1, 0, 1)),
        (255, 8, (1,) * 8),
    ])
    def test_bits_from_int(self, value, width, bits):
        assert bits_from_int(value, width) == bits

    def test_bits_from_int_overflow(self):
        with pytest.raises(ValueError):
            bits_from_int(8, 3)

    def test_int_from_bits(self):
        assert int_from_bits([1, 0, 1]) == 5

    def test_int_from_bits_invalid(self):
        with pytest.raises(ValueError):
            int_from_bits([0, 2])

    @given(st.integers(0, 2**16 - 1))
    def test_int_roundtrip(self, value):
        assert int_from_bits(bits_from_int(value, 16)) == value


class TestRoundTrip:
    @given(ternary_vectors())
    def test_writer_reader_roundtrip(self, vec):
        w = TernaryStreamWriter()
        w.write_vector(vec)
        r = TernaryStreamReader(w.to_vector())
        assert r.read_vector(len(vec)) == vec
        assert r.at_end()

    @given(st.lists(st.integers(0, 2), max_size=64))
    def test_bitwise_roundtrip(self, bits):
        w = TernaryStreamWriter()
        for b in bits:
            w.write_bit(b)
        r = TernaryStreamReader(w.to_vector())
        assert [r.read_bit() for _ in bits] == bits
