"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.core import TernaryVector

# Wall-clock deadlines make property tests flaky under full-suite load
# (first-example numpy warm-up, CI contention); correctness here never
# depends on per-example timing, so disable them globally instead of
# sprinkling ``deadline=None`` on each slow test.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


@st.composite
def ternary_vectors(draw, min_size=0, max_size=96, x_bias=None):
    """Strategy producing :class:`TernaryVector` of bounded size.

    ``x_bias`` (0..1) skews the alphabet toward don't-cares, mimicking
    real test cubes; None draws uniformly from {0, 1, X}.
    """
    size = draw(st.integers(min_size, max_size))
    if x_bias is None:
        values = draw(
            st.lists(st.sampled_from([0, 1, 2]), min_size=size, max_size=size)
        )
    else:
        values = []
        for _ in range(size):
            if draw(st.floats(0, 1)) < x_bias:
                values.append(2)
            else:
                values.append(draw(st.sampled_from([0, 1])))
    return TernaryVector(values)


@st.composite
def even_block_sizes(draw, max_k=32):
    """Strategy for legal 9C block sizes (even, >= 2)."""
    return 2 * draw(st.integers(1, max_k // 2))


@pytest.fixture
def rng():
    """Deterministic numpy Generator for tests."""
    return np.random.default_rng(12345)


def random_ternary(rng, n, x_density=0.6):
    """Helper: random ternary vector with given X density."""
    data = rng.integers(0, 2, size=n).astype(np.uint8)
    mask = rng.random(n) < x_density
    data[mask] = 2
    return TernaryVector(data)
