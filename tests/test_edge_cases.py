"""Breadth pass: edge cases across packages not covered elsewhere."""

import pytest

from repro.core import (
    BlockCase,
    Codebook,
    NineCEncoder,
    TernaryVector,
    coding_table,
)
from repro.decompressor import (
    MultiScanDecompressor,
    SingleScanDecompressor,
)
from repro.testdata import IBM_PROFILES, TestSet, generate


class TestDecompressorEdges:
    def test_single_scan_keeps_x_when_unfilled(self):
        data = TernaryVector("0000X01X")
        encoding = NineCEncoder(8).encode(data)
        trace = SingleScanDecompressor(8).run_encoding(encoding, x_fill=None)
        assert trace.output.to_string() == "0000X01X"

    def test_single_scan_scanchain_accepts_x(self):
        data = TernaryVector("0000X01X")
        encoding = NineCEncoder(8).encode(data)
        decompressor = SingleScanDecompressor(8, scan_length=8)
        trace = decompressor.run_encoding(encoding, x_fill=None)
        assert trace.patterns[0].to_string() == "0000X01X"

    def test_multi_scan_symbolic_x(self):
        data = TernaryVector("0000X01X" * 2)
        encoding = NineCEncoder(8).encode(data)
        trace = MultiScanDecompressor(8, 4, 4).run_encoding(
            encoding, x_fill=None
        )
        assert trace.output.count(2) == 4

    def test_trace_uniform_plus_data_is_total(self):
        data = TernaryVector("0000X01X" * 6)
        encoding = NineCEncoder(8).encode(data)
        trace = SingleScanDecompressor(8, p=4).run_encoding(encoding)
        assert trace.uniform_soc_cycles + trace.data_ate_cycles == \
            len(trace.output)

    def test_k2_minimum_block(self):
        # K=2: one-bit halves can never mismatch; everything is uniform.
        data = TernaryVector("0101XX")
        encoding = NineCEncoder(2).encode(data)
        assert all(r.case in (BlockCase.C1, BlockCase.C2, BlockCase.C3,
                              BlockCase.C4) for r in encoding.blocks)
        trace = SingleScanDecompressor(2).run_encoding(encoding)
        assert trace.output.covers(data)
        assert trace.output.is_fully_specified()


class TestIBMProfiles:
    @pytest.mark.parametrize("name", sorted(IBM_PROFILES))
    def test_scaled_generation(self, name):
        profile = IBM_PROFILES[name].scaled(0.01)
        ts = generate(profile)
        assert ts.num_cells == IBM_PROFILES[name].num_cells
        assert ts.x_density == pytest.approx(profile.x_density, abs=0.02)


class TestCodingTableEdges:
    def test_k2_table(self):
        rows = coding_table(2)
        sizes = [row.size_bits for row in rows]
        assert sizes == [1, 2, 5, 5, 6, 6, 6, 6, 6]

    def test_large_k_table(self):
        rows = coding_table(256)
        by_case = {r.case: r for r in rows}
        assert by_case[BlockCase.C9].size_bits == 4 + 256

    def test_custom_codebook_table(self):
        from repro.core import PAPER_LENGTHS

        lengths = dict(PAPER_LENGTHS)
        lengths[BlockCase.C5] = 4
        lengths[BlockCase.C9] = 5
        rows = coding_table(8, Codebook.from_lengths(lengths))
        by_case = {r.case: r for r in rows}
        assert by_case[BlockCase.C5].size_bits == 4 + 4
        assert by_case[BlockCase.C9].size_bits == 5 + 8


class TestTestSetEdges:
    def test_single_cell_patterns(self):
        ts = TestSet.from_strings(["0", "1", "X"])
        assert ts.num_cells == 1
        assert ts.to_stream().to_string() == "01X"

    def test_map_patterns_preserves_count(self):
        ts = TestSet.from_strings(["01", "10"])
        out = ts.map_patterns(lambda p: p.filled(0))
        assert out.num_patterns == 2

    def test_stream_roundtrip_with_name(self):
        ts = TestSet.from_strings(["01X"], name="edge")
        back = TestSet.from_stream(ts.to_stream(), 3, name="edge")
        assert back == ts and back.name == "edge"


class TestCLIEdges:
    def test_coding_table_bad_k(self, capsys):
        from repro.cli import main

        with pytest.raises(ValueError):
            main(["coding-table", "--k", "7"])

    def test_compress_with_input_and_benchmark_prefers_benchmark(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        ts = TestSet.from_strings(["0000"], name="file")
        path = tmp_path / "t.test"
        ts.save(path)
        assert main(["compress", str(path), "--benchmark", "s5378"]) == 0
        out = capsys.readouterr().out
        assert "23754" in out  # benchmark takes precedence
