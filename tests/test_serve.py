"""Tests for repro.serve: protocol, cache, retry, breaker, service, TCP."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.core.bitvec import TernaryVector
from repro.core.decoder import NineCDecoder
from repro.core.encoder import NineCEncoder
from repro.core.errors import (
    BadRequestError,
    CircuitOpenError,
    MalformedFrameError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    Client,
    CompressionService,
    PreparedArtifactCache,
    RetryPolicy,
    ServeServer,
    ServiceConfig,
    ServiceFault,
    TCPClient,
    encode_frame,
    parse_request,
    run_with_retry,
)

DATA = "00000000" + "11111111" + "0110X01X" + "0000X0X0"


def expected_decode(data: str = DATA, k: int = 8) -> str:
    """What a clean decompress of ``data``'s stream must return.

    Encoding fills don't-cares, so the decoded stream is the X-filled
    version of ``data``, not ``data`` itself.
    """
    encoding = NineCEncoder(k).encode(TernaryVector(data))
    return NineCDecoder(k).decode_stream(
        encoding.stream, encoding.original_length
    ).to_string()


def run(coroutine):
    return asyncio.run(coroutine)


def inline_config(**overrides) -> ServiceConfig:
    """Inline executor, obs untouched: fast and side-effect-free."""
    overrides.setdefault("executor", "inline")
    overrides.setdefault("enable_obs", False)
    return ServiceConfig(**overrides)


async def with_service(config, action):
    service = CompressionService(config)
    await service.start()
    try:
        return await action(service, Client(service))
    finally:
        await service.close()


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_roundtrip(self):
        line = encode_frame({"id": "r1", "op": "compress",
                             "params": {"k": 8}, "deadline_ms": 250})
        request = parse_request(line)
        assert request.id == "r1"
        assert request.op == "compress"
        assert request.params == {"k": 8}
        assert request.deadline_ms == 250.0

    def test_defaults(self):
        request = parse_request(b'{"op": "health"}\n')
        assert request.id == ""
        assert request.params == {}
        assert request.deadline_ms is None

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2, 3]\n",
        b'{"op": "unknown_op"}\n',
        b'{"params": {}}\n',
        b'{"op": "compress", "params": "nope"}\n',
        b'{"op": "compress", "deadline_ms": -1}\n',
        b'{"op": "compress", "deadline_ms": "soon"}\n',
        b"\xff\xfe\n",
    ])
    def test_malformed_frames_raise_typed_error(self, line):
        with pytest.raises(MalformedFrameError) as excinfo:
            parse_request(line)
        wire = excinfo.value.to_wire()
        assert wire["code"] == "malformed_frame"
        assert wire["retryable"] is False

    def test_oversized_frame_rejected(self):
        from repro.serve import MAX_FRAME_BYTES

        with pytest.raises(MalformedFrameError):
            parse_request(b"x" * (MAX_FRAME_BYTES + 1))

    def test_serve_error_wire_shape(self):
        error = ServiceOverloadedError("busy", waiting=3)
        wire = error.to_wire()
        assert wire["code"] == "overloaded"
        assert wire["retryable"] is True
        assert wire["context"]["waiting"] == 3


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestPreparedArtifactCache:
    def test_hit_miss_counts(self):
        cache = PreparedArtifactCache(capacity=4)
        assert cache.get("a") == (False, None)
        cache.put("a", 1)
        assert cache.get("a") == (True, 1)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PreparedArtifactCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.evictions == 1

    def test_get_or_build_builds_once(self):
        cache = PreparedArtifactCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1

    def test_thread_safety_under_contention(self):
        cache = PreparedArtifactCache(capacity=16)

        def hammer(seed: int) -> None:
            for index in range(500):
                key = (seed * index) % 24
                cache.get_or_build(key, lambda k=key: k * 2)
                cache.get(key)

        threads = [threading.Thread(target=hammer, args=(seed,))
                   for seed in range(1, 7)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        assert stats["size"] <= 16
        assert stats["hits"] + stats["misses"] == 6 * 500 * 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PreparedArtifactCache(capacity=0)

    def test_build_race_loser_behaves_like_hit(self):
        # regression: the race-loser branch used to return the winner's
        # entry without refreshing recency or counting the hit
        cache = PreparedArtifactCache(capacity=2)
        cache.put("other", 0)

        def builder_that_loses():
            # simulates another thread winning the build while ours runs
            cache.put("k", "winner")
            return "loser"

        assert cache.get_or_build("k", builder_that_loses) == "winner"
        assert (cache.hits, cache.misses) == (1, 1)
        # the race hit must refresh recency: "other" is now LRU
        cache.put("c", 3)
        assert cache.get("other") == (False, None)
        assert cache.get("k") == (True, "winner")

    def test_build_race_threaded(self):
        cache = PreparedArtifactCache(capacity=4)
        builder_entered = threading.Event()
        winner_done = threading.Event()
        results = {}

        def slow_builder():
            builder_entered.set()
            assert winner_done.wait(5)
            return "loser"

        def loser():
            results["loser"] = cache.get_or_build("k", slow_builder)

        thread = threading.Thread(target=loser)
        thread.start()
        assert builder_entered.wait(5)
        results["winner"] = cache.get_or_build("k", lambda: "winner")
        winner_done.set()
        thread.join(5)
        assert results == {"winner": "winner", "loser": "winner"}
        # loser's lookup missed, then its race resolution counted a hit
        assert (cache.hits, cache.misses) == (1, 2)

    def test_race_eviction_mirrors_obs_counters(self):
        from repro import obs
        from repro.obs import get_registry

        obs.reset()
        cache = PreparedArtifactCache(capacity=1, name="test.cache")
        cache.put("a", 1)
        with obs.enabled_scope(True):
            cache.get_or_build("a", lambda: "unused-build")  # plain hit

            def builder_that_loses():
                cache.put("r", "winner")  # another thread wins; evicts a
                return "loser"

            assert cache.get_or_build("r", builder_that_loses) == "winner"
            cache.get_or_build("b", lambda: 2)  # miss, insert evicts r
        snapshot = get_registry().snapshot()["counters"]
        assert snapshot["test.cache.hits"] == cache.hits == 2
        assert snapshot["test.cache.misses"] == cache.misses == 2
        assert snapshot["test.cache.evictions"] == cache.evictions == 2
        obs.reset()


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_retries_retryable_until_success(self):
        attempts = []

        async def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise WorkerCrashError("boom")
            return "done"

        policy = RetryPolicy(max_attempts=5, base_s=0.0, jitter=0.0)
        assert run(run_with_retry(flaky, policy)) == "done"
        assert len(attempts) == 3

    def test_non_retryable_fails_immediately(self):
        attempts = []

        async def bad():
            attempts.append(1)
            raise BadRequestError("nope")

        policy = RetryPolicy(max_attempts=5, base_s=0.0)
        with pytest.raises(BadRequestError):
            run(run_with_retry(bad, policy))
        assert len(attempts) == 1

    def test_exhaustion_reports_attempts(self):
        async def always():
            raise WorkerCrashError("boom")

        policy = RetryPolicy(max_attempts=3, base_s=0.0, jitter=0.0)
        with pytest.raises(WorkerCrashError) as excinfo:
            run(run_with_retry(always, policy))
        assert excinfo.value.context["attempts"] == 3

    def test_backoff_schedule_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=6, base_s=0.1, multiplier=2.0,
                             max_backoff_s=0.3, jitter=0.25, seed=42)
        schedule = policy.schedule()
        assert schedule == policy.schedule()  # seeded => replayable
        assert len(schedule) == 5
        for delay in schedule:
            assert delay <= 0.3 * 1.25

    def test_on_retry_callback_counts(self):
        seen = []

        async def always():
            raise WorkerCrashError("boom")

        policy = RetryPolicy(max_attempts=3, base_s=0.0, jitter=0.0)
        with pytest.raises(WorkerCrashError):
            run(run_with_retry(always, policy,
                               on_retry=lambda n, e: seen.append(n)))
        assert seen == [0, 1]


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_s", 10.0)
        return CircuitBreaker("test", clock=clock, **kwargs), clock

    def test_full_state_machine_cycle(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        breaker.before_call()           # the probe is admitted
        breaker.record_success()
        assert breaker.state == CLOSED
        states = [(a, b) for _, a, b in breaker.transitions]
        assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                          (HALF_OPEN, CLOSED)]

    def test_failed_probe_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 15.0
        assert breaker.state == OPEN    # fresh recovery window
        clock.now = 20.0
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_limited_probes(self):
        breaker, clock = self.make(half_open_max=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        breaker.before_call()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()       # second concurrent probe rejected

    def test_success_resets_failure_run(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_error_is_retryable_with_context(self):
        breaker, _ = self.make(failure_threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        wire = excinfo.value.to_wire()
        assert wire["retryable"] is True
        assert wire["context"]["route"] == "test"
        assert "retry_in_s" in wire["context"]

    def test_board_creates_per_route(self):
        board = BreakerBoard(failure_threshold=2)
        assert board.breaker(("compress", 8)) is board.breaker(("compress", 8))
        assert board.breaker(("compress", 8)) is not board.breaker(
            ("decompress", 8))
        assert set(board.snapshot()) == {
            "('compress', 8)", "('decompress', 8)"}


# ----------------------------------------------------------------------
# service ops
# ----------------------------------------------------------------------
class TestServiceOps:
    def test_compress_decompress_roundtrip(self):
        async def scenario(service, client):
            compressed = await client.call("compress",
                                           {"data": DATA, "k": 8})
            assert compressed["ok"] and not compressed["degraded"]
            result = compressed["result"]
            assert result["td_bits"] == len(DATA)
            decompressed = await client.call("decompress", {
                "stream": result["stream"], "k": 8,
                "output_length": result["td_bits"],
            })
            assert decompressed["ok"]
            assert decompressed["result"]["data"] == expected_decode()

        run(with_service(inline_config(), scenario))

    def test_compress_batch_items(self):
        async def scenario(service, client):
            response = await client.call(
                "compress", {"items": [DATA, DATA, DATA], "k": 8})
            assert response["ok"]
            items = response["result"]["items"]
            assert len(items) == 3
            assert len({item["stream"] for item in items}) == 1

        run(with_service(inline_config(), scenario))

    def test_batching_coalesces_concurrent_requests(self):
        async def scenario(service, client):
            responses = await asyncio.gather(*[
                client.call("compress", {"data": DATA, "k": 8})
                for _ in range(6)
            ])
            assert all(r["ok"] for r in responses)
            streams = {r["result"]["stream"] for r in responses}
            assert len(streams) == 1

        run(with_service(inline_config(max_batch=4), scenario))

    def test_bad_requests_are_typed(self):
        async def scenario(service, client):
            cases = [
                ("compress", {}),                       # no input at all
                ("compress", {"data": DATA, "k": 7}),   # odd K
                ("compress", {"data": "012abc", "k": 8}),
                ("decompress", {"k": 8}),               # no stream
                ("decompress", {"stream": "00", "k": 8,
                                "output_length": -1}),
                ("resilience", {"circuit": "not_a_circuit"}),
                ("resilience", {"trials": 10_000}),
                ("profile", {}),
            ]
            for op, params in cases:
                response = await client.call(op, params)
                assert response["ok"] is False, (op, params)
                assert response["error"]["code"] == "bad_request", (op, params)

        run(with_service(inline_config(), scenario))

    def test_truncated_stream_is_bad_request_with_context(self):
        async def scenario(service, client):
            encoding = NineCEncoder(8).encode(TernaryVector(DATA))
            stream = encoding.stream.to_string()[:-3]
            response = await client.call(
                "decompress",
                {"stream": stream, "k": 8,
                 "output_length": encoding.original_length})
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            assert "stream_error" in response["error"]["context"]

        run(with_service(inline_config(), scenario))

    def test_profile_and_resilience_ops(self):
        async def scenario(service, client):
            profile = await client.call("profile", {"data": DATA, "k": 8})
            assert profile["ok"]
            assert profile["result"]["td_bits"] == len(DATA)
            resilience = await client.call("resilience", {
                "circuit": "s27", "k": 8, "trials": 2,
                "error_rate": 0.01})
            assert resilience["ok"]

        run(with_service(inline_config(), scenario))

    def test_health_reports_state(self):
        async def scenario(service, client):
            await client.call("compress", {"data": DATA, "k": 8})
            health = await client.call("health", {})
            assert health["ok"]
            result = health["result"]
            assert result["status"] == "ok"
            assert result["totals"]["requests"] >= 1
            assert "cache" in result and "breakers" in result

        run(with_service(inline_config(), scenario))

    def test_unknown_op_rejected_at_parse(self):
        async def scenario(service, client):
            response = await service.handle_request(
                b'{"id": "x", "op": "nope"}')
            assert response["ok"] is False
            assert response["error"]["code"] == "malformed_frame"

        run(with_service(inline_config(), scenario))

    def test_chaos_op_gated(self):
        async def scenario(service, client):
            response = await client.call(
                "chaos", {"fault": "worker_crash"})
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"

        run(with_service(inline_config(allow_chaos=False), scenario))


class TestServiceRobustness:
    def test_deadline_exceeded_is_typed(self):
        async def scenario(service, client):
            service.fault_plan.arm(
                ServiceFault(kind="latency", seconds=0.5, op="compress"))
            response = await client.call(
                "compress", {"data": DATA, "k": 8}, deadline_ms=50)
            assert response["ok"] is False
            assert response["error"]["code"] == "deadline_exceeded"

        run(with_service(inline_config(), scenario))

    def test_overload_sheds_with_typed_429(self):
        async def scenario(service, client):
            service.fault_plan.arm(
                ServiceFault(kind="latency", seconds=0.3, times=2,
                             op="compress"))
            responses = await asyncio.gather(*[
                client.call("compress", {"data": DATA, "k": 8},
                            deadline_ms=2_000)
                for _ in range(8)
            ])
            shed = [r for r in responses
                    if not r["ok"] and r["error"]["code"] == "overloaded"]
            answered = [r for r in responses if r["ok"]]
            assert shed, "expected at least one load-shed response"
            assert answered, "expected surviving requests to complete"
            for response in shed:
                assert response["error"]["retryable"] is True
            assert service.totals["shed"] == len(shed)

        run(with_service(
            inline_config(max_inflight=1, max_queue=2, max_batch=1),
            scenario))

    def test_worker_failure_retried_to_success(self):
        async def scenario(service, client):
            service.fault_plan.arm(
                ServiceFault(kind="fail", times=2, op="compress"))
            response = await client.call("compress", {"data": DATA, "k": 8})
            assert response["ok"]
            assert service.totals["retries"] >= 2

        config = inline_config(
            retry=RetryPolicy(max_attempts=4, base_s=0.0, jitter=0.0))
        run(with_service(config, scenario))

    def test_worker_failure_exhausts_to_typed_error(self):
        async def scenario(service, client):
            service.fault_plan.arm(
                ServiceFault(kind="fail", times=50, op="compress"))
            response = await client.call("compress", {"data": DATA, "k": 8})
            assert response["ok"] is False
            assert response["error"]["code"] == "worker_crash"
            assert response["error"]["retryable"] is True

        config = inline_config(
            retry=RetryPolicy(max_attempts=2, base_s=0.0, jitter=0.0),
            breaker_failure_threshold=100)
        run(with_service(config, scenario))

    def test_degradation_ladder_pins_route_to_reference(self):
        async def scenario(service, client):
            encoding = NineCEncoder(8).encode(TernaryVector(DATA))
            params = {"stream": encoding.stream.to_string(), "k": 8,
                      "output_length": encoding.original_length}
            # trip the differential contract on the next fast decode
            service.fault_plan.arm(
                ServiceFault(kind="corrupt_fast", op="decompress"))
            first = await client.call("decompress", params)
            assert first["ok"]
            assert first["degraded"] is True
            assert "fastpath_mismatch" in first["flags"]
            # reference result is served, so the data is still correct
            assert first["result"]["data"] == expected_decode()
            # the route is now pinned to the reference path and says so
            second = await client.call("decompress", params)
            assert second["ok"] and second["degraded"]
            assert "fastpath_degraded" in second["flags"]
            assert second["result"]["data"] == expected_decode()
            health = await client.call("health", {})
            assert health["result"]["degraded_routes"]

        run(with_service(
            inline_config(differential_every=1, allow_chaos=True),
            scenario))

    def test_clean_fast_path_not_degraded_by_verification(self):
        async def scenario(service, client):
            encoding = NineCEncoder(8).encode(TernaryVector(DATA))
            params = {"stream": encoding.stream.to_string(), "k": 8,
                      "output_length": encoding.original_length}
            for _ in range(4):
                response = await client.call("decompress", params)
                assert response["ok"] and not response["degraded"]

        run(with_service(inline_config(differential_every=2), scenario))

    def test_breaker_opens_after_sustained_failures(self):
        async def scenario(service, client):
            service.fault_plan.arm(
                ServiceFault(kind="fail", times=1_000, op="compress"))
            saw_circuit_open = False
            for _ in range(8):
                response = await client.call(
                    "compress", {"data": DATA, "k": 8})
                assert response["ok"] is False
                if response["error"]["code"] == "circuit_open":
                    saw_circuit_open = True
            assert saw_circuit_open
            breaker = service.breakers.breaker(("compress", 8))
            assert breaker.state == OPEN

        config = inline_config(
            retry=RetryPolicy(max_attempts=1, base_s=0.0),
            breaker_failure_threshold=3, breaker_recovery_s=60.0,
            max_batch=1)
        run(with_service(config, scenario))


# ----------------------------------------------------------------------
# process-pool integration (slower; one real crash/recovery cycle)
# ----------------------------------------------------------------------
class TestRequestTracing:
    """End-to-end trace trees: worker spans grafted under request roots."""

    @staticmethod
    def traced_config(**overrides) -> ServiceConfig:
        overrides.setdefault("executor", "inline")
        overrides.setdefault("enable_obs", True)
        return ServiceConfig(**overrides)

    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        """``enable_obs=True`` flips the process switch; restore it."""
        from repro import obs

        yield
        obs.disable()
        obs.reset()

    def test_decompress_trace_merges_worker_decode_span(self):
        encoding = NineCEncoder(8).encode(TernaryVector(DATA))

        async def action(service, client):
            response = await client.call("decompress", {
                "stream": encoding.stream.to_string(), "k": 8,
                "output_length": encoding.original_length,
            })
            assert response["ok"]
            # trace payloads never leak into the response itself
            assert "trace" not in response["result"]
            return await client.call("trace", {"limit": 4})

        response = run(with_service(self.traced_config(), action))
        assert response["ok"]
        result = response["result"]
        assert result["tracing"] is True
        assert result["recorded"] >= 1
        trace = next(t for t in result["traces"] if t["op"] == "decompress")
        assert len(trace["trace_id"]) == 16
        root = trace["tree"]["request.decompress"]
        worker = root["children"]["worker.decompress"]
        assert "decode.stream" in worker["children"]
        # raw events: unique ids, every parent resolvable, root at 0
        events = trace["events"]
        ids = {ev["id"] for ev in events}
        assert len(ids) == len(events)
        assert all(ev["parent"] in ids or ev["parent"] == 0
                   for ev in events)
        assert {ev["name"] for ev in events} >= {
            "request.decompress", "worker.decompress", "decode.stream",
        }

    def test_compress_batch_members_each_get_own_tree(self):
        async def action(service, client):
            responses = await asyncio.gather(
                client.call("compress", {"data": DATA, "k": 8}),
                client.call("compress", {"data": DATA, "k": 8}),
            )
            assert all(r["ok"] for r in responses)
            return await client.call("trace", {"limit": 8})

        config = self.traced_config(batch_window_ms=5.0, max_batch=4)
        response = run(with_service(config, action))
        compress_traces = [t for t in response["result"]["traces"]
                           if t["op"] == "compress"]
        assert len(compress_traces) == 2
        for trace in compress_traces:
            root = trace["tree"]["request.compress"]
            batch_wait = root["children"]["batch.wait"]
            # the worker's encode span lands under this member's own
            # batch.wait, even though one batched worker call served both
            assert "encode" in batch_wait["children"]

    def test_trace_op_filters_by_id_and_validates_limit(self):
        async def action(service, client):
            await client.call("compress", {"data": DATA, "k": 8})
            await client.call("compress", {"data": DATA, "k": 8})
            everything = await client.call("trace", {})
            wanted = everything["result"]["traces"][-1]["trace_id"]
            single = await client.call("trace", {"trace_id": wanted})
            assert [t["trace_id"]
                    for t in single["result"]["traces"]] == [wanted]
            bad = await client.call("trace", {"limit": 0})
            assert bad["ok"] is False
            assert bad["error"]["code"] == "bad_request"
            return everything

        response = run(with_service(self.traced_config(), action))
        assert response["ok"]

    def test_control_plane_ops_are_not_traced(self):
        async def action(service, client):
            await client.call("health", {})
            await client.call("metrics", {})
            response = await client.call("trace", {})
            assert response["result"]["traces"] == []
            health = await client.call("health", {})
            assert health["result"]["traces_recorded"] == 0
            return response

        run(with_service(self.traced_config(), action))

    def test_tracing_disabled_records_nothing(self):
        async def action(service, client):
            assert (await client.call(
                "compress", {"data": DATA, "k": 8}))["ok"]
            return await client.call("trace", {})

        response = run(with_service(inline_config(), action))
        assert response["ok"]
        assert response["result"]["tracing"] is False
        assert response["result"]["traces"] == []

    def test_trace_capacity_bounds_the_store(self):
        async def action(service, client):
            for _ in range(5):
                await client.call("compress", {"data": DATA, "k": 8})
            return await client.call("trace", {"limit": 16})

        config = self.traced_config(trace_capacity=2)
        response = run(with_service(config, action))
        result = response["result"]
        assert len(result["traces"]) == 2  # ring keeps the newest
        assert result["recorded"] == 5
        assert result["capacity"] == 2


class TestProcessPool:
    def test_real_worker_crash_is_absorbed(self):
        async def scenario():
            config = ServiceConfig(
                executor="process", workers=1, enable_obs=False,
                allow_chaos=True,
                retry=RetryPolicy(max_attempts=3, base_s=0.0, jitter=0.0))
            service = CompressionService(config)
            await service.start()
            try:
                client = Client(service)
                warm = await client.call("compress", {"data": DATA, "k": 8})
                assert warm["ok"]
                service.fault_plan.arm(
                    ServiceFault(kind="worker_crash", op="compress"))
                response = await client.call(
                    "compress", {"data": DATA, "k": 8}, deadline_ms=60_000)
                # the pool is rebuilt and the retry succeeds
                assert response["ok"], response
                assert service.totals["worker_crashes"] >= 1
                follow_up = await client.call(
                    "compress", {"data": DATA, "k": 8}, deadline_ms=60_000)
                assert follow_up["ok"]
            finally:
                await service.close()

        run(scenario())

    def test_trace_spans_cross_the_process_boundary(self):
        """Worker-side spans (decode.stream) recorded in a *separate
        process* must come back grafted under the request's root."""
        from repro import obs

        async def scenario():
            encoding = NineCEncoder(8).encode(TernaryVector(DATA))
            service = CompressionService(
                ServiceConfig(executor="process", workers=1))
            await service.start()
            try:
                client = Client(service)
                response = await client.call("decompress", {
                    "stream": encoding.stream.to_string(), "k": 8,
                    "output_length": encoding.original_length,
                }, deadline_ms=60_000)
                assert response["ok"]
                traces = await client.call("trace", {})
                trace = next(t for t in traces["result"]["traces"]
                             if t["op"] == "decompress")
                root = trace["tree"]["request.decompress"]
                worker = root["children"]["worker.decompress"]
                assert "decode.stream" in worker["children"]
                # grafted events sit inside the worker span's window
                by_name = {ev["name"]: ev for ev in trace["events"]}
                outer = by_name["worker.decompress"]
                inner = by_name["decode.stream"]
                assert inner["parent"] == outer["id"]
                assert inner["ts"] >= outer["ts"]
            finally:
                await service.close()

        try:
            run(scenario())
        finally:
            obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
class TestTCPServer:
    def test_tcp_roundtrip_and_malformed_frame(self):
        async def scenario():
            service = CompressionService(inline_config())
            server = await ServeServer(service, port=0).start()
            client = TCPClient(port=server.port)
            try:
                response = await client.call(
                    "compress", {"data": DATA, "k": 8})
                assert response["ok"]
                stream = response["result"]["stream"]
                # a malformed frame gets a typed error, connection lives
                garbage = await client.send_raw(b"this is not json\n")
                assert garbage["ok"] is False
                assert garbage["error"]["code"] == "malformed_frame"
                again = await client.call("decompress", {
                    "stream": stream, "k": 8,
                    "output_length": len(DATA)})
                assert again["ok"]
                assert again["result"]["data"] == expected_decode()
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_tcp_id_echo_and_health(self):
        async def scenario():
            service = CompressionService(inline_config())
            server = await ServeServer(service, port=0).start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(encode_frame(
                    {"id": "my-id-42", "op": "health", "params": {}}))
                await writer.drain()
                line = await reader.readline()
                response = json.loads(line)
                assert response["id"] == "my-id-42"
                assert response["ok"]
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()

        run(scenario())


# ----------------------------------------------------------------------
# end-to-end sanity against the reference pipeline
# ----------------------------------------------------------------------
class TestServiceAgainstReference:
    def test_served_stream_matches_direct_pipeline(self):
        async def scenario(service, client):
            response = await client.call("compress", {"data": DATA, "k": 8})
            direct = NineCEncoder(8).encode(TernaryVector(DATA))
            assert response["result"]["stream"] == direct.stream.to_string()
            assert response["result"]["te_bits"] == direct.compressed_size
            decoded = NineCDecoder(8).decode_stream(
                direct.stream, direct.original_length)
            # decode returns the X-filled data; it must cover the original
            assert TernaryVector(DATA).covers(decoded) \
                or decoded.to_string() == expected_decode()

        run(with_service(inline_config(), scenario))
