"""Tests for the Prometheus text exposition of the metrics registry."""

from __future__ import annotations

from repro import obs
from repro.obs.metrics import MetricsRegistry, render_prometheus_text


def registry_with(counters=(), gauges=(), histograms=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, bounds, observations in histograms:
        histogram = registry.histogram(name, bounds)
        for value in observations:
            histogram.observe(value)
    return registry


class TestRenderPrometheusText:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus_text(MetricsRegistry()) == ""

    def test_counter_sample(self):
        text = render_prometheus_text(
            registry_with(counters=[("encode.blocks", 42)]))
        assert "# TYPE encode_blocks counter" in text
        assert "encode_blocks 42" in text

    def test_gauge_sample(self):
        text = render_prometheus_text(
            registry_with(gauges=[("stream.bits", 1337)]))
        assert "# TYPE stream_bits gauge" in text
        assert "stream_bits 1337" in text

    def test_histogram_is_cumulative_with_inf_sum_count(self):
        text = render_prometheus_text(registry_with(
            histograms=[("latency", (1, 5, 10), [0.5, 0.7, 3, 99])]))
        lines = text.splitlines()
        assert "# TYPE latency histogram" in lines
        # cumulative counts: <=1 has 2, <=5 has 3, <=10 has 3, +Inf 4
        assert 'latency_bucket{le="1"} 2' in lines
        assert 'latency_bucket{le="5"} 3' in lines
        assert 'latency_bucket{le="10"} 3' in lines
        assert 'latency_bucket{le="+Inf"} 4' in lines
        assert "latency_count 4" in lines
        assert any(line.startswith("latency_sum ") for line in lines)

    def test_names_sanitized_for_exposition(self):
        text = render_prometheus_text(registry_with(
            counters=[("serve.cache.hits", 1),
                      ("weird-name with spaces", 2)]))
        assert "serve_cache_hits 1" in text
        assert "weird_name_with_spaces 2" in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split(" ", 1)[0].split("{", 1)[0]
            assert all(c.isalnum() or c in "_:" for c in name), name

    def test_output_sorted_and_newline_terminated(self):
        text = render_prometheus_text(registry_with(
            counters=[("zeta", 1), ("alpha", 2)]))
        assert text.endswith("\n")
        assert text.index("alpha") < text.index("zeta")
        assert text == render_prometheus_text(registry_with(
            counters=[("alpha", 2), ("zeta", 1)]))

    def test_default_registry_is_the_process_registry(self):
        with obs.enabled_scope(True):
            obs.reset()
            try:
                obs.counter("prom.test.counter").inc(7)
                text = render_prometheus_text()
                assert "prom_test_counter 7" in text
            finally:
                obs.reset()

    def test_float_values_render_plainly(self):
        text = render_prometheus_text(registry_with(
            gauges=[("ratio", 0.25)]))
        assert "ratio 0.25" in text


def parse_exposition(text):
    """Minimal exposition-format parser for round-trip checks."""
    types, samples = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        name_part, value = line.rsplit(" ", 1)
        assert name_part not in samples, f"duplicate series: {name_part}"
        samples[name_part] = float(value)
    return types, samples


class TestExpositionRoundTrip:
    def test_round_trip_against_snapshot(self):
        registry = registry_with(
            counters=[("encode.bits_in", 24), ("encode.calls", 3)],
            gauges=[("stream.bits", 17.5)],
            histograms=[("latency.ms", (1, 5, 10), [0.5, 0.7, 3, 99])],
        )
        types, samples = parse_exposition(render_prometheus_text(registry))
        snapshot = registry.snapshot()
        assert types == {
            "encode_bits_in": "counter", "encode_calls": "counter",
            "stream_bits": "gauge", "latency_ms": "histogram",
        }
        for name, value in snapshot["counters"].items():
            assert samples[name.replace(".", "_")] == value
        assert samples["stream_bits"] == 17.5
        hist = snapshot["histograms"]["latency.ms"]
        assert samples["latency_ms_count"] == hist["count"]
        assert samples["latency_ms_sum"] == hist["sum"]
        # cumulative buckets decumulate back to the snapshot's buckets
        cumulative = []
        for edge in hist["buckets"]:
            le = "+Inf" if edge == "+inf" else edge[2:]
            cumulative.append(samples[f'latency_ms_bucket{{le="{le}"}}'])
        per_bucket = [after - before for before, after
                      in zip([0] + cumulative[:-1], cumulative)]
        assert per_bucket == list(hist["buckets"].values())
        assert cumulative[-1] == hist["count"]

    def test_sanitized_name_collisions_stay_distinct_series(self):
        registry = registry_with(counters=[
            ("serve.shed", 1), ("serve/shed", 3), ("serve_shed", 2),
        ])
        text = render_prometheus_text(registry)
        lines = text.splitlines()
        # sorted registry order: "serve.shed" < "serve/shed" < "serve_shed"
        assert "serve_shed 1" in lines
        assert "serve_shed_2 3" in lines
        assert "serve_shed_3 2" in lines
        _, samples = parse_exposition(text)  # asserts no duplicate series
        assert len(samples) == 3

    def test_label_value_escaping(self):
        from repro.obs.metrics import _expo_label_value

        assert _expo_label_value('a"b') == 'a\\"b'
        assert _expo_label_value("a\\b") == "a\\\\b"
        assert _expo_label_value("a\nb") == "a\\nb"
        assert _expo_label_value("1.5") == "1.5"  # bucket edges untouched
