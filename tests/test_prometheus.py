"""Tests for the Prometheus text exposition of the metrics registry."""

from __future__ import annotations

from repro import obs
from repro.obs.metrics import MetricsRegistry, render_prometheus_text


def registry_with(counters=(), gauges=(), histograms=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, bounds, observations in histograms:
        histogram = registry.histogram(name, bounds)
        for value in observations:
            histogram.observe(value)
    return registry


class TestRenderPrometheusText:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus_text(MetricsRegistry()) == ""

    def test_counter_sample(self):
        text = render_prometheus_text(
            registry_with(counters=[("encode.blocks", 42)]))
        assert "# TYPE encode_blocks counter" in text
        assert "encode_blocks 42" in text

    def test_gauge_sample(self):
        text = render_prometheus_text(
            registry_with(gauges=[("stream.bits", 1337)]))
        assert "# TYPE stream_bits gauge" in text
        assert "stream_bits 1337" in text

    def test_histogram_is_cumulative_with_inf_sum_count(self):
        text = render_prometheus_text(registry_with(
            histograms=[("latency", (1, 5, 10), [0.5, 0.7, 3, 99])]))
        lines = text.splitlines()
        assert "# TYPE latency histogram" in lines
        # cumulative counts: <=1 has 2, <=5 has 3, <=10 has 3, +Inf 4
        assert 'latency_bucket{le="1"} 2' in lines
        assert 'latency_bucket{le="5"} 3' in lines
        assert 'latency_bucket{le="10"} 3' in lines
        assert 'latency_bucket{le="+Inf"} 4' in lines
        assert "latency_count 4" in lines
        assert any(line.startswith("latency_sum ") for line in lines)

    def test_names_sanitized_for_exposition(self):
        text = render_prometheus_text(registry_with(
            counters=[("serve.cache.hits", 1),
                      ("weird-name with spaces", 2)]))
        assert "serve_cache_hits 1" in text
        assert "weird_name_with_spaces 2" in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split(" ", 1)[0].split("{", 1)[0]
            assert all(c.isalnum() or c in "_:" for c in name), name

    def test_output_sorted_and_newline_terminated(self):
        text = render_prometheus_text(registry_with(
            counters=[("zeta", 1), ("alpha", 2)]))
        assert text.endswith("\n")
        assert text.index("alpha") < text.index("zeta")
        assert text == render_prometheus_text(registry_with(
            counters=[("alpha", 2), ("zeta", 1)]))

    def test_default_registry_is_the_process_registry(self):
        with obs.enabled_scope(True):
            obs.reset()
            try:
                obs.counter("prom.test.counter").inc(7)
                text = render_prometheus_text()
                assert "prom_test_counter 7" in text
            finally:
                obs.reset()

    def test_float_values_render_plainly(self):
        text = render_prometheus_text(registry_with(
            gauges=[("ratio", 0.25)]))
        assert "ratio 0.25" in text
