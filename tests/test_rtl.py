"""repro.rtl front end: parser, elaborator, emitter, analysis passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.bench import parse_bench, write_bench
from repro.circuits.netlist import Gate, GateType, Netlist
from repro.decompressor.gates import decoder_netlist
from repro.lint.netlist import lint_netlist
from repro.lint.findings import Severity
from repro.rtl import (
    ElaborationError,
    RTLParseError,
    cone_inputs,
    detect_fsms,
    elaborate,
    fanin_cone,
    find_combinational_loops,
    import_verilog,
    netlist_loops,
    netlist_to_verilog,
    parse_verilog,
    tokenize,
    x_propagation,
)


def lint_errors(netlist, waive=()):
    return [
        f for f in lint_netlist(netlist, waive=waive)
        if f.severity is Severity.ERROR
    ]


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("module m (a);")
        assert [t.value for t in tokens] == ["module", "m", "(", "a", ")", ";"]
        assert tokens[0].line == 1 and tokens[0].col == 1

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_comments_skipped(self):
        tokens = tokenize("a // line\nb /* block\nstill */ c")
        assert [t.value for t in tokens] == ["a", "b", "c"]
        assert tokens[2].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(RTLParseError, match="unterminated"):
            tokenize("a /* never closed")

    def test_sized_literal_is_one_token(self):
        tokens = tokenize("1'b0 4'hF")
        assert [t.kind for t in tokens] == ["sized", "sized"]

    def test_garbage_rejected_with_line(self):
        with pytest.raises(RTLParseError, match="line 2"):
            tokenize("a\n@@@")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

class TestParser:
    def test_non_ansi_header(self):
        design = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n buf (y, a);\n"
            "endmodule\n"
        )
        module = design.modules[0]
        assert module.port_names == ["a", "y"]
        assert module.gates[0].primitive == "buf"
        assert module.gates[0].loc.line == 4

    def test_ansi_header(self):
        design = parse_verilog(
            "module m (input wire a, input b, output y);\n"
            " and g1 (y, a, b);\nendmodule\n"
        )
        module = design.modules[0]
        assert [p.direction for p in module.ports] == \
            ["input", "input", "output"]
        assert module.gates[0].instance == "g1"

    def test_header_order_preserved(self):
        design = parse_verilog(
            "module m (y, a);\n input a;\n output y;\n buf (y, a);\n"
            "endmodule\n"
        )
        assert design.modules[0].port_names == ["y", "a"]

    def test_undeclared_header_port_rejected(self):
        with pytest.raises(RTLParseError, match="no input/output"):
            parse_verilog("module m (a, ghost);\n input a;\nendmodule\n")

    def test_parameters_resolve_clog2_and_division(self):
        design = parse_verilog(
            "module m (a);\n input a;\n"
            " parameter K = 16;\n"
            " localparam HALF = K / 2;\n"
            " localparam W = $clog2(K / 2) + 1;\n"
            "endmodule\n"
        )
        values = {p.name: p.value for p in design.modules[0].params}
        assert values == {"K": 16, "HALF": 8, "W": 4}

    def test_range_uses_parameters(self):
        design = parse_verilog(
            "module m (input [($clog2(8)) - 1:0] a, output y);\n"
            " buf (y, a);\nendmodule\n"
        )
        assert design.modules[0].ports[0].width == 3

    def test_unresolvable_constant_rejected(self):
        with pytest.raises(RTLParseError, match="cannot resolve"):
            parse_verilog(
                "module m (a);\n input a;\n localparam P = NOPE + 1;\n"
                "endmodule\n"
            )

    def test_assign_simple_net(self):
        design = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n assign y = a;\n"
            "endmodule\n"
        )
        assign = design.modules[0].assigns[0]
        assert (assign.target, assign.source) == ("y", "a")

    def test_assign_expression_rejected(self):
        with pytest.raises(RTLParseError, match="plain net"):
            parse_verilog(
                "module m (a, y);\n input a;\n output y;\n"
                " assign y = 1'b0;\nendmodule\n"
            )

    def test_behavioral_keyword_rejected_with_pointer(self):
        with pytest.raises(RTLParseError, match="structural subset"):
            parse_verilog(
                "module m (a);\n input a;\n reg r;\nendmodule\n"
            )
        with pytest.raises(RTLParseError, match="rtlsim"):
            parse_verilog(
                "module m (clk);\n input clk;\n"
                " always begin end\nendmodule\n"
            )

    def test_inout_rejected(self):
        with pytest.raises(RTLParseError, match="inout"):
            parse_verilog("module m (a);\n inout a;\nendmodule\n")

    def test_parameter_override_rejected(self):
        with pytest.raises(RTLParseError, match="parameter overrides"):
            parse_verilog(
                "module m (a, y);\n input a;\n output y;\n"
                " sub #(4) u0 (y, a);\nendmodule\n"
                "module sub (y, a);\n input a;\n output y;\n"
                " buf (y, a);\nendmodule\n"
            )

    def test_constant_gate_terminal_rejected(self):
        with pytest.raises(RTLParseError, match="constant"):
            parse_verilog(
                "module m (y);\n output y;\n buf (y, 1'b1);\nendmodule\n"
            )

    def test_bit_select_rejected(self):
        with pytest.raises(RTLParseError, match="selects"):
            parse_verilog(
                "module m (a, y);\n input [1:0] a;\n output y;\n"
                " buf (y, a[0]);\nendmodule\n"
            )

    def test_named_and_positional_connections(self):
        design = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n"
            " dff u0 (.clk(), .d(a), .q(y));\n dff u1 (y, a);\n"
            "endmodule\n"
        )
        named, positional = design.modules[0].instances
        assert named.by_name and not positional.by_name
        assert named.connections[0].net is None  # explicitly unconnected

    def test_duplicate_module_rejected(self):
        source = "module m (a);\n input a;\nendmodule\n" * 2
        with pytest.raises(RTLParseError, match="duplicate module"):
            parse_verilog(source)

    def test_gate_needs_two_terminals(self):
        with pytest.raises(RTLParseError, match="at least one input"):
            parse_verilog(
                "module m (y);\n output y;\n not (y);\nendmodule\n"
            )


# ---------------------------------------------------------------------------
# elaboration
# ---------------------------------------------------------------------------

HALF_ADDER_HIER = """
module half_adder (input a, input b, output s, output c);
  xor (s, a, b);
  and (c, a, b);
endmodule
module full_adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  half_adder u1 (.a(a), .b(b), .s(s1), .c(c1));
  half_adder u2 (s1, cin, sum, c2);
  or (cout, c1, c2);
endmodule
"""


class TestElaborate:
    def test_hierarchy_flattens_to_gates(self):
        elaboration = import_verilog(HALF_ADDER_HIER)
        assert elaboration.top == "full_adder"
        netlist = elaboration.netlist()
        assert netlist.inputs == ["a", "b", "cin"]
        assert netlist.num_gates == 5
        assert elaboration.stats()["instances_flattened"] == 2
        assert not lint_errors(netlist)

    def test_internal_nets_get_hierarchical_names(self):
        source = (
            "module inv2 (input a, output y);\n"
            " wire mid;\n not (mid, a);\n not (y, mid);\nendmodule\n"
            "module top (input a, output y);\n"
            " inv2 u0 (.a(a), .y(y));\nendmodule\n"
        )
        netlist = import_verilog(source).netlist()
        assert "u0.mid" in netlist.gates

    def test_explicit_top_selection(self):
        elaboration = import_verilog(HALF_ADDER_HIER, top="half_adder")
        assert elaboration.top == "half_adder"
        assert elaboration.netlist().num_gates == 2

    def test_ambiguous_top_rejected(self):
        source = (
            "module a (input x, output y);\n buf (y, x);\nendmodule\n"
            "module b (input x, output y);\n not (y, x);\nendmodule\n"
        )
        with pytest.raises(ElaborationError, match="ambiguous top"):
            import_verilog(source)
        assert import_verilog(source, top="b").top == "b"

    def test_unknown_module_rejected(self):
        with pytest.raises(ElaborationError, match="unknown module"):
            import_verilog(
                "module m (a, y);\n input a;\n output y;\n"
                " mystery u0 (y, a);\nendmodule\n"
            )

    def test_recursive_instantiation_rejected(self):
        source = (
            "module a (input x, output y);\n b u0 (.x(x), .y(y));\n"
            "endmodule\n"
            "module b (input x, output y);\n a u0 (.x(x), .y(y));\n"
            "endmodule\n"
        )
        with pytest.raises(ElaborationError, match="recursive"):
            import_verilog(source, top="a")

    def test_dff_cell_named_and_positional(self):
        source = (
            "module m (input clk, input d, output q, output q2);\n"
            " dff u0 (.clk(clk), .d(d), .q(q));\n"
            " dff u1 (q2, q, clk);\n"
            "endmodule\n"
        )
        elaboration = import_verilog(source)
        netlist = elaboration.netlist()
        assert netlist.flip_flops == ["q", "q2"]
        assert elaboration.clocks == ["clk"]
        assert netlist.inputs == ["d"]  # clk inferred away

    def test_clock_also_used_functionally_stays_an_input(self):
        source = (
            "module m (input clk, input d, output q, output y);\n"
            " dff u0 (.clk(clk), .d(d), .q(q));\n"
            " and (y, q, clk);\n"
            "endmodule\n"
        )
        elaboration = import_verilog(source)
        assert elaboration.clocks == []
        assert "clk" in elaboration.netlist().inputs

    def test_clock_threaded_through_hierarchy_is_inferred(self):
        source = (
            "module cell (input clk, input d, output q);\n"
            " dff f (.clk(clk), .d(d), .q(q));\n"
            "endmodule\n"
            "module top (input clk, input a, output y);\n"
            " cell u0 (.clk(clk), .d(a), .q(y));\n"
            "endmodule\n"
        )
        elaboration = import_verilog(source)
        assert elaboration.clocks == ["clk"]
        assert elaboration.netlist().inputs == ["a"]

    def test_hierarchical_clock_used_functionally_stays_an_input(self):
        source = (
            "module cell (input clk, input d, output q);\n"
            " dff f (.clk(clk), .d(d), .q(q));\n"
            "endmodule\n"
            "module top (input clk, input a, output y, output z);\n"
            " cell u0 (.clk(clk), .d(a), .q(y));\n"
            " and (z, y, clk);\n"
            "endmodule\n"
        )
        elaboration = import_verilog(source)
        assert elaboration.clocks == []
        assert "clk" in elaboration.netlist().inputs

    def test_sdff_records_scan_wiring(self):
        source = (
            "module m (input clk, input se, input si, input d, output q);\n"
            " sdff u0 (.clk(clk), .d(d), .q(q), .si(si), .se(se));\n"
            "endmodule\n"
        )
        elaboration = import_verilog(source)
        cell = elaboration.scan_cells[0]
        assert (cell.flop, cell.scan_in, cell.scan_enable) == \
            ("q", "si", "se")
        # scan-only pins are infrastructure, not functional inputs
        assert elaboration.netlist().inputs == ["d"]

    def test_user_module_overrides_dff_cell(self):
        source = (
            "module dff (input d, output q);\n not (q, d);\nendmodule\n"
            "module top (input d, output q);\n"
            " dff u0 (.d(d), .q(q));\nendmodule\n"
        )
        netlist = import_verilog(source, top="top").netlist()
        assert netlist.flip_flops == []
        assert netlist.gates["q"].gate_type is GateType.NOT

    def test_dff_missing_data_pin_rejected(self):
        with pytest.raises(ElaborationError, match="q and d"):
            import_verilog(
                "module m (input clk, output q);\n"
                " dff u0 (.clk(clk), .q(q));\nendmodule\n"
            )

    def test_implicit_nets_surface_in_lint(self):
        source = (
            "module m (input a, output y);\n"
            " and (y, a, ghost);\nendmodule\n"
        )
        elaboration = import_verilog(source)
        assert elaboration.implicit_nets == ["ghost"]
        findings = lint_netlist(elaboration.raw)
        assert any(
            f.rule == "NL001" and f.location == "ghost" for f in findings
        )

    def test_vector_wire_rejected(self):
        with pytest.raises(ElaborationError, match="vector"):
            import_verilog(
                "module m (input a, output y);\n wire [3:0] bus;\n"
                " buf (y, a);\nendmodule\n"
            )

    def test_structural_defects_survive_to_raw(self):
        source = (
            "module m (input a, output y);\n"
            " buf (y, a);\n not (y, a);\nendmodule\n"
        )
        elaboration = import_verilog(source)
        findings = lint_netlist(elaboration.raw)
        assert any(f.rule == "NL002" for f in findings)
        with pytest.raises(ValueError):
            elaboration.netlist()


# ---------------------------------------------------------------------------
# emission + round trips
# ---------------------------------------------------------------------------

class TestEmit:
    def test_combinational_module_shape(self):
        netlist = Netlist("mini", ["a", "b"], ["y"],
                          [Gate("y", GateType.AND, ("a", "b"))])
        text = netlist_to_verilog(netlist)
        assert "module mini (" in text
        assert "input clk" not in text  # no flops, no clock port
        assert "and u0 (y, a, b);" in text

    def test_sequential_module_gets_clock(self):
        netlist = Netlist("seq", ["d"], ["q"],
                          [Gate("q", GateType.DFF, ("d",))])
        text = netlist_to_verilog(netlist)
        assert "input clk;" in text
        assert "dff u0 (.clk(clk), .d(d), .q(q));" in text

    def test_instance_names_avoid_net_collisions(self):
        netlist = Netlist("m", ["a", "u0"], ["y"],
                          [Gate("y", GateType.AND, ("a", "u0"))])
        text = netlist_to_verilog(netlist)
        assert "and u1 (y, a, u0);" in text

    def test_bad_identifier_rejected(self):
        netlist = Netlist("m", ["a.b"], ["y"],
                          [Gate("y", GateType.BUF, ("a.b",))])
        with pytest.raises(ValueError, match="identifier"):
            netlist_to_verilog(netlist)

    def test_clock_collision_rejected(self):
        netlist = Netlist("m", ["clk", "d"], ["q"], [
            Gate("q", GateType.DFF, ("d",)),
        ])
        with pytest.raises(ValueError, match="clock"):
            netlist_to_verilog(netlist)

    @pytest.mark.parametrize("k", [4, 8, 16, 32])
    def test_decoder_roundtrip_identity_and_lint_clean(self, k):
        original = decoder_netlist(k)
        elaboration = import_verilog(netlist_to_verilog(original))
        reimported = elaboration.netlist()
        assert original.structurally_equal(reimported)
        assert elaboration.clocks == ["clk"]
        assert not lint_errors(reimported, waive=("NL006",))


def netlists(draw):
    """Build a random DAG netlist: every fanin predates its gate."""
    num_inputs = draw(st.integers(1, 4))
    inputs = [f"i{n}" for n in range(num_inputs)]
    nets = list(inputs)
    gates = []
    binary = [GateType.AND, GateType.OR, GateType.XOR,
              GateType.NAND, GateType.NOR, GateType.XNOR]
    for index in range(draw(st.integers(1, 12))):
        name = f"g{index}"
        kind = draw(st.sampled_from(binary + [GateType.NOT, GateType.BUF,
                                              GateType.DFF]))
        if kind in (GateType.NOT, GateType.BUF, GateType.DFF):
            fanins = (draw(st.sampled_from(nets)),)
        else:
            count = draw(st.integers(2, 3))
            fanins = tuple(
                draw(st.sampled_from(nets)) for _ in range(count)
            )
        gates.append(Gate(name, kind, fanins))
        nets.append(name)
    non_input = [g.name for g in gates]
    outputs = draw(
        st.lists(st.sampled_from(non_input), min_size=1,
                 max_size=3, unique=True)
    )
    return Netlist("random", inputs, outputs, gates)


random_netlists = st.composite(netlists)()


class TestRoundTripProperties:
    @given(random_netlists)
    @settings(max_examples=40, deadline=None)
    def test_verilog_roundtrip_is_identity(self, netlist):
        reimported = import_verilog(netlist_to_verilog(netlist)).netlist()
        assert netlist.structurally_equal(reimported)

    @given(random_netlists)
    @settings(max_examples=40, deadline=None)
    def test_bench_roundtrip_is_identity(self, netlist):
        reparsed = parse_bench(write_bench(netlist))
        assert netlist.structurally_equal(reparsed)

    def test_structurally_equal_discriminates(self):
        base = Netlist("m", ["a", "b"], ["y"],
                       [Gate("y", GateType.AND, ("a", "b"))])
        same = Netlist("other_name", ["a", "b"], ["y"],
                       [Gate("y", GateType.AND, ("a", "b"))])
        swapped = Netlist("m", ["a", "b"], ["y"],
                          [Gate("y", GateType.AND, ("b", "a"))])
        retyped = Netlist("m", ["a", "b"], ["y"],
                          [Gate("y", GateType.OR, ("a", "b"))])
        assert base.structurally_equal(same)  # name is not structure
        assert not base.structurally_equal(swapped)
        assert not base.structurally_equal(retyped)


# ---------------------------------------------------------------------------
# analysis passes
# ---------------------------------------------------------------------------

class TestPasses:
    def test_fanin_cone_and_inputs(self):
        netlist = import_verilog(HALF_ADDER_HIER, top="full_adder") \
            .netlist()
        assert cone_inputs(netlist, "cout") == {"a", "b", "cin"}
        assert cone_inputs(netlist, "s1") == {"a", "b"}
        assert "c2" not in fanin_cone(netlist, "s1")

    def test_cone_of_unknown_net_raises(self):
        netlist = decoder_netlist(4)
        with pytest.raises(KeyError):
            fanin_cone(netlist, "nonexistent")

    def test_find_combinational_loops(self):
        gates = {"x": ("y", "a"), "y": ("x",), "z": ("a",)}
        loops = find_combinational_loops(gates, sources={"a"})
        assert len(loops) == 1
        assert set(loops[0]) == {"x", "y"}

    def test_netlist_loops_clean_and_dirty(self):
        assert netlist_loops(decoder_netlist(8)) == []
        looped = Netlist("loop", ["a"], ["x"], [
            Gate("x", GateType.AND, ("a", "y")),
            Gate("y", GateType.BUF, ("x",)),
        ])
        assert netlist_loops(looped)

    def test_x_propagation_extremes(self):
        netlist = Netlist("xp", ["a", "b"], ["thru", "blocked"], [
            Gate("thru", GateType.BUF, ("a",)),
            Gate("a_n", GateType.NOT, ("a",)),
            Gate("zero", GateType.AND, ("a", "a_n")),
            Gate("blocked", GateType.AND, ("b", "zero")),
        ])
        rates = x_propagation(netlist, "a", trials=16)
        assert rates["thru"] == 1.0
        assert rates["blocked"] == 0.0

    def test_x_propagation_unknown_source(self):
        with pytest.raises(KeyError):
            x_propagation(decoder_netlist(4), "nope")

    def test_detect_fsms_recovers_decoder_controller(self):
        netlist = decoder_netlist(8)
        recovered = detect_fsms(netlist)
        by_registers = {fsm.registers: fsm for fsm in recovered}
        controller = by_registers[("q0", "q1", "q2")]
        assert controller.inputs == ("data_in",)
        assert set(controller.outputs) == {"sel0", "sel1"}
        # reset state reaches the whole trie
        assert len(controller.reachable_states()) == 8
        counter = by_registers[("c0", "c1")]
        assert counter.inputs == ("advance",)
        # the counter counts 0..3 and wraps under advance
        assert counter.transitions[(0, 1)] == 1
        assert counter.transitions[(3, 1)] == 0
        assert counter.transitions[(2, 0)] == 2

    def test_detect_fsms_survives_renaming(self):
        base = decoder_netlist(8)
        mapping = {name: f"n{i}" for i, name in enumerate(base.gates)}
        renamed = Netlist(
            "renamed",
            [mapping[i] for i in base.inputs],
            [mapping[o] for o in base.outputs],
            [
                Gate(mapping[g.name], g.gate_type,
                     tuple(mapping[f] for f in g.fanins))
                for g in base.gates.values()
                if g.gate_type is not GateType.INPUT
            ],
        )
        recovered = detect_fsms(renamed)
        assert {len(fsm.registers) for fsm in recovered} == {3, 2}

    def test_shift_register_is_not_an_fsm(self):
        # pure feed-forward shifter: no dependency SCC, no FSM
        netlist = Netlist("shift", ["si"], ["q1"], [
            Gate("q0", GateType.DFF, ("si",)),
            Gate("q1", GateType.DFF, ("q0",)),
        ])
        assert detect_fsms(netlist) == []


# ---------------------------------------------------------------------------
# imported designs feed the rest of the toolchain
# ---------------------------------------------------------------------------

class TestImportIntegration:
    def test_imported_decoder_simulates_like_the_original(self):
        from repro.circuits.simulator import simulate_patterns

        original = decoder_netlist(8)
        reimported = import_verilog(netlist_to_verilog(original)) \
            .netlist()
        rng = np.random.default_rng(7)
        patterns = rng.integers(
            0, 2, size=(64, original.scan_length)
        ).astype(np.uint8)
        before = simulate_patterns(original, patterns)
        after = simulate_patterns(reimported, patterns)
        for net in original.scan_outputs:
            assert (before[net] == after[net]).all()
