"""Unit + property tests for all baseline compression codes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    AlternatingRunLengthCode,
    DictionaryCode,
    EFDRCode,
    FDRCode,
    GolombCode,
    MTCCode,
    NineCCode,
    SelectiveHuffmanCode,
    VIHCCode,
    best_golomb,
    best_mtc,
    best_ninec,
    best_selective_huffman,
    best_vihc,
    fdr_codeword,
    fdr_codeword_length,
    fdr_group,
    roundtrip_ok,
    table4_codes,
)
from repro.core import TernaryVector

from .conftest import ternary_vectors

ALL_CODES = [
    GolombCode(4),
    FDRCode(),
    EFDRCode(),
    AlternatingRunLengthCode(),
    VIHCCode(8),
    SelectiveHuffmanCode(b=4, n=4),
    MTCCode(8),
    DictionaryCode(b=8, d=4),
    NineCCode(8),
]


class TestFDRCodeStructure:
    @pytest.mark.parametrize("run,group", [
        (0, 1), (1, 1), (2, 2), (5, 2), (6, 3), (13, 3), (14, 4),
    ])
    def test_groups(self, run, group):
        assert fdr_group(run) == group

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            fdr_group(-1)

    @pytest.mark.parametrize("run,bits", [
        (0, [0, 0]),
        (1, [0, 1]),
        (2, [1, 0, 0, 0]),
        (5, [1, 0, 1, 1]),
        (6, [1, 1, 0, 0, 0, 0]),
    ])
    def test_codewords(self, run, bits):
        assert fdr_codeword(run) == bits

    def test_codeword_length(self):
        for run in range(0, 100):
            assert fdr_codeword_length(run) == len(fdr_codeword(run))

    @given(st.integers(0, 10_000))
    def test_prefix_structure(self, run):
        bits = fdr_codeword(run)
        group = fdr_group(run)
        assert bits[:group] == [1] * (group - 1) + [0]

    def test_codewords_prefix_free(self):
        words = [tuple(fdr_codeword(r)) for r in range(64)]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert a[: len(b)] != b


class TestGolomb:
    def test_m_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GolombCode(3)
        with pytest.raises(ValueError):
            GolombCode(1)

    def test_known_encoding(self):
        # run of 5 zeros + 1 with m=4: q=1 -> "10", r=1 -> "01"
        code = GolombCode(4)
        out = code.compress(TernaryVector("000001"))
        assert out.payload.to_string() == "1001"

    def test_best_golomb_picks_max_cr(self):
        data = TernaryVector("0" * 50 + "1" + "0" * 50)
        best = best_golomb(data)
        for m in (2, 4, 8, 16, 32):
            assert best.compression_ratio(data) >= \
                GolombCode(m).compression_ratio(data)


class TestVIHC:
    def test_invalid_mh(self):
        with pytest.raises(ValueError):
            VIHCCode(0)

    def test_saturated_runs(self):
        code = VIHCCode(4)
        data = TernaryVector("0" * 10 + "1")
        out = code.compress(data)
        assert code.decompress(out) == data

    def test_best_vihc(self):
        data = TernaryVector(("0" * 12 + "1") * 20)
        best = best_vihc(data)
        assert roundtrip_ok(best, data)


class TestSelectiveHuffman:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SelectiveHuffmanCode(b=0)
        with pytest.raises(ValueError):
            SelectiveHuffmanCode(n=0)

    def test_frequent_pattern_compresses(self):
        data = TernaryVector("10100101" * 40)
        code = SelectiveHuffmanCode(b=8, n=2)
        out = code.compress(data)
        assert out.compression_ratio > 80.0

    def test_x_maps_to_frequent_pattern(self):
        # Cubes compatible with the dominant pattern must not escape.
        data = TernaryVector("1010" * 30 + "1X10" + "10X0")
        code = SelectiveHuffmanCode(b=4, n=1)
        out = code.compress(data)
        decoded = code.decompress(out)
        assert decoded.covers(data)
        assert decoded.to_string() == "1010" * 32


class TestMTC:
    def test_repeating_blocks_compress(self):
        data = TernaryVector("10011001" * 50)
        code = MTCCode(8)
        # first block raw (9 bits), remaining 49 repeat flags
        assert code.compress(data).compressed_size == 9 + 49

    def test_compatible_repeat_via_x(self):
        data = TernaryVector("1001" + "1XX1" + "X0X1")
        code = MTCCode(4)
        out = code.compress(data)
        assert code.decompress(out).to_string() == "1001" * 3

    def test_best_mtc(self):
        data = TernaryVector("1100" * 64)
        assert best_mtc(data).compression_ratio(data) > 0


class TestDictionary:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DictionaryCode(b=0)
        with pytest.raises(ValueError):
            DictionaryCode(d=3)

    def test_dictionary_hit_uses_index(self):
        data = TernaryVector("1111" * 30 + "0110")
        code = DictionaryCode(b=4, d=2)
        out = code.compress(data)
        # 30 hits of 1+1 bits + possibly raw for the odd block
        assert out.compressed_size < len(data)


class TestNineCAdapter:
    def test_matches_encoder_size(self):
        from repro.core import NineCEncoder

        data = TernaryVector("0000X01X" * 10)
        adapter = NineCCode(8)
        assert adapter.compress(data).compressed_size == \
            NineCEncoder(8).encode(data).compressed_size

    def test_best_ninec_picks_best_k(self):
        data = TernaryVector("00000000" * 40 + "01100110" * 3)
        best = best_ninec(data, ks=(4, 8, 16))
        for k in (4, 8, 16):
            assert best.compression_ratio(data) >= \
                NineCCode(k).compression_ratio(data)


class TestCommonInterface:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    def test_wrong_stream_rejected(self, code):
        other = GolombCode(8) if code.name != "golomb(m=8)" else FDRCode()
        compressed = other.compress(TernaryVector("0001"))
        with pytest.raises(ValueError):
            code.decompress(compressed)

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    def test_empty_input(self, code):
        out = code.compress(TernaryVector(""))
        assert code.decompress(out).to_string() in ("", "X" * 0)

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    def test_repr_mentions_name(self, code):
        assert code.name in repr(code)


class TestRoundTripProperties:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    @given(data=ternary_vectors(max_size=96))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_covers(self, code, data):
        assert roundtrip_ok(code, data)

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    @given(data=ternary_vectors(max_size=96, x_bias=0.8))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_covers_high_x(self, code, data):
        assert roundtrip_ok(code, data)

    @pytest.mark.parametrize(
        "code",
        [GolombCode(4), FDRCode(), EFDRCode(), AlternatingRunLengthCode(),
         VIHCCode(8), NineCCode(8)],
        ids=lambda c: c.name,
    )
    @given(data=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=96)
           .map(TernaryVector))
    @settings(max_examples=40, deadline=None)
    def test_exact_roundtrip_fully_specified(self, code, data):
        # With no X, compression must be lossless bit-for-bit.
        assert code.decompress(code.compress(data)) == data


class TestTable4Harness:
    def test_all_codes_present(self):
        data = TernaryVector("0000X01X" * 20)
        codes = table4_codes(data)
        assert set(codes) == {
            "9c", "fdr", "efdr", "arl", "golomb", "vihc",
            "selhuff", "mtc", "dict",
        }
        for code in codes.values():
            assert roundtrip_ok(code, data)
