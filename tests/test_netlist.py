"""Unit tests for the netlist model and .bench I/O."""

import pytest

from repro.circuits import (
    Gate,
    GateType,
    Netlist,
    load_circuit,
    parse_bench,
    save_bench,
    write_bench,
)


def tiny():
    return Netlist(
        "tiny",
        inputs=["a", "b"],
        outputs=["y"],
        gates=[
            Gate("n1", GateType.AND, ("a", "b")),
            Gate("ff0", GateType.DFF, ("n1",)),
            Gate("y", GateType.NOR, ("n1", "ff0")),
        ],
    )


class TestGate:
    def test_input_with_fanins_rejected(self):
        with pytest.raises(ValueError):
            Gate("a", GateType.INPUT, ("b",))

    def test_unary_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate("n", GateType.NOT, ("a", "b"))
        with pytest.raises(ValueError):
            Gate("n", GateType.DFF, ())

    def test_gate_needs_fanins(self):
        with pytest.raises(ValueError):
            Gate("n", GateType.AND, ())


class TestNetlist:
    def test_structure(self):
        n = tiny()
        assert n.flip_flops == ["ff0"]
        assert n.num_gates == 2
        assert n.scan_inputs == ["a", "b", "ff0"]
        assert n.scan_outputs == ["y", "n1"]
        assert n.scan_length == 3

    def test_undefined_fanin_rejected(self):
        with pytest.raises(ValueError):
            Netlist("bad", ["a"], ["n1"],
                    [Gate("n1", GateType.NOT, ("missing",))])

    def test_undefined_output_rejected(self):
        with pytest.raises(ValueError):
            Netlist("bad", ["a"], ["nope"], [])

    def test_duplicate_gate_rejected(self):
        with pytest.raises(ValueError):
            Netlist("bad", ["a"], ["a"],
                    [Gate("a", GateType.NOT, ("a",))])

    def test_topological_order(self):
        order = tiny().topological_order()
        assert order.index("n1") < order.index("y")
        assert "ff0" not in order  # sequential element, not in comb core
        assert "a" not in order

    def test_combinational_loop_detected(self):
        n = Netlist(
            "loop", ["a"], ["x"],
            [Gate("x", GateType.AND, ("a", "y")),
             Gate("y", GateType.NOT, ("x",))],
        )
        with pytest.raises(ValueError):
            n.topological_order()

    def test_sequential_loop_is_fine(self):
        # Feedback through a DFF is legal (it is cut by the scan chain).
        n = Netlist(
            "seq", ["a"], ["x"],
            [Gate("x", GateType.AND, ("a", "f")),
             Gate("f", GateType.DFF, ("x",))],
        )
        assert n.topological_order() == ["x"]

    def test_levels(self):
        levels = tiny().levels()
        assert levels["a"] == 0
        assert levels["n1"] == 1
        assert levels["y"] == 2

    def test_fanouts(self):
        fanouts = tiny().fanouts()
        assert set(fanouts["n1"]) == {"ff0", "y"}
        assert fanouts["y"] == []

    def test_transitive_fanout(self):
        n = tiny()
        assert n.transitive_fanout("a") == {"n1", "y"}
        assert n.transitive_fanout("ff0") == {"y"}

    def test_stats_and_repr(self):
        n = tiny()
        stats = n.stats()
        assert stats["scan_length"] == 3
        assert "tiny" in repr(n)


class TestBenchFormat:
    def test_roundtrip(self):
        n = tiny()
        back = parse_bench(write_bench(n), name="tiny")
        assert back.inputs == n.inputs
        assert back.outputs == n.outputs
        assert back.scan_inputs == n.scan_inputs
        for name in n.gates:
            assert back.gates[name].gate_type == n.gates[name].gate_type
            assert back.gates[name].fanins == n.gates[name].fanins

    def test_comments_and_blanks_skipped(self):
        netlist = parse_bench("# hi\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a) # inline\n")
        assert netlist.inputs == ["a"]
        assert netlist.gates["y"].gate_type is GateType.NOT

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\ny = FROB(a)\n")

    def test_input_as_gate_rejected(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\ny = INPUT(a)\n")

    def test_save_load(self, tmp_path):
        from repro.circuits import load_bench

        path = tmp_path / "tiny.bench"
        save_bench(tiny(), path)
        back = load_bench(path)
        assert back.name == "tiny"
        assert back.scan_length == 3


class TestLibrary:
    def test_s27_shape(self):
        s27 = load_circuit("s27")
        assert len(s27.inputs) == 4
        assert len(s27.outputs) == 1
        assert len(s27.flip_flops) == 3
        assert s27.scan_length == 7

    def test_c17_shape(self):
        c17 = load_circuit("c17")
        assert len(c17.inputs) == 5
        assert c17.num_gates == 6
        assert not c17.flip_flops

    def test_generated_deterministic(self):
        a = load_circuit("g64")
        from repro.circuits import GeneratorConfig, generate_circuit

        b = generate_circuit(GeneratorConfig(
            "g64", num_inputs=8, num_outputs=6, num_flip_flops=12,
            num_gates=64, seed=64))
        assert write_bench(a) == write_bench(b)

    def test_unknown_circuit(self):
        with pytest.raises(ValueError):
            load_circuit("s404")

    def test_cache(self):
        assert load_circuit("s27") is load_circuit("s27")

    def test_generator_no_dangling_logic(self):
        n = load_circuit("g256")
        fanouts = n.fanouts()
        observed = set(n.outputs)
        for net, outs in fanouts.items():
            gate = n.gates[net]
            if gate.gate_type in (GateType.INPUT, GateType.DFF):
                continue
            assert outs or net in observed, f"dangling net {net}"
