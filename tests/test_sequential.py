"""Tests for scan-chain sequential simulation (the full-scan bridge)."""

import numpy as np
import pytest

from repro.circuits import (
    SequentialSimulator,
    apply_scan_test,
    combinational_prediction,
    load_circuit,
)
from repro.core import TernaryVector
from repro.testdata import TestSet, fill_test_set


class TestSequentialSimulator:
    def test_power_on_state_is_x(self):
        sim = SequentialSimulator(load_circuit("s27"))
        assert sim.chain_contents().to_string() == "XXX"

    def test_shift_fills_chain(self):
        sim = SequentialSimulator(load_circuit("s27"))
        for bit in (1, 0, 1):
            sim.clock(scan_en=True, scan_in=bit)
        # shift order: last bit shifted sits in ff[0]
        assert sim.chain_contents().to_string() == "101"

    def test_scan_out_streams_previous_state(self):
        sim = SequentialSimulator(load_circuit("s27"))
        sim.load_state(TernaryVector("011"))
        observed = [sim.clock(scan_en=True, scan_in=0).scan_out
                    for _ in range(3)]
        # ff[-1] leaves first
        assert observed == [1, 1, 0]

    def test_load_state_width_checked(self):
        sim = SequentialSimulator(load_circuit("s27"))
        with pytest.raises(ValueError):
            sim.load_state(TernaryVector("01"))

    def test_capture_uses_functional_data(self):
        s27 = load_circuit("s27")
        sim = SequentialSimulator(s27)
        pattern = TernaryVector("1010" + "011")
        sim.load_state(pattern[4:])
        pi_values = dict(zip(s27.inputs, pattern[:4]))
        sim.clock(pi_values=pi_values, scan_en=False)
        _po, expected_state = combinational_prediction(s27, pattern)
        assert sim.chain_contents() == expected_state


class TestScanProtocol:
    @pytest.mark.parametrize("circuit_name", ["s27", "g64"])
    def test_matches_combinational_abstraction(self, circuit_name):
        """The library-wide full-scan abstraction is sequentially sound."""
        circuit = load_circuit(circuit_name)
        rng = np.random.default_rng(17)
        sim = SequentialSimulator(circuit)
        for _ in range(12):
            bits = rng.integers(0, 2, size=circuit.scan_length)
            pattern = TernaryVector(bits.astype(np.uint8))
            result = apply_scan_test(sim, pattern)
            po_expected, state_expected = combinational_prediction(
                circuit, pattern
            )
            assert result.po_values == po_expected
            assert result.captured_state == state_expected
            # the shift-out stream is the captured state, last flop first
            assert list(result.shifted_out) == \
                list(reversed(list(state_expected)))

    def test_atpg_patterns_apply_sequentially(self):
        """ATPG cubes, filled, behave identically on the clocked design."""
        from repro.atpg import generate_test_cubes

        circuit = load_circuit("s27")
        atpg = generate_test_cubes(circuit)
        filled = fill_test_set(atpg.test_set, "random", seed=23)
        sim = SequentialSimulator(circuit)
        for pattern in filled:
            result = apply_scan_test(sim, pattern)
            po_expected, state_expected = combinational_prediction(
                circuit, pattern
            )
            assert result.po_values == po_expected
            assert result.captured_state == state_expected

    def test_wrong_pattern_length(self):
        sim = SequentialSimulator(load_circuit("s27"))
        with pytest.raises(ValueError):
            apply_scan_test(sim, TernaryVector("01"))
