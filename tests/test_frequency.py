"""Unit tests for frequency-directed codeword re-assignment (Table VII)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    LENGTH_POOL,
    BlockCase,
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    assign_lengths_by_frequency,
    deviates_from_default_order,
    frequency_directed,
)

from .conftest import ternary_vectors


class TestAssignLengths:
    def test_pool_matches_paper(self):
        assert sorted(LENGTH_POOL) == [1, 2, 4, 5, 5, 5, 5, 5, 5]

    def test_most_frequent_gets_shortest(self):
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C7] = 100
        counts[BlockCase.C2] = 50
        counts[BlockCase.C9] = 10
        lengths = assign_lengths_by_frequency(counts)
        assert lengths[BlockCase.C7] == 1
        assert lengths[BlockCase.C2] == 2
        assert lengths[BlockCase.C9] == 4

    def test_ties_preserve_default_priority(self):
        counts = {case: 0 for case in BlockCase}
        lengths = assign_lengths_by_frequency(counts)
        assert lengths == {
            BlockCase.C1: 1, BlockCase.C2: 2, BlockCase.C3: 4,
            BlockCase.C4: 5, BlockCase.C5: 5, BlockCase.C6: 5,
            BlockCase.C7: 5, BlockCase.C8: 5, BlockCase.C9: 5,
        }

    def test_expected_order_keeps_default(self):
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C1] = 1000
        counts[BlockCase.C2] = 500
        counts[BlockCase.C9] = 100
        lengths = assign_lengths_by_frequency(counts)
        assert lengths[BlockCase.C1] == 1
        assert lengths[BlockCase.C2] == 2
        assert lengths[BlockCase.C9] == 4

    def test_bad_pool_rejected(self):
        with pytest.raises(ValueError):
            assign_lengths_by_frequency({}, length_pool=(1, 2, 3))

    def test_result_is_kraft_feasible(self):
        counts = {case: i for i, case in enumerate(BlockCase)}
        lengths = assign_lengths_by_frequency(counts)
        Codebook.from_lengths(lengths)  # must not raise


class TestDeviation:
    def test_default_order_not_deviant(self):
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C1] = 100
        counts[BlockCase.C2] = 50
        counts[BlockCase.C9] = 20
        counts[BlockCase.C5] = 5
        assert not deviates_from_default_order(counts)

    def test_mismatch_heavy_is_deviant(self):
        # The paper's s9234 example: C8 outnumbers C9.
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C1] = 100
        counts[BlockCase.C2] = 50
        counts[BlockCase.C8] = 30
        counts[BlockCase.C9] = 20
        assert deviates_from_default_order(counts)


class TestFrequencyDirected:
    def test_never_worse_than_baseline(self):
        data = TernaryVector("0000X01X" * 20 + "X01X1111" * 30 + "00000000" * 10)
        result = frequency_directed(data, 8)
        assert result.improvement >= 0.0

    def test_improves_on_skewed_data(self):
        # Data dominated by C8 blocks: re-assignment must shorten C8's
        # codeword and improve CR.
        data = TernaryVector("X01X1111" * 50 + "00000000" * 5)
        result = frequency_directed(data, 8)
        assert result.improvement > 0.0
        assert result.codebook.length(BlockCase.C8) < 5

    def test_stable_on_conforming_data(self):
        data = TernaryVector("00000000" * 50 + "11111111" * 20 + "01100110" * 10)
        result = frequency_directed(data, 8)
        assert result.codebook == Codebook.default()
        assert result.improvement == pytest.approx(0.0)

    @given(ternary_vectors(min_size=1, max_size=160, x_bias=0.6))
    @settings(max_examples=60)
    def test_roundtrip_under_reassignment(self, data):
        result = frequency_directed(data, 8)
        enc = NineCEncoder(8, result.codebook).encode(data)
        decoded = NineCDecoder(8, result.codebook).decode(enc)
        assert decoded.covers(data)

    @given(ternary_vectors(min_size=1, max_size=160))
    @settings(max_examples=60)
    def test_improvement_nonnegative(self, data):
        assert frequency_directed(data, 8).improvement >= -1e-9
