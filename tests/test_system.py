"""Integration tests for the system-level TestSession."""

import pytest

from repro.circuits import Fault, load_circuit
from repro.system import TestSession
from repro.testdata import TestSet


class TestTestSession:
    @pytest.fixture(scope="class")
    def session(self):
        return TestSession(load_circuit("s27"), k=4, p=4,
                           misr_width=8, seed=5).prepare()

    def test_run_before_prepare_rejected(self):
        with pytest.raises(RuntimeError):
            TestSession(load_circuit("s27")).run()

    def test_golden_run_passes(self, session):
        verdict = session.run()
        assert verdict.passed is True
        assert verdict.patterns_applied == len(session.cubes)
        assert verdict.soc_cycles > 0
        assert verdict.ate_cycles == session.encoding.compressed_size

    def test_detected_faults_fail_signature(self, session):
        session.run()  # golden
        caught = 0
        for fault in session.atpg_result.detected:
            verdict = session.run(fault)
            if verdict.passed is False:
                caught += 1
        # MISR aliasing is 2^-16-ish: expect essentially all caught.
        assert caught >= len(session.atpg_result.detected) - 1

    def test_screen(self, session):
        faults = session.atpg_result.detected[:5]
        results = session.screen(faults)
        assert set(results) == set(faults)
        assert all(results.values())

    def test_custom_cubes(self):
        circuit = load_circuit("c17")
        cubes = TestSet.from_strings(["01XX1", "X1010"], name="hand")
        session = TestSession(circuit, k=4, misr_width=4).prepare(cubes)
        verdict = session.run()
        assert verdict.passed is True
        assert session.applied_patterns.covers(cubes)

    def test_wrong_cube_width_rejected(self):
        circuit = load_circuit("c17")
        with pytest.raises(ValueError):
            TestSession(circuit).prepare(TestSet.from_strings(["01"]))

    def test_compression_ratio_reported(self, session):
        verdict = session.run()
        assert verdict.compression_ratio == \
            session.encoding.compression_ratio

    def test_order_for_power_preserves_verdicts(self):
        circuit = load_circuit("s27")
        session = TestSession(circuit, k=4, misr_width=8).prepare(
            order_for_power=True
        )
        assert session.run().passed is True
        results = session.screen(session.atpg_result.detected[:4])
        assert all(results.values())

    def test_generated_circuit_end_to_end(self):
        circuit = load_circuit("g64")
        session = TestSession(circuit, k=8, p=8, misr_width=16).prepare()
        golden = session.run()
        assert golden.passed is True
        sample = session.atpg_result.detected[::10]
        results = session.screen(sample)
        misses = [f for f, caught in results.items() if not caught]
        assert len(misses) <= 1  # aliasing allowance
