"""Unit + property tests for the 9C encoder."""

import pytest
from hypothesis import given, settings

from repro.core import (
    BlockCase,
    Codebook,
    NineCEncoder,
    TernaryVector,
    analytic_compressed_size,
)

from repro.testdata.mintest import ISCAS89_PROFILES, load_benchmark

from .conftest import even_block_sizes, ternary_vectors


class TestSelectCase:
    @pytest.mark.parametrize("block,case", [
        ("00000000", BlockCase.C1),
        ("0X0X0000", BlockCase.C1),
        ("XXXXXXXX", BlockCase.C1),   # all-X: cheapest feasible is C1
        ("11111111", BlockCase.C2),
        ("1X1X111X", BlockCase.C2),
        ("00001111", BlockCase.C3),
        ("0X0X11X1", BlockCase.C3),
        ("11110000", BlockCase.C4),
        ("0000X01X", BlockCase.C5),
        ("01XX0000", BlockCase.C6),
        ("11110X1X", BlockCase.C7),
        ("X01X1111", BlockCase.C8),
        ("01XX10XX", BlockCase.C9),
    ])
    def test_paper_examples(self, block, case):
        assert NineCEncoder(8).select_case(TernaryVector(block)) is case

    def test_all_x_prefers_c1_over_c2(self):
        # Both C1 and C2 are feasible; C1's 1-bit codeword is cheaper.
        assert NineCEncoder(4).select_case(TernaryVector("XXXX")) is BlockCase.C1

    def test_mixed_uniform_x(self):
        # Left matches 1s only, right all-X matches both: C2 (2 bits)
        # beats C4 (5 bits).
        assert NineCEncoder(8).select_case(TernaryVector("1111XXXX")) is BlockCase.C2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NineCEncoder(7)
        with pytest.raises(ValueError):
            NineCEncoder(0)


class TestEncode:
    def test_all_zero_stream(self):
        enc = NineCEncoder(8).encode(TernaryVector.zeros(64))
        assert enc.compressed_size == 8  # 8 blocks x C1 (1 bit each)
        assert all(r.case is BlockCase.C1 for r in enc.blocks)
        assert enc.compression_ratio == pytest.approx((64 - 8) / 64 * 100)

    def test_all_one_stream(self):
        enc = NineCEncoder(8).encode(TernaryVector.ones(64))
        assert enc.compressed_size == 16  # 8 blocks x C2 (2 bits each)

    def test_worst_case_stream(self):
        # Alternating 01 in every half: every block is C9.
        data = TernaryVector("01100110" * 4)
        enc = NineCEncoder(8).encode(data)
        assert all(r.case is BlockCase.C9 for r in enc.blocks)
        assert enc.compressed_size == 4 * (4 + 8)
        assert enc.compression_ratio < 0  # expansion, as expected

    def test_mismatch_half_copied_verbatim(self):
        data = TernaryVector("0000X01X")
        enc = NineCEncoder(8).encode(data)
        assert enc.blocks[0].case is BlockCase.C5
        cw = Codebook.default().codeword(BlockCase.C5)
        assert enc.stream[len(cw):].to_string() == "X01X"

    def test_leftover_x_counted(self):
        data = TernaryVector("0000X01X")
        enc = NineCEncoder(8).encode(data)
        assert enc.leftover_x == 2
        assert enc.leftover_x_percent == pytest.approx(2 / 8 * 100)

    def test_padding_to_block_multiple(self):
        enc = NineCEncoder(8).encode(TernaryVector("000"))
        assert enc.original_length == 3
        assert enc.padded_length == 8
        assert len(enc.blocks) == 1

    def test_empty_input(self):
        enc = NineCEncoder(4).encode(TernaryVector(""))
        assert enc.original_length == 0
        # A single all-X pad block is emitted.
        assert len(enc.blocks) == 1
        assert enc.blocks[0].case is BlockCase.C1

    def test_case_counts(self):
        data = TernaryVector("00000000" + "11111111" + "01100110")
        counts = NineCEncoder(8).encode(data).case_counts
        assert counts[BlockCase.C1] == 1
        assert counts[BlockCase.C2] == 1
        assert counts[BlockCase.C9] == 1

    def test_case_counts_cached_and_isolated(self):
        # the tally over blocks is computed once and memoized; callers
        # get an independent copy so mutating it cannot poison the cache
        enc = NineCEncoder(8).encode(TernaryVector("01100110" * 8))
        first = enc.case_counts
        first[BlockCase.C1] = 999
        second = enc.case_counts
        assert second.get(BlockCase.C1) != 999
        assert second == enc.case_counts

    def test_stream_offsets_monotonic(self):
        data = TernaryVector("0000000011111111" * 4)
        enc = NineCEncoder(8).encode(data)
        offsets = [r.stream_offset for r in enc.blocks]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0


class TestMeasureAgreesWithEncode:
    @given(ternary_vectors(max_size=120), even_block_sizes(max_k=16))
    @settings(max_examples=150)
    def test_agreement(self, data, k):
        encoder = NineCEncoder(k)
        enc = encoder.encode(data)
        meas = encoder.measure(data)
        assert meas.compressed_size == enc.compressed_size
        assert meas.case_counts == enc.case_counts
        assert meas.leftover_x == enc.leftover_x
        assert meas.compression_ratio == pytest.approx(enc.compression_ratio)

    @given(ternary_vectors(max_size=200, x_bias=0.8), even_block_sizes(max_k=32))
    @settings(max_examples=60)
    def test_agreement_high_x(self, data, k):
        encoder = NineCEncoder(k)
        assert encoder.measure(data).compressed_size == \
            encoder.encode(data).compressed_size


class TestAnalyticFormula:
    @given(ternary_vectors(max_size=150), even_block_sizes(max_k=16))
    @settings(max_examples=100)
    def test_stream_size_matches_formula(self, data, k):
        # Section IV: |T_E| = sum_i N_i |C_i| + data payloads.
        enc = NineCEncoder(k).encode(data)
        assert enc.compressed_size == analytic_compressed_size(enc.case_counts, k)


class TestCustomCodebook:
    def test_reassigned_codebook_changes_selection(self):
        # Make C9 cheaper than the one-mismatch cases for tiny K: with
        # lengths swapped so C5..C8 become expensive, an all-mismatch
        # choice can win.  K=4, block "0110": halves "01","10" both
        # mismatch -> C9 regardless; but "0001": right half mismatch.
        from repro.core import PAPER_LENGTHS

        lengths = dict(PAPER_LENGTHS)
        # give C5 the 4-bit word and C9 a 5-bit word
        lengths[BlockCase.C5] = 4
        lengths[BlockCase.C9] = 5
        book = Codebook.from_lengths(lengths)
        enc = NineCEncoder(4, book)
        assert enc.select_case(TernaryVector("0001")) is BlockCase.C5
        assert enc.codebook.length(BlockCase.C5) == 4


class TestFastPathMatchesReference:
    """The vectorized ``encode`` must be bit-identical to the per-block
    oracle ``encode_reference`` — same stream, same block records."""

    @staticmethod
    def assert_same(fast, slow):
        assert fast.stream == slow.stream
        assert fast.blocks == slow.blocks
        assert fast.original_length == slow.original_length
        assert fast.case_counts == slow.case_counts

    @given(ternary_vectors(max_size=200), even_block_sizes(max_k=16))
    @settings(max_examples=150)
    def test_random_vectors(self, data, k):
        encoder = NineCEncoder(k)
        self.assert_same(encoder.encode(data), encoder.encode_reference(data))

    @pytest.mark.parametrize("name", sorted(ISCAS89_PROFILES))
    def test_full_iscas89_suite(self, name):
        data = load_benchmark(name).to_stream()
        encoder = NineCEncoder(8)
        self.assert_same(encoder.encode(data), encoder.encode_reference(data))
