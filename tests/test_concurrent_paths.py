"""Thread-safety of the hot pipeline paths and the metrics registry.

The serving layer dispatches encode/decode to worker pools and, in
thread-executor mode, runs them concurrently inside one process.  These
tests hammer shared :class:`NineCEncoder` / :class:`NineCDecoder`
instances from a thread pool and assert the outputs stay bit-identical
to a single-threaded run, and that concurrent metrics recording loses
no counts.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import obs
from repro.core.bitvec import TernaryVector
from repro.core.decoder import NineCDecoder
from repro.core.encoder import NineCEncoder
from repro.obs.metrics import MetricsRegistry

THREADS = 8
ROUNDS = 12


def make_inputs(count: int = 24, bits: int = 256, seed: int = 99):
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(count):
        data = rng.integers(0, 2, size=bits).astype(np.uint8)
        data[rng.random(bits) < 0.4] = 2  # sprinkle don't-cares
        inputs.append(TernaryVector(data))
    return inputs


class TestConcurrentEncode:
    def test_shared_encoder_is_bit_identical_under_threads(self):
        encoder = NineCEncoder(8)
        inputs = make_inputs()
        expected = [encoder.encode(vector).stream.to_string()
                    for vector in inputs]

        def job(index: int) -> tuple:
            vector = inputs[index % len(inputs)]
            return index, encoder.encode(vector).stream.to_string()

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            results = list(pool.map(job, range(len(inputs) * ROUNDS)))
        for index, stream in results:
            assert stream == expected[index % len(inputs)]

    def test_fast_and_reference_agree_under_threads(self):
        encoder = NineCEncoder(8)
        inputs = make_inputs(count=12)

        def job(index: int) -> bool:
            vector = inputs[index % len(inputs)]
            fast = encoder.encode(vector)
            reference = encoder.encode_reference(vector)
            return fast.stream.to_string() == reference.stream.to_string()

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            assert all(pool.map(job, range(len(inputs) * 4)))


class TestConcurrentDecode:
    def test_shared_decoder_scan_table_under_threads(self):
        encoder = NineCEncoder(8)
        decoder = NineCDecoder(8)  # one shared CodewordScanTable inside
        inputs = make_inputs()
        encodings = [encoder.encode(vector) for vector in inputs]
        expected = [
            decoder.decode_stream(
                encoding.stream, encoding.original_length).to_string()
            for encoding in encodings
        ]

        def job(index: int) -> tuple:
            encoding = encodings[index % len(encodings)]
            decoded = decoder.decode_stream(
                encoding.stream, encoding.original_length)
            return index, decoded.to_string()

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            results = list(pool.map(job, range(len(inputs) * ROUNDS)))
        for index, decoded in results:
            assert decoded == expected[index % len(encodings)]

    def test_fast_and_reference_decode_agree_under_threads(self):
        encoder = NineCEncoder(8)
        decoder = NineCDecoder(8)
        inputs = make_inputs(count=12)
        encodings = [encoder.encode(vector) for vector in inputs]

        def job(index: int) -> bool:
            encoding = encodings[index % len(encodings)]
            fast = decoder.decode_stream(
                encoding.stream, encoding.original_length, fast=True)
            reference = decoder.decode_stream(
                encoding.stream, encoding.original_length, fast=False)
            return fast.to_string() == reference.to_string()

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            assert all(pool.map(job, range(len(inputs) * 4)))


class TestConcurrentMetrics:
    def test_counter_increments_are_race_free(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered")

        def job(_):
            for _ in range(1_000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(job, range(THREADS)))
        assert counter.value == THREADS * 1_000

    def test_histogram_counts_are_race_free(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hist", (1, 2, 4, 8))

        def job(worker: int):
            for index in range(1_000):
                histogram.observe((worker + index) % 10)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(job, range(THREADS)))
        state = registry.snapshot()["histograms"]["hist"]
        assert state["count"] == THREADS * 1_000
        assert sum(state["buckets"].values()) == THREADS * 1_000

    def test_instrumented_encode_under_threads_keeps_counts(self):
        """Metrics recorded by concurrent encodes stay consistent."""
        encoder = NineCEncoder(8)
        inputs = make_inputs(count=8, bits=128)
        with obs.enabled_scope(True):
            obs.reset()
            try:
                single = [encoder.encode(vector) for vector in inputs]
                baseline = obs.get_registry().snapshot()
                obs.reset()

                def job(index: int):
                    return encoder.encode(inputs[index % len(inputs)])

                with ThreadPoolExecutor(max_workers=THREADS) as pool:
                    list(pool.map(job, range(len(inputs))))
                threaded = obs.get_registry().snapshot()
                assert threaded["counters"] == baseline["counters"]
                assert len(single) == len(inputs)
            finally:
                obs.reset()
