"""Unit + property tests for the adaptive-K extension."""

import pytest
from hypothesis import given, settings

from repro.core import (
    DEFAULT_MENU,
    AdaptiveNineCEncoder,
    NineCEncoder,
    TernaryVector,
)
from repro.testdata import load_benchmark

from .conftest import ternary_vectors


class TestConstruction:
    def test_menu_validation(self):
        with pytest.raises(ValueError):
            AdaptiveNineCEncoder(menu=())
        with pytest.raises(ValueError):
            AdaptiveNineCEncoder(menu=(4, 7))
        with pytest.raises(ValueError):
            AdaptiveNineCEncoder(menu=(4, 4))

    def test_window_must_fit_menu(self):
        with pytest.raises(ValueError):
            AdaptiveNineCEncoder(menu=(4, 6), window_bits=16)  # lcm 12

    def test_default_menu(self):
        assert DEFAULT_MENU == (4, 8, 16, 32)


class TestEncodeDecode:
    def test_roundtrip_covers(self):
        codec = AdaptiveNineCEncoder(window_bits=64)
        data = TernaryVector("0000X01X" * 20)
        encoding = codec.encode(data)
        assert codec.decode(encoding).covers(data)

    def test_window_selection_recorded(self):
        codec = AdaptiveNineCEncoder(window_bits=64)
        data = TernaryVector.zeros(200)
        encoding = codec.encode(data)
        assert len(encoding.window_ks) == 4  # ceil(200/64)
        assert all(k in DEFAULT_MENU for k in encoding.window_ks)

    def test_all_zero_picks_largest_k(self):
        codec = AdaptiveNineCEncoder(window_bits=128)
        encoding = codec.encode(TernaryVector.zeros(256))
        assert set(encoding.window_ks) == {32}

    def test_fine_structure_picks_small_k(self):
        # "00001111": at K=4 each block is uniform (C1/C2, 3 bits per 8);
        # at K=32 every half is a mismatch (C9) — small K must win.
        codec = AdaptiveNineCEncoder(window_bits=128)
        encoding = codec.encode(TernaryVector("00001111" * 32))
        assert set(encoding.window_ks) == {4}

    def test_incompressible_data_picks_large_k(self):
        # all-mismatch data: larger blocks amortize the C9 codeword.
        codec = AdaptiveNineCEncoder(window_bits=128)
        encoding = codec.encode(TernaryVector("0110" * 64))
        assert set(encoding.window_ks) == {32}

    def test_parameter_mismatch_rejected(self):
        encoding = AdaptiveNineCEncoder(window_bits=64).encode(
            TernaryVector.zeros(64)
        )
        with pytest.raises(ValueError):
            AdaptiveNineCEncoder(window_bits=128).decode(encoding)

    def test_header_accounting(self):
        codec = AdaptiveNineCEncoder(window_bits=64)
        encoding = codec.encode(TernaryVector.zeros(128))
        assert encoding.header_bits_per_window == 2
        # 2 windows x (2-bit header + 2 C1 codewords at K=32)
        assert encoding.compressed_size == 2 * (2 + 2)

    @given(ternary_vectors(min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = AdaptiveNineCEncoder(window_bits=32, menu=(4, 8, 16))
        encoding = codec.encode(data)
        assert codec.decode(encoding).covers(data)

    @given(ternary_vectors(min_size=1, max_size=200, x_bias=0.8))
    @settings(max_examples=40, deadline=None)
    def test_never_much_worse_than_best_fixed(self, data):
        codec = AdaptiveNineCEncoder(window_bits=32, menu=(4, 8, 16))
        adaptive = codec.encode(data)
        windows = -(-max(len(data), 1) // 32)
        best_fixed = min(
            NineCEncoder(k).measure(data.padded(windows * 32)).compressed_size
            for k in (4, 8, 16)
        )
        headers = windows * adaptive.header_bits_per_window
        assert adaptive.compressed_size <= best_fixed + headers


class TestHeterogeneousGain:
    def test_beats_fixed_k_on_mixed_benchmarks(self):
        dense = load_benchmark("s38417").to_stream()
        sparse = load_benchmark("s13207").to_stream()
        mixed = TernaryVector.concat([dense, sparse])
        adaptive = AdaptiveNineCEncoder(window_bits=2048).encode(mixed)
        for k in DEFAULT_MENU:
            fixed = NineCEncoder(k).measure(mixed)
            assert adaptive.compression_ratio > fixed.compression_ratio, k

    def test_windows_track_local_density(self):
        dense = load_benchmark("s38417").to_stream()
        sparse = load_benchmark("s13207").to_stream()
        mixed = TernaryVector.concat([dense, sparse])
        encoding = AdaptiveNineCEncoder(window_bits=2048).encode(mixed)
        boundary = len(dense) // 2048
        dense_ks = encoding.window_ks[:boundary]
        sparse_ks = encoding.window_ks[boundary + 1 :]
        assert sum(dense_ks) / len(dense_ks) < \
            sum(sparse_ks) / len(sparse_ks)
