"""Unit tests for scan-data layouts (vertical organization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TernaryVector
from repro.testdata import (
    TestSet,
    chain_view,
    compare_layout_compression,
    from_chain_major,
    load_benchmark,
    to_chain_major,
)
from repro.testdata import test_set_chain_major as chain_major_set
from repro.testdata import test_set_from_chain_major as from_chain_major_set

from .conftest import ternary_vectors


class TestPatternTransforms:
    def test_to_chain_major_example(self):
        # rows (shift order) 01|10|11 over 2 chains -> chains: 011, 101
        pattern = TernaryVector("011011")
        assert to_chain_major(pattern, 2).to_string() == "011101"

    def test_inverse(self):
        pattern = TernaryVector("01X01X10")
        assert from_chain_major(to_chain_major(pattern, 4), 4) == pattern

    def test_chain_view(self):
        pattern = TernaryVector("011011")
        assert chain_view(pattern, 2, 0).to_string() == "011"
        assert chain_view(pattern, 2, 1).to_string() == "101"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            to_chain_major(TernaryVector("010"), 2)
        with pytest.raises(ValueError):
            to_chain_major(TernaryVector("01"), 0)
        with pytest.raises(ValueError):
            from_chain_major(TernaryVector("010"), 2)
        with pytest.raises(ValueError):
            chain_view(TernaryVector("0101"), 2, 5)

    @given(ternary_vectors(min_size=0, max_size=96),
           st.integers(1, 8))
    @settings(max_examples=80)
    def test_roundtrip_property(self, data, m):
        if len(data) % m:
            data = data.padded(len(data) + (-len(data)) % m)
        assert from_chain_major(to_chain_major(data, m), m) == data

    @given(ternary_vectors(min_size=4, max_size=96), st.integers(1, 6))
    @settings(max_examples=60)
    def test_preserves_multiset(self, data, m):
        if len(data) % m:
            data = data.padded(len(data) + (-len(data)) % m)
        reordered = to_chain_major(data, m)
        for value in (0, 1, 2):
            assert reordered.count(value) == data.count(value)


class TestTestSetTransforms:
    def test_roundtrip(self):
        ts = TestSet.from_strings(["01X0", "1X10"])
        back = from_chain_major_set(chain_major_set(ts, 2), 2)
        assert back == ts

    def test_compare_layouts_runs(self):
        bench = load_benchmark("s5378", fraction=0.2)
        width = (bench.num_cells // 8) * 8
        trimmed = bench.map_patterns(lambda p: p[:width])
        row, vertical = compare_layout_compression(trimmed, 8, k=8)
        assert -100.0 < row < 100.0
        assert -100.0 < vertical < 100.0
