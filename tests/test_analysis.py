"""Unit tests for the analysis package (TAT, power, tradeoff, coverage)."""

import pytest

from repro.analysis import (
    Table,
    analyze,
    choose_k,
    codeword_time_ate_cycles,
    compare_fills,
    compressed_time_ate_cycles,
    fill_coverage,
    format_cell,
    leftover_x_coverage_experiment,
    pareto_front,
    peak_wtm,
    sweep_p,
    wtm,
)
from repro.analysis import test_set_wtm as total_wtm
from repro.core import BlockCase, TernaryVector
from repro.testdata import TestSet, load_benchmark


class TestTATModel:
    def test_c1_formula(self):
        # t1 per block = |C1| + K/p ATE cycles (paper's t1 term).
        assert codeword_time_ate_cycles(BlockCase.C1, 8, 2) == 1 + 8 / 2

    def test_c9_formula(self):
        # t9 per block = |C9| + K (all data at ATE speed).
        assert codeword_time_ate_cycles(BlockCase.C9, 8, 4) == 4 + 8

    def test_c5_formula(self):
        # one mismatch half at ATE speed + one uniform half on-chip.
        assert codeword_time_ate_cycles(BlockCase.C5, 8, 4) == 5 + 4 + 4 / 4

    def test_compressed_time_sums(self):
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C1] = 10
        counts[BlockCase.C9] = 2
        expected = 10 * (1 + 8 / 2) + 2 * (4 + 8)
        assert compressed_time_ate_cycles(counts, 8, 2) == expected

    def test_tat_bounded_by_cr(self):
        """Paper: TAT is bounded by CR; as p grows TAT -> CR."""
        stream = load_benchmark("s5378", fraction=0.3).to_stream()
        reports = sweep_p(stream, 8, ps=(1, 2, 4, 8, 64, 1024))
        cr = reports[1].compression_ratio
        tats = [reports[p].tat_percent for p in (1, 2, 4, 8, 64, 1024)]
        assert tats == sorted(tats)  # monotone in p
        assert all(t <= cr + 1e-9 for t in tats)
        assert tats[-1] == pytest.approx(cr, abs=0.5)

    def test_analyze_consistency(self):
        stream = TernaryVector("00000000" * 10)
        report = analyze(stream, 8, 4)
        assert report.compression_ratio == pytest.approx(
            (80 - 10) / 80 * 100
        )
        assert report.t_nocomp_ate_cycles == 80


class TestPower:
    def test_wtm_known_value(self):
        # 1010: transitions at weights 3, 2, 1.
        assert wtm(TernaryVector("1010")) == 6

    def test_wtm_constant_vector(self):
        assert wtm(TernaryVector("1111")) == 0

    def test_wtm_short(self):
        assert wtm(TernaryVector("1")) == 0

    def test_wtm_rejects_x(self):
        with pytest.raises(ValueError):
            wtm(TernaryVector("1X"))

    def test_test_set_and_peak(self):
        ts = TestSet.from_strings(["1010", "0000"])
        assert total_wtm(ts) == 6
        assert peak_wtm(ts) == 6

    def test_mt_fill_beats_random(self):
        ts = load_benchmark("s5378", fraction=0.2)
        report = compare_fills(ts)
        assert report.total["mt"] <= report.total["random"]
        assert report.reduction_vs_random("mt") >= 0.0


class TestTradeoff:
    def test_no_constraint_picks_best_cr(self):
        stream = load_benchmark("s5378", fraction=0.3).to_stream()
        choice = choose_k(stream, min_leftover_x_percent=0.0)
        best_cr = max(r.compression_ratio for r in choice.sweep.values())
        assert choice.compression_ratio == best_cr

    def test_lx_floor_respected(self):
        stream = load_benchmark("s5378").to_stream()
        choice = choose_k(stream, min_leftover_x_percent=10.0)
        assert choice.leftover_x_percent >= 10.0

    def test_impossible_floor_falls_back_to_max_lx(self):
        stream = load_benchmark("s5378").to_stream()
        choice = choose_k(stream, min_leftover_x_percent=99.0)
        max_lx = max(r.leftover_x_percent for r in choice.sweep.values())
        assert choice.leftover_x_percent == max_lx

    def test_lx_constraint_costs_cr(self):
        stream = load_benchmark("s5378").to_stream()
        free = choose_k(stream, 0.0)
        constrained = choose_k(stream, 20.0)
        assert constrained.compression_ratio <= free.compression_ratio

    def test_pareto_front_nonempty_and_undominated(self):
        stream = load_benchmark("s9234", fraction=0.3).to_stream()
        front = pareto_front(stream)
        assert front
        points = [(r.compression_ratio, r.leftover_x_percent)
                  for r in front.values()]
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                if i != j:
                    assert not (b[0] >= a[0] and b[1] >= a[1]
                                and (b[0] > a[0] or b[1] > a[1]))


class TestCoverage:
    def test_random_fill_buys_bonus_coverage(self):
        from repro.atpg import generate_test_cubes
        from repro.circuits import load_circuit

        result = generate_test_cubes(load_circuit("g64"))
        reports = leftover_x_coverage_experiment(result, k=8, seed=3)
        assert set(reports) == {"zero", "one", "mt", "random"}
        for report in reports.values():
            assert report.guaranteed_detected == len(result.detected)
            assert report.total_detected <= report.total_faults
        # The motivating claim: random fill detects at least as many
        # extra (non-targeted) faults as the best constant fill's floor.
        assert reports["random"].bonus_detected >= 0

    def test_fill_coverage_explicit_faults(self):
        from repro.atpg import generate_test_cubes
        from repro.circuits import Fault, load_circuit

        circuit = load_circuit("s27")
        result = generate_test_cubes(circuit)
        reports = fill_coverage(
            circuit, result.test_set, result.detected,
            strategies=("zero",), extra_faults=[Fault("G8", 0)],
        )
        assert reports["zero"].total_faults == len(result.detected) + 1


class TestReportTable:
    def test_format_cell(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(7) == "7"
        assert format_cell("x") == "x"
        assert format_cell(True) == "True"

    def test_render(self):
        table = Table(["a", "bb"], title="t")
        table.add_row(1, 2.5)
        text = table.render()
        assert "t" in text and "a" in text and "2.50" in text

    def test_row_width_checked(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_to_markdown(self):
        table = Table(["a", "b"], title="t")
        table.add_row(1, 2.5)
        md = table.to_markdown()
        assert "**t**" in md
        assert "| a | b |" in md
        assert "| 1 | 2.50 |" in md

    def test_to_csv(self):
        table = Table(["a", "b"])
        table.add_row("x,y", 2)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert '"x,y"' in csv_text
