"""Unit tests for repro.core.bitvec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ONE, X, ZERO, TernaryVector

from .conftest import ternary_vectors


class TestConstruction:
    def test_from_string(self):
        v = TernaryVector.from_string("01X")
        assert list(v) == [ZERO, ONE, X]

    def test_from_string_aliases(self):
        assert TernaryVector.from_string("x-?").to_string() == "XXX"

    def test_from_string_ignores_whitespace(self):
        assert TernaryVector.from_string("01 X\n1").to_string() == "01X1"

    def test_from_list_of_ints(self):
        assert TernaryVector([0, 1, 2]).to_string() == "01X"

    def test_from_list_of_chars(self):
        assert TernaryVector(["0", "1", "X"]).to_string() == "01X"

    def test_invalid_char_rejected(self):
        with pytest.raises(ValueError):
            TernaryVector("012a")

    def test_invalid_int_rejected(self):
        with pytest.raises(ValueError):
            TernaryVector([0, 3])

    def test_invalid_ndarray_rejected(self):
        with pytest.raises(ValueError):
            TernaryVector(np.array([0, 5], dtype=np.uint8))

    def test_zeros_ones_xs(self):
        assert TernaryVector.zeros(3).to_string() == "000"
        assert TernaryVector.ones(3).to_string() == "111"
        assert TernaryVector.xs(3).to_string() == "XXX"

    def test_empty(self):
        v = TernaryVector("")
        assert len(v) == 0
        assert v.to_string() == ""

    def test_concat(self):
        v = TernaryVector.concat(
            [TernaryVector("01"), TernaryVector("X"), TernaryVector("")]
        )
        assert v.to_string() == "01X"

    def test_concat_empty(self):
        assert len(TernaryVector.concat([])) == 0


class TestContainer:
    def test_len_and_getitem(self):
        v = TernaryVector("01X")
        assert len(v) == 3
        assert v[0] == ZERO and v[1] == ONE and v[2] == X

    def test_slice_returns_vector(self):
        v = TernaryVector("01X10")
        assert isinstance(v[1:4], TernaryVector)
        assert v[1:4].to_string() == "1X1"

    def test_equality_and_hash(self):
        a, b = TernaryVector("01X"), TernaryVector("01X")
        assert a == b
        assert hash(a) == hash(b)
        assert a != TernaryVector("011")

    def test_iter(self):
        assert list(TernaryVector("1X0")) == [1, 2, 0]

    def test_repr_contains_content(self):
        assert "01X" in repr(TernaryVector("01X"))


class TestQueries:
    def test_counts(self):
        v = TernaryVector("0011XX")
        assert v.count(0) == 2 and v.count(1) == 2 and v.count("X") == 2
        assert v.num_x == 2 and v.num_specified == 4
        assert v.x_density == pytest.approx(1 / 3)

    def test_x_density_empty(self):
        assert TernaryVector("").x_density == 0.0

    def test_fully_specified(self):
        assert TernaryVector("0101").is_fully_specified()
        assert not TernaryVector("01X1").is_fully_specified()

    @pytest.mark.parametrize(
        "text,zero_ok,one_ok",
        [
            ("0000", True, False),
            ("1111", False, True),
            ("XXXX", True, True),
            ("0X0X", True, False),
            ("1X1X", False, True),
            ("01XX", False, False),
            ("", True, True),
        ],
    )
    def test_compatibility(self, text, zero_ok, one_ok):
        v = TernaryVector(text)
        assert v.is_zero_compatible() is zero_ok
        assert v.is_one_compatible() is one_ok
        assert v.is_mismatch() is (not zero_ok and not one_ok)

    def test_covers(self):
        cube = TernaryVector("0X1X")
        assert TernaryVector("0011").covers(cube)
        assert TernaryVector("0X1X").covers(cube)
        assert not TernaryVector("0000").covers(cube)
        assert not TernaryVector("001").covers(cube)

    def test_compatible_and_merge(self):
        a, b = TernaryVector("0X1X"), TernaryVector("001X")
        assert a.compatible(b)
        assert a.merge(b).to_string() == "001X"

    def test_merge_incompatible_raises(self):
        with pytest.raises(ValueError):
            TernaryVector("01").merge(TernaryVector("00"))

    def test_compatible_length_mismatch(self):
        assert not TernaryVector("01").compatible(TernaryVector("011"))


class TestTransforms:
    def test_filled(self):
        assert TernaryVector("0X1X").filled(0).to_string() == "0010"
        assert TernaryVector("0X1X").filled(1).to_string() == "0111"

    def test_filled_rejects_x(self):
        with pytest.raises(ValueError):
            TernaryVector("0X").filled(2)

    def test_filled_does_not_mutate(self):
        v = TernaryVector("0X")
        v.filled(1)
        assert v.to_string() == "0X"

    def test_filled_random_is_specified(self, rng):
        v = TernaryVector.xs(100).filled_random(rng)
        assert v.is_fully_specified()

    def test_filled_random_preserves_specified(self, rng):
        v = TernaryVector("01X01X").filled_random(rng)
        assert v.covers(TernaryVector("01X01X"))

    def test_with_slice(self):
        v = TernaryVector("0000").with_slice(1, TernaryVector("11"))
        assert v.to_string() == "0110"

    def test_padded(self):
        assert TernaryVector("01").padded(4).to_string() == "01XX"
        assert TernaryVector("01").padded(4, 0).to_string() == "0100"

    def test_padded_too_short_raises(self):
        with pytest.raises(ValueError):
            TernaryVector("0101").padded(2)

    def test_blocks(self):
        blocks = list(TernaryVector("0101X").blocks(2))
        assert [b.to_string() for b in blocks] == ["01", "01", "X"]

    def test_blocks_invalid_size(self):
        with pytest.raises(ValueError):
            list(TernaryVector("01").blocks(0))

    def test_copy_is_independent(self):
        v = TernaryVector("01X")
        c = v.copy()
        c.data[0] = 1
        assert v.to_string() == "01X"


class TestProperties:
    @given(ternary_vectors())
    def test_string_roundtrip(self, v):
        assert TernaryVector.from_string(v.to_string()) == v

    @given(ternary_vectors())
    def test_counts_sum_to_length(self, v):
        assert v.count(0) + v.count(1) + v.count(2) == len(v)

    @given(ternary_vectors())
    def test_covers_is_reflexive(self, v):
        assert v.covers(v)

    @given(ternary_vectors(), st.sampled_from([0, 1]))
    def test_fill_covers_original(self, v, bit):
        assert v.filled(bit).covers(v)

    @given(ternary_vectors())
    def test_mismatch_classification_consistent(self, v):
        assert v.is_mismatch() == (
            not v.is_zero_compatible() and not v.is_one_compatible()
        )

    @given(ternary_vectors(max_size=40), ternary_vectors(max_size=40))
    def test_merge_covers_both(self, a, b):
        if a.compatible(b):
            merged = a.merge(b)
            assert merged.covers(a) and merged.covers(b)
