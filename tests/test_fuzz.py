"""Fuzz tests: malformed inputs must fail loudly, never hang or corrupt."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Codebook,
    NineCDecoder,
    NineCEncoder,
    StreamError,
    TernaryVector,
    loads_encoding,
)
from repro.codes import FDRCode, GolombCode, LZWCode, VIHCCode
from repro.codes.base import CompressedData

random_bits = st.lists(st.sampled_from([0, 1]), max_size=96) \
    .map(TernaryVector)
random_ternary = st.lists(st.sampled_from([0, 1, 2]), max_size=96) \
    .map(TernaryVector)


class TestDecoderFuzz:
    @given(random_bits)
    @settings(max_examples=120)
    def test_random_stream_decodes_or_raises(self, stream):
        decoder = NineCDecoder(8)
        try:
            out = decoder.decode_stream(stream)
        except (ValueError, EOFError):
            return
        # if it decodes, the output must be block-aligned
        assert len(out) % 8 == 0

    @given(random_ternary)
    @settings(max_examples=120)
    def test_ternary_garbage_never_crashes_hard(self, stream):
        decoder = NineCDecoder(8)
        try:
            decoder.decode_stream(stream)
        except (ValueError, EOFError):
            pass

    @given(random_bits, st.integers(0, 64))
    @settings(max_examples=80)
    def test_length_constrained_decode(self, stream, length):
        decoder = NineCDecoder(8)
        try:
            out = decoder.decode_stream(stream, output_length=length)
        except (ValueError, EOFError):
            return
        assert len(out) == length


def _flip(data: np.ndarray, position: int) -> TernaryVector:
    """Flip one symbol: 0 <-> 1, X -> 0."""
    out = data.copy()
    out[position] = 1 - out[position] if out[position] < 2 else 0
    return TernaryVector(out)


class TestAdversarialCorpus:
    """Bit-flips at *every* position of encoded streams.

    A corrupted stream must either still decode (covering is no longer
    guaranteed — the flip may alter payload bits), raise a typed
    :class:`StreamError`, or be flagged in the recovery diagnostics.
    Never an uncaught IndexError/AttributeError, never a silent
    wrong-length output.
    """

    CORPUS = [
        TernaryVector("0" * 32),
        TernaryVector("1" * 32),
        TernaryVector("01" * 16 + "X" * 16),
        TernaryVector("0X1X" * 12),
        TernaryVector(
            np.random.default_rng(17).choice(
                [0, 1, 2], size=96, p=[0.3, 0.2, 0.5]
            ).astype(np.uint8)
        ),
    ]

    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_every_flip_strict(self, index):
        original = self.CORPUS[index]
        encoding = NineCEncoder(8).encode(original)
        decoder = NineCDecoder(8)
        length = encoding.padded_length
        for position in range(len(encoding.stream)):
            mutated = _flip(encoding.stream.data, position)
            try:
                out = decoder.decode_stream(mutated, output_length=length)
            except StreamError as exc:
                assert exc.bit_offset is not None
                continue
            assert len(out) == length, (
                f"flip at {position}: silent wrong-length output"
            )

    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_every_flip_recovering(self, index):
        original = self.CORPUS[index]
        encoding = NineCEncoder(8).encode(original)
        decoder = NineCDecoder(8)
        length = encoding.padded_length
        clean = decoder.decode_stream(encoding.stream, output_length=length)
        for position in range(len(encoding.stream)):
            mutated = _flip(encoding.stream.data, position)
            out = decoder.decode_stream(mutated, output_length=length,
                                        recover=True)
            assert len(out) == length
            diagnostics = decoder.last_diagnostics
            # either the decode succeeded (possibly with altered payload
            # bits) or the damage is on record — never silent truncation
            if out != clean and not out.covers(original):
                assert diagnostics is not None
                assert diagnostics.clean or diagnostics.detected

    def test_every_flip_framed_recovering(self):
        from repro.robust import decode_framed, frame_stream

        original = self.CORPUS[4]
        encoding = NineCEncoder(8).encode(original)
        framed = frame_stream(encoding, blocks_per_frame=4)
        decoder = NineCDecoder(8)
        length = encoding.padded_length
        for position in range(len(framed)):
            mutated = _flip(framed.data, position)
            result = decode_framed(mutated, decoder, output_length=length,
                                   recover=True)
            assert len(result.data) == length
            assert result.diagnostics.frames_damaged <= 1


def _decode_observed(decode, stream, length, recover):
    """Run one decode; capture (output, error signature) for comparison."""
    try:
        out = decode(stream, length, recover=recover)
        return out, None
    except StreamError as exc:
        return None, (type(exc), str(exc), exc.bit_offset, exc.block_index)


def _diagnostics_signature(diagnostics):
    return (
        diagnostics.blocks_decoded,
        diagnostics.blocks_lost,
        [(type(e), str(e), e.bit_offset, e.block_index)
         for e in diagnostics.errors],
    )


class TestDifferentialFastReference:
    """The vectorized decode path vs the `decode_reference` oracle.

    On *any* input — clean, random garbage, or every single-symbol flip
    of a real encoding — the two paths must produce identical outputs,
    identical `DecodeDiagnostics`, and raise the same error type with
    the same message and offsets.
    """

    @staticmethod
    def _assert_paths_agree(stream, length, context=""):
        decoder = NineCDecoder(8)
        for recover in (False, True):
            out_fast, err_fast = _decode_observed(
                decoder.decode_stream, stream, length, recover
            )
            diag_fast = decoder.last_diagnostics
            out_ref, err_ref = _decode_observed(
                decoder.decode_reference, stream, length, recover
            )
            diag_ref = decoder.last_diagnostics
            label = f"{context} recover={recover}"
            assert err_fast == err_ref, label
            assert (out_fast is None) == (out_ref is None), label
            if out_fast is not None:
                assert out_fast == out_ref, label
            assert _diagnostics_signature(diag_fast) == \
                _diagnostics_signature(diag_ref), label

    @given(random_ternary, st.one_of(st.none(), st.integers(0, 96)))
    @settings(max_examples=150)
    def test_random_ternary_streams(self, stream, length):
        self._assert_paths_agree(stream, length)

    @given(random_bits)
    @settings(max_examples=80)
    def test_random_bit_streams_unconstrained(self, stream):
        self._assert_paths_agree(stream, None)

    @pytest.mark.parametrize(
        "index", range(len(TestAdversarialCorpus.CORPUS))
    )
    def test_exhaustive_flip_corpus(self, index):
        original = TestAdversarialCorpus.CORPUS[index]
        encoding = NineCEncoder(8).encode(original)
        length = encoding.padded_length
        self._assert_paths_agree(encoding.stream, length, "clean")
        for position in range(len(encoding.stream)):
            mutated = _flip(encoding.stream.data, position)
            self._assert_paths_agree(mutated, length, f"flip@{position}")

    def test_truncation_sweep(self):
        encoding = NineCEncoder(8).encode(TestAdversarialCorpus.CORPUS[4])
        data = encoding.stream.data
        length = encoding.padded_length
        for cut in range(len(data)):
            self._assert_paths_agree(
                TernaryVector(data[:cut]), length, f"cut@{cut}"
            )


class TestBaselineFuzz:
    CODES = [GolombCode(4), FDRCode(), VIHCCode(8), LZWCode(code_bits=8)]

    @pytest.mark.parametrize("code", CODES, ids=lambda c: c.name)
    @given(payload=random_bits, length=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_garbage_payload_decodes_or_raises(self, code, payload, length):
        fake = CompressedData(code.name, payload, length,
                              metadata={"lengths": {0: 1, 1: 2, "mh": 2},
                                        "entries": ["0" * 8, "1" * 8]})
        try:
            out = code.decompress(fake)
        except (ValueError, EOFError, KeyError):
            return
        assert len(out) == length


class TestContainerFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=80)
    def test_random_text_never_parses_silently(self, text):
        try:
            encoding = loads_encoding(text)
        except (ValueError, EOFError, KeyError):
            return
        # parsing succeeded: must be internally consistent
        assert encoding.compressed_size == len(encoding.stream)

    def test_bitflipped_container(self):
        from repro.core import NineCEncoder, dumps_encoding

        rng = np.random.default_rng(5)
        data = TernaryVector(rng.integers(0, 3, 64).astype(np.uint8))
        text = dumps_encoding(NineCEncoder(8).encode(data))
        # flip every stream character to X one at a time
        start = text.index("stream=") + len("stream=")
        for position in range(start, min(start + 20, len(text) - 1)):
            mutated = text[:position] + "X" + text[position + 1 :]
            try:
                loads_encoding(mutated)
            except (ValueError, EOFError):
                continue
