"""Fuzz tests: malformed inputs must fail loudly, never hang or corrupt."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Codebook,
    NineCDecoder,
    TernaryVector,
    loads_encoding,
)
from repro.codes import FDRCode, GolombCode, LZWCode, VIHCCode
from repro.codes.base import CompressedData

random_bits = st.lists(st.sampled_from([0, 1]), max_size=96) \
    .map(TernaryVector)
random_ternary = st.lists(st.sampled_from([0, 1, 2]), max_size=96) \
    .map(TernaryVector)


class TestDecoderFuzz:
    @given(random_bits)
    @settings(max_examples=120)
    def test_random_stream_decodes_or_raises(self, stream):
        decoder = NineCDecoder(8)
        try:
            out = decoder.decode_stream(stream)
        except (ValueError, EOFError):
            return
        # if it decodes, the output must be block-aligned
        assert len(out) % 8 == 0

    @given(random_ternary)
    @settings(max_examples=120)
    def test_ternary_garbage_never_crashes_hard(self, stream):
        decoder = NineCDecoder(8)
        try:
            decoder.decode_stream(stream)
        except (ValueError, EOFError):
            pass

    @given(random_bits, st.integers(0, 64))
    @settings(max_examples=80)
    def test_length_constrained_decode(self, stream, length):
        decoder = NineCDecoder(8)
        try:
            out = decoder.decode_stream(stream, output_length=length)
        except (ValueError, EOFError):
            return
        assert len(out) == length


class TestBaselineFuzz:
    CODES = [GolombCode(4), FDRCode(), VIHCCode(8), LZWCode(code_bits=8)]

    @pytest.mark.parametrize("code", CODES, ids=lambda c: c.name)
    @given(payload=random_bits, length=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_garbage_payload_decodes_or_raises(self, code, payload, length):
        fake = CompressedData(code.name, payload, length,
                              metadata={"lengths": {0: 1, 1: 2, "mh": 2},
                                        "entries": ["0" * 8, "1" * 8]})
        try:
            out = code.decompress(fake)
        except (ValueError, EOFError, KeyError):
            return
        assert len(out) == length


class TestContainerFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=80)
    def test_random_text_never_parses_silently(self, text):
        try:
            encoding = loads_encoding(text)
        except (ValueError, EOFError, KeyError):
            return
        # parsing succeeded: must be internally consistent
        assert encoding.compressed_size == len(encoding.stream)

    def test_bitflipped_container(self):
        from repro.core import NineCEncoder, dumps_encoding

        rng = np.random.default_rng(5)
        data = TernaryVector(rng.integers(0, 3, 64).astype(np.uint8))
        text = dumps_encoding(NineCEncoder(8).encode(data))
        # flip every stream character to X one at a time
        start = text.index("stream=") + len("stream=")
        for position in range(start, min(start + 20, len(text) - 1)):
            mutated = text[:position] + "X" + text[position + 1 :]
            try:
                loads_encoding(mutated)
            except (ValueError, EOFError):
                continue
