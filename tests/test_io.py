"""Unit tests for the .9c container format."""

import pytest
from hypothesis import given, settings

from repro.core import (
    BlockCase,
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    assign_lengths_by_frequency,
    dumps_encoding,
    load_encoding,
    loads_encoding,
    save_encoding,
)

from .conftest import ternary_vectors


def sample_encoding(k=8):
    data = TernaryVector("00000000" "0000X01X" "1X1X111X" "01XX10XX")
    return data, NineCEncoder(k).encode(data)


class TestDumpLoad:
    def test_roundtrip_in_memory(self):
        data, encoding = sample_encoding()
        back = loads_encoding(dumps_encoding(encoding))
        assert back.k == encoding.k
        assert back.original_length == encoding.original_length
        assert back.stream == encoding.stream
        assert back.codebook == encoding.codebook
        assert [r.case for r in back.blocks] == \
            [r.case for r in encoding.blocks]
        assert [r.stream_offset for r in back.blocks] == \
            [r.stream_offset for r in encoding.blocks]

    def test_roundtrip_on_disk(self, tmp_path):
        data, encoding = sample_encoding()
        path = tmp_path / "stream.9c"
        save_encoding(encoding, path)
        back = load_encoding(path)
        assert NineCDecoder(8).decode(back).covers(data)

    def test_reassigned_codebook_survives(self):
        data, base = sample_encoding()
        book = Codebook.from_lengths(
            assign_lengths_by_frequency(base.case_counts)
        )
        encoding = NineCEncoder(8, book).encode(data)
        back = loads_encoding(dumps_encoding(encoding))
        assert back.codebook == book

    def test_magic_required(self):
        with pytest.raises(ValueError):
            loads_encoding("k=8\nlength=0\nlengths=\nstream=\n")

    def test_missing_field_rejected(self):
        data, encoding = sample_encoding()
        text = dumps_encoding(encoding)
        broken = "\n".join(
            line for line in text.splitlines() if not line.startswith("k=")
        )
        with pytest.raises(ValueError):
            loads_encoding(broken)

    def test_truncated_stream_rejected(self):
        data, encoding = sample_encoding()
        text = dumps_encoding(encoding)
        truncated = text.replace(
            f"stream={encoding.stream.to_string()}",
            f"stream={encoding.stream.to_string()[:-4]}",
        )
        with pytest.raises((ValueError, EOFError)):
            loads_encoding(truncated)

    @given(ternary_vectors(min_size=1, max_size=96))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        encoding = NineCEncoder(8).encode(data)
        back = loads_encoding(dumps_encoding(encoding))
        assert NineCDecoder(8).decode(back).covers(data)
        assert back.compression_ratio == pytest.approx(
            encoding.compression_ratio
        )
        assert back.case_counts == encoding.case_counts


class TestBinaryContainer:
    """The .9ct binary test-set container + memmap ingestion."""

    def _sample_set(self):
        from repro.testdata.testset import TestSet

        return TestSet(
            [TernaryVector("01X0110X"), TernaryVector("X1101XX0"),
             TernaryVector("00011X10")],
            name="sample",
        )

    def test_roundtrip(self, tmp_path):
        from repro.core.io import (load_test_set_binary,
                                   save_test_set_binary)

        original = self._sample_set()
        path = tmp_path / "sample.9ct"
        save_test_set_binary(original, path)
        back = load_test_set_binary(path)
        assert back.num_patterns == original.num_patterns
        assert back.num_cells == original.num_cells
        assert back.to_stream() == original.to_stream()

    def test_memmap_stream_matches_in_memory(self, tmp_path):
        from repro.core.io import memmap_stream, save_test_set_binary

        original = self._sample_set()
        path = tmp_path / "sample.9ct"
        save_test_set_binary(original, path)
        stream, header = memmap_stream(path)
        assert header.num_patterns == 3 and header.num_cells == 8
        assert header.total_bits == 24
        assert stream.to_string() == original.to_stream().to_string()

    def test_bad_magic_rejected(self, tmp_path):
        from repro.core.io import read_binary_header

        path = tmp_path / "bad.9ct"
        path.write_bytes(b"NOPE" + bytes(20))
        with pytest.raises(ValueError, match="bad magic"):
            read_binary_header(path)

    def test_size_mismatch_rejected(self, tmp_path):
        from repro.core.io import save_test_set_binary, read_binary_header

        path = tmp_path / "short.9ct"
        save_test_set_binary(self._sample_set(), path)
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(ValueError, match="size mismatch"):
            read_binary_header(path)

    def test_validate_rejects_out_of_range(self, tmp_path):
        from repro.core.io import memmap_stream, save_test_set_binary

        path = tmp_path / "corrupt.9ct"
        save_test_set_binary(self._sample_set(), path)
        raw = bytearray(path.read_bytes())
        raw[-1] = 7  # outside {0, 1, 2}
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="outside"):
            memmap_stream(path, validate=True)
