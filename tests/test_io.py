"""Unit tests for the .9c container format."""

import pytest
from hypothesis import given, settings

from repro.core import (
    BlockCase,
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    assign_lengths_by_frequency,
    dumps_encoding,
    load_encoding,
    loads_encoding,
    save_encoding,
)

from .conftest import ternary_vectors


def sample_encoding(k=8):
    data = TernaryVector("00000000" "0000X01X" "1X1X111X" "01XX10XX")
    return data, NineCEncoder(k).encode(data)


class TestDumpLoad:
    def test_roundtrip_in_memory(self):
        data, encoding = sample_encoding()
        back = loads_encoding(dumps_encoding(encoding))
        assert back.k == encoding.k
        assert back.original_length == encoding.original_length
        assert back.stream == encoding.stream
        assert back.codebook == encoding.codebook
        assert [r.case for r in back.blocks] == \
            [r.case for r in encoding.blocks]
        assert [r.stream_offset for r in back.blocks] == \
            [r.stream_offset for r in encoding.blocks]

    def test_roundtrip_on_disk(self, tmp_path):
        data, encoding = sample_encoding()
        path = tmp_path / "stream.9c"
        save_encoding(encoding, path)
        back = load_encoding(path)
        assert NineCDecoder(8).decode(back).covers(data)

    def test_reassigned_codebook_survives(self):
        data, base = sample_encoding()
        book = Codebook.from_lengths(
            assign_lengths_by_frequency(base.case_counts)
        )
        encoding = NineCEncoder(8, book).encode(data)
        back = loads_encoding(dumps_encoding(encoding))
        assert back.codebook == book

    def test_magic_required(self):
        with pytest.raises(ValueError):
            loads_encoding("k=8\nlength=0\nlengths=\nstream=\n")

    def test_missing_field_rejected(self):
        data, encoding = sample_encoding()
        text = dumps_encoding(encoding)
        broken = "\n".join(
            line for line in text.splitlines() if not line.startswith("k=")
        )
        with pytest.raises(ValueError):
            loads_encoding(broken)

    def test_truncated_stream_rejected(self):
        data, encoding = sample_encoding()
        text = dumps_encoding(encoding)
        truncated = text.replace(
            f"stream={encoding.stream.to_string()}",
            f"stream={encoding.stream.to_string()[:-4]}",
        )
        with pytest.raises((ValueError, EOFError)):
            loads_encoding(truncated)

    @given(ternary_vectors(min_size=1, max_size=96))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        encoding = NineCEncoder(8).encode(data)
        back = loads_encoding(dumps_encoding(encoding))
        assert NineCDecoder(8).decode(back).covers(data)
        assert back.compression_ratio == pytest.approx(
            encoding.compression_ratio
        )
        assert back.case_counts == encoding.case_counts
