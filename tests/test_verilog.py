"""Structural tests for the generated decoder RTL (single-clock dialect)."""

import re

import pytest

from repro.core import BlockCase, Codebook
from repro.decompressor import (
    NineCDecoderFSM,
    generate_decoder_verilog,
    generate_multiscan_verilog,
)


class TestDecoderVerilog:
    def test_module_and_ports(self):
        rtl = generate_decoder_verilog(8)
        assert "module ninec_decoder" in rtl
        for port in ("clk", "rst_n", "dec_en", "ate_tick", "data_in",
                     "ready", "scan_en", "scan_out", "ack"):
            assert re.search(rf"\b{port}\b", rtl), port

    def test_parameters_track_k(self):
        rtl = generate_decoder_verilog(16)
        assert "localparam K = 16;" in rtl
        assert "localparam HALF = K / 2;" in rtl

    def test_every_state_declared(self):
        rtl = generate_decoder_verilog(8)
        for state in NineCDecoderFSM().states():
            assert f"ST_{state}" in rtl, state

    def test_every_case_resolved(self):
        rtl = generate_decoder_verilog(8)
        for case in BlockCase:
            assert f"// {case.name}" in rtl, case

    def test_control_logic_k_independent(self):
        # The FSM case statement is byte-identical across K; only the
        # localparams (K, HALF) and counter width change.
        def fsm_section(rtl):
            return rtl.split("case (state)")[1].split("endcase")[0]

        assert fsm_section(generate_decoder_verilog(8)) == \
            fsm_section(generate_decoder_verilog(64))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            generate_decoder_verilog(5)

    def test_custom_codebook(self):
        from repro.core import PAPER_LENGTHS

        lengths = dict(PAPER_LENGTHS)
        lengths[BlockCase.C8] = 4
        lengths[BlockCase.C9] = 5
        rtl = generate_decoder_verilog(8, Codebook.from_lengths(lengths))
        assert "// C8" in rtl and "// C9" in rtl

    def test_balanced_begin_end(self):
        rtl = generate_decoder_verilog(8)
        begins = len(re.findall(r"\bbegin\b", rtl))
        ends = len(re.findall(r"\bend\b", rtl))
        assert begins == ends

    def test_mux_covers_three_selects(self):
        rtl = generate_decoder_verilog(8)
        assert "SEL_ZERO" in rtl and "SEL_ONE" in rtl and "SEL_DATA" in rtl
        assert "assign scan_out" in rtl

    def test_handshake_signals(self):
        rtl = generate_decoder_verilog(8)
        assert "assign ready" in rtl
        assert "ate_tick" in rtl

    def test_single_clock_domain(self):
        rtl = generate_decoder_verilog(8)
        assert "clk_ate" not in rtl and "clk_soc" not in rtl
        assert rtl.count("always @(posedge clk") == 1


class TestMultiscanVerilog:
    def test_wrapper_instantiates_core(self):
        rtl = generate_multiscan_verilog(8, 16)
        assert "module ninec_multiscan_core" in rtl
        assert "module ninec_multiscan" in rtl
        assert "ninec_multiscan_core core" in rtl
        assert "parameter M = 16" in rtl

    def test_load_port_present(self):
        rtl = generate_multiscan_verilog(8, 4)
        assert re.search(r"output reg\s+load", rtl)
        assert "chain_in" in rtl

    def test_invalid_chains(self):
        with pytest.raises(ValueError):
            generate_multiscan_verilog(8, 0)

    def test_deterministic(self):
        assert generate_multiscan_verilog(8, 8) == \
            generate_multiscan_verilog(8, 8)
