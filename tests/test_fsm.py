"""Unit tests for the 9C decoder FSM (Figure 2)."""

import pytest

from repro.core import BlockCase, Codebook, HalfKind
from repro.decompressor import NineCDecoderFSM


class TestRecognition:
    def test_recognizes_every_codeword(self):
        fsm = NineCDecoderFSM()
        book = Codebook.default()
        for case in BlockCase:
            fsm.reset()
            resolved = None
            for bit in book.codeword(case):
                assert resolved is None
                resolved = fsm.on_data_bit(bit)
            assert resolved is case

    def test_max_five_cycles(self):
        # Paper: "Maximum of five cycles are required for the longest
        # codeword" — and the FSM is busy for exactly len(codeword) bits.
        fsm = NineCDecoderFSM()
        assert fsm.max_codeword_cycles == 5

    def test_invalid_bit_rejected(self):
        fsm = NineCDecoderFSM()
        with pytest.raises(ValueError):
            fsm.on_data_bit(2)

    def test_bit_during_pending_halves_rejected(self):
        fsm = NineCDecoderFSM()
        fsm.on_data_bit(0)  # C1 resolves immediately
        with pytest.raises(RuntimeError):
            fsm.on_data_bit(0)

    def test_next_half_without_codeword_rejected(self):
        with pytest.raises(RuntimeError):
            NineCDecoderFSM().next_half()

    def test_reset_clears_state(self):
        fsm = NineCDecoderFSM()
        fsm.on_data_bit(1)  # partway into a longer codeword
        assert fsm.busy
        fsm.reset()
        assert not fsm.busy
        assert fsm.on_data_bit(0) is BlockCase.C1


class TestHalfSequencing:
    def test_c1_halves(self):
        fsm = NineCDecoderFSM()
        fsm.on_data_bit(0)
        assert fsm.halves_remaining == 2
        first, second = fsm.next_half(), fsm.next_half()
        assert first.kind is HalfKind.ZEROS and second.kind is HalfKind.ZEROS
        assert first.sel == "zero"
        assert not first.from_ate
        assert not fsm.busy

    def test_c5_halves(self):
        fsm = NineCDecoderFSM()
        book = Codebook.default()
        for bit in book.codeword(BlockCase.C5):
            fsm.on_data_bit(bit)
        first, second = fsm.next_half(), fsm.next_half()
        assert first.sel == "zero"
        assert second.sel == "data"
        assert second.from_ate

    def test_c2_sel_is_one(self):
        fsm = NineCDecoderFSM()
        for bit in (1, 0):
            fsm.on_data_bit(bit)
        assert fsm.next_half().sel == "one"


class TestKIndependence:
    def test_state_count_is_small_and_fixed(self):
        # Trie of the canonical code: S0 + internal nodes; accepting
        # states fold back into S0, matching Figure 2's loop structure.
        fsm = NineCDecoderFSM()
        assert len(fsm.states()) == 8

    def test_transition_table_shape(self):
        fsm = NineCDecoderFSM()
        rows = fsm.transition_table()
        # one row per (state, bit) edge in the trie: 9 accepting + internal
        accepting = [r for r in rows if r[3] is not None]
        assert len(accepting) == 9
        for _src, bit, dst, case in accepting:
            assert dst == fsm.IDLE
            assert isinstance(case, BlockCase)

    def test_reassigned_codebook_still_works(self):
        from repro.core import PAPER_LENGTHS

        lengths = dict(PAPER_LENGTHS)
        lengths[BlockCase.C7] = 4
        lengths[BlockCase.C9] = 5
        book = Codebook.from_lengths(lengths)
        fsm = NineCDecoderFSM(book)
        for case in BlockCase:
            fsm.reset()
            resolved = None
            for bit in book.codeword(case):
                resolved = fsm.on_data_bit(bit)
            assert resolved is case
