"""X-code matrix constructions and the exhaustive (x, e) verifier."""

import pytest

from repro.compaction import (
    MATRIX_KINDS,
    XCodeMatrix,
    build_matrix,
    constant_weight_matrix,
    holds,
    parity_matrix,
    verify_x_code,
    xcompact_matrix,
)


class TestMatrixInvariants:
    def test_rejects_zero_row(self):
        with pytest.raises(ValueError):
            XCodeMatrix("bad", (0b01, 0b00), 2)

    def test_rejects_undriven_column(self):
        with pytest.raises(ValueError):
            XCodeMatrix("bad", (0b001, 0b001), 3)

    def test_rejects_row_overflow(self):
        with pytest.raises(ValueError):
            XCodeMatrix("bad", (0b100, 0b011), 2)

    def test_columns_roundtrip(self):
        matrix = xcompact_matrix(9)
        array = matrix.to_array()
        assert array.shape == (matrix.num_chains, matrix.num_outputs)
        for j, column in enumerate(matrix.columns()):
            assert column == [i for i in range(matrix.num_chains)
                              if array[i, j]]


class TestVerifier:
    def test_parity_holds_0_1(self):
        assert holds(parity_matrix(6), 0, 1)

    def test_parity_fails_1_1(self):
        """One X on a shared output hides every single error."""
        violations = verify_x_code(parity_matrix(6), 1, 1)
        assert violations
        first = violations[0]
        assert len(first.x_rows) == 1 and len(first.error_rows) == 1

    def test_counterexample_is_genuine(self):
        """The reported violation really is masked: the error XOR has
        no support outside the X rows' union."""
        matrix = parity_matrix(4)
        violation = verify_x_code(matrix, 1, 1)[0]
        x_union = 0
        for row in violation.x_rows:
            x_union |= matrix.rows[row]
        error = 0
        for row in violation.error_rows:
            error ^= matrix.rows[row]
        assert error & ~x_union == 0

    def test_max_violations_caps_output(self):
        violations = verify_x_code(parity_matrix(8), 1, 1, max_violations=3)
        assert len(violations) == 3

    def test_single_error_no_x_always_detected_by_any_matrix(self):
        # (0, 1) holds for every matrix because zero rows are rejected.
        for kind in sorted(MATRIX_KINDS):
            assert holds(build_matrix(kind, 6), 0, 1)


class TestXCompact:
    @pytest.mark.parametrize("n", [2, 4, 8, 9, 16, 32])
    def test_1_1_and_0_2_hold(self, n):
        matrix = xcompact_matrix(n)
        assert holds(matrix, 1, 1)
        assert holds(matrix, 0, 2)

    def test_canonical_nine_chain_case(self):
        """Mitra & Kim's canonical example: 9 chains into 5 outputs."""
        assert xcompact_matrix(9).num_outputs == 5

    def test_rows_have_one_odd_weight(self):
        matrix = xcompact_matrix(16)
        weights = {bin(row).count("1") for row in matrix.rows}
        assert len(weights) == 1
        assert next(iter(weights)) % 2 == 1

    def test_rows_distinct(self):
        matrix = xcompact_matrix(32)
        assert len(set(matrix.rows)) == matrix.num_chains


class TestConstantWeight:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_2_1_holds(self, n):
        assert holds(constant_weight_matrix(n, weight=3, x=2), 2, 1)

    def test_packing_is_subquadratic(self):
        # Partial-Steiner admission packs ~q^2/6 rows for weight 3.
        assert constant_weight_matrix(42, weight=3, x=2).num_outputs <= 24

    def test_rejects_x_at_least_weight(self):
        with pytest.raises(ValueError):
            constant_weight_matrix(8, weight=3, x=3)

    def test_exact_check_engages_for_e2(self):
        matrix = constant_weight_matrix(6, weight=3, x=1, e=2)
        assert holds(matrix, 1, 2)


class TestBuildMatrix:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_matrix("nosuch", 8)

    @pytest.mark.parametrize("kind", sorted(MATRIX_KINDS))
    def test_all_kinds_build(self, kind):
        matrix = build_matrix(kind, 8)
        assert matrix.num_chains == 8
