"""Unit tests for testbench/golden-vector generation."""

import re

from repro.core import NineCEncoder, TernaryVector
from repro.decompressor import generate_decoder_verilog, generate_testbench


def sample_encoding():
    data = TernaryVector("00000000" "0000X01X" "11111111")
    return NineCEncoder(8).encode(data)


class TestTestbench:
    def test_bundle_contents(self):
        encoding = sample_encoding()
        bundle = generate_testbench(encoding)
        assert "module ninec_decoder_tb" in bundle.testbench
        assert "$readmemb" in bundle.testbench
        assert "TESTBENCH PASS" in bundle.testbench

    def test_stimulus_matches_stream_with_fill(self):
        encoding = sample_encoding()
        bundle = generate_testbench(encoding, x_fill=1)
        bits = [int(line) for line in bundle.stimulus.split()]
        assert len(bits) == encoding.compressed_size
        expected = [1 if b == 2 else b for b in encoding.stream]
        assert bits == expected

    def test_golden_is_decoded_output(self):
        from repro.core import NineCDecoder

        encoding = sample_encoding()
        bundle = generate_testbench(encoding, x_fill=0)
        golden = [int(line) for line in bundle.golden.split()]
        filled = TernaryVector([0 if b == 2 else b for b in encoding.stream])
        decoded = NineCDecoder(8).decode_stream(filled)
        assert golden == [int(b) for b in decoded]

    def test_lengths_embedded(self):
        encoding = sample_encoding()
        bundle = generate_testbench(encoding)
        stim_len = re.search(r"STIM_LEN = (\d+)", bundle.testbench)
        gold_len = re.search(r"GOLD_LEN = (\d+)", bundle.testbench)
        assert int(stim_len.group(1)) == encoding.compressed_size
        assert int(gold_len.group(1)) == len(bundle.golden.split())

    def test_write_bundle(self, tmp_path):
        bundle = generate_testbench(sample_encoding())
        bundle.write(tmp_path, prefix="tb")
        assert (tmp_path / "tb.v").exists()
        assert (tmp_path / "tb_stimulus.memb").exists()
        assert (tmp_path / "tb_golden.memb").exists()

    def test_pairs_with_generated_rtl(self):
        # The DUT instantiated by the testbench exists in the RTL module.
        encoding = sample_encoding()
        bundle = generate_testbench(encoding, module_name="ninec_decoder")
        rtl = generate_decoder_verilog(8, module_name="ninec_decoder")
        assert "module ninec_decoder" in rtl
        assert re.search(r"\bninec_decoder dut\b", bundle.testbench)
