"""Stateful hypothesis tests: long interaction sequences stay consistent."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.decompressor import ScanChain
from repro.core import TernaryVector


class ScanChainMachine(RuleBasedStateMachine):
    """The ScanChain must behave like a plain Python deque model."""

    @initialize(length=st.integers(1, 12))
    def setup(self, length):
        self.length = length
        self.chain = ScanChain(length)
        self.model = [0] * length
        self.shifted_in = []

    @rule(bit=st.sampled_from([0, 1]))
    def shift(self, bit):
        out = self.chain.shift_in(bit)
        expected_out = self.model.pop()
        self.model.insert(0, bit)
        self.shifted_in.append(bit)
        assert out == expected_out

    @rule()
    def capture(self):
        captured = self.chain.capture()
        assert list(captured) == list(reversed(self.model))

    @invariant()
    def contents_match_model(self):
        if hasattr(self, "model"):
            assert list(self.chain.contents()) == self.model

    @invariant()
    def shift_count_tracks(self):
        if hasattr(self, "model"):
            assert self.chain.shift_count == len(self.shifted_in)


TestScanChainStateful = ScanChainMachine.TestCase
TestScanChainStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class CodecMachine(RuleBasedStateMachine):
    """Interleaved encode/decode/re-encode must stay a fixpoint."""

    @initialize(k=st.sampled_from([4, 8, 12]))
    def setup(self, k):
        from repro.core import NineCDecoder, NineCEncoder

        self.k = k
        self.encoder = NineCEncoder(k)
        self.decoder = NineCDecoder(k)
        self.data = TernaryVector("")

    @rule(chunk=st.lists(st.sampled_from([0, 1, 2]), min_size=1,
                         max_size=24))
    def append_data(self, chunk):
        self.data = TernaryVector.concat(
            [self.data, TernaryVector(chunk)]
        )

    @rule()
    def roundtrip_and_refine(self):
        encoding = self.encoder.encode(self.data)
        decoded = self.decoder.decode(encoding)
        assert decoded.covers(self.data)
        # continue the session on the refined data: must be a fixpoint
        second = self.encoder.encode(decoded)
        assert second.compressed_size == encoding.compressed_size
        self.data = decoded


TestCodecStateful = CodecMachine.TestCase
TestCodecStateful.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
