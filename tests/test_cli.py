"""Tests for the repro-9c command-line interface."""

import pytest

from repro.cli import main
from repro.testdata import TestSet


class TestCodingTable:
    def test_prints_table1(self, capsys):
        assert main(["coding-table", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "C1" in out and "C9" in out
        assert "K=8" in out


class TestCompress:
    def test_benchmark_compress(self, capsys):
        assert main(["compress", "--benchmark", "s5378", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "CR%" in out
        assert "23754" in out  # |T_D| of s5378

    def test_file_compress_and_output(self, tmp_path, capsys):
        ts = TestSet.from_strings(["00000000", "0000X01X"], name="demo")
        src = tmp_path / "demo.test"
        ts.save(src)
        dst = tmp_path / "stream.test"
        assert main(["compress", str(src), "--k", "8", "-o", str(dst)]) == 0
        assert dst.exists()

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["compress"])


class TestDecompress:
    def test_roundtrip_via_files(self, tmp_path, capsys):
        ts = TestSet.from_strings(["00000000", "11111111"], name="demo")
        src = tmp_path / "demo.test"
        ts.save(src)
        stream = tmp_path / "stream.test"
        main(["compress", str(src), "--k", "8", "-o", str(stream)])
        out = tmp_path / "out.test"
        assert main([
            "decompress", str(stream), "--k", "8", "--cells", "8",
            "--length", "16", "-o", str(out),
        ]) == 0
        assert TestSet.load(out).covers(ts)

    def test_fast_and_reference_paths_agree(self, tmp_path, capsys):
        ts = TestSet.from_strings(["0110X01X", "1111000X"], name="demo")
        src = tmp_path / "demo.test"
        ts.save(src)
        stream = tmp_path / "stream.test"
        main(["compress", str(src), "--k", "8", "-o", str(stream)])
        fast_out = tmp_path / "fast.test"
        reference_out = tmp_path / "reference.test"
        assert main([
            "decompress", str(stream), "--k", "8", "--cells", "8",
            "--length", "16", "--fast", "-o", str(fast_out),
        ]) == 0
        assert "fast path" in capsys.readouterr().out
        assert main([
            "decompress", str(stream), "--k", "8", "--cells", "8",
            "--length", "16", "--reference", "-o", str(reference_out),
        ]) == 0
        assert "reference path" in capsys.readouterr().out
        assert TestSet.load(fast_out) == TestSet.load(reference_out)

    def test_fast_and_reference_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "decompress", "whatever.test", "--k", "8", "--cells", "8",
                "--fast", "--reference", "-o", str(tmp_path / "x.test"),
            ])


class TestAnalysisCommands:
    def test_sweep(self, capsys):
        assert main(["sweep", "--benchmark", "s5378"]) == 0
        out = capsys.readouterr().out
        assert "CR%" in out and "LX%" in out

    def test_compare(self, capsys):
        assert main(["compare", "--benchmark", "s5378"]) == 0
        out = capsys.readouterr().out
        assert "9c" in out and "fdr" in out

    def test_tat(self, capsys):
        assert main(["tat", "--benchmark", "s5378", "--k", "8",
                     "--p", "2", "8"]) == 0
        out = capsys.readouterr().out
        assert "TAT%" in out

    def test_sweep_json(self, capsys):
        import json

        assert main(["sweep", "--benchmark", "s5378", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["td_bits"] == 23754
        assert "8" in data["sweep"]

    def test_compare_json(self, capsys):
        import json

        assert main(["compare", "--benchmark", "s5378", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "9c" in data["codes"]

    def test_tat_json(self, capsys):
        import json

        assert main(["tat", "--benchmark", "s5378", "--json",
                     "--p", "8"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["tat"]["8"]["tat_percent"] <= \
            data["tat"]["8"]["cr_percent"]

    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("s5378", "s38584", "ckt1"):
            assert name in out


class TestExtendedCommands:
    def test_freq(self, capsys):
        assert main(["freq", "--benchmark", "s5378"]) == 0
        out = capsys.readouterr().out
        assert "reassigned" in out

    def test_efficiency(self, capsys):
        assert main(["efficiency", "--benchmark", "s5378", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "efficiency (huffman)" in out

    def test_rtl_stdout(self, capsys):
        assert main(["rtl", "--k", "8"]) == 0
        assert "module ninec_decoder" in capsys.readouterr().out

    def test_rtl_multiscan_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "dec.v"
        assert main(["rtl", "--k", "8", "--chains", "16",
                     "-o", str(out_file)]) == 0
        assert "ninec_multiscan" in out_file.read_text()


class TestAdaptiveCommand:
    def test_adaptive(self, capsys):
        assert main(["adaptive", "--benchmark", "s5378"]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out and "window choices" in out


class TestSystemCommand:
    def test_system_s27(self, capsys):
        assert main(["system", "--circuit", "s27", "--k", "4",
                     "--screen", "3"]) == 0
        out = capsys.readouterr().out
        assert "golden signature" in out
        assert "3/3" in out

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["system", "--circuit", "nope"])


class TestResilienceCommand:
    def test_framed_campaign(self, capsys):
        assert main(["resilience", "--circuit", "s27", "--k", "4",
                     "--error-rate", "1e-2", "--trials", "6"]) == 0
        out = capsys.readouterr().out
        assert "detection rate" in out
        assert "silent escape rate" in out
        assert "framed" in out

    def test_raw_stream_campaign(self, capsys):
        assert main(["resilience", "--circuit", "s27", "--k", "4",
                     "--error-rate", "1e-2", "--trials", "6",
                     "--no-framing", "--channel", "burst"]) == 0
        out = capsys.readouterr().out
        assert "raw" in out

    def test_json_output(self, capsys):
        import json

        assert main(["resilience", "--circuit", "s27", "--k", "4",
                     "--error-rate", "1e-2", "--trials", "5",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["circuit"] == "s27"
        assert 0.0 <= data["overall"]["silent_escape_rate"] <= 1.0
        assert data["rates"][0]["trials"] == 5

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["resilience", "--circuit", "nope"])


class TestAtpgCommand:
    def test_atpg_s27(self, tmp_path, capsys):
        out_file = tmp_path / "s27.test"
        assert main(["atpg", "--circuit", "s27", "--k", "4",
                     "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "fault coverage" in out
        assert out_file.exists()

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["atpg", "--circuit", "nope"])


class TestCompressJson:
    def test_benchmark_json(self, capsys):
        import json

        assert main(["compress", "--benchmark", "s5378", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "s5378"
        assert data["td_bits"] == 23754
        assert 0 < data["te_bits"] < data["td_bits"]
        assert data["cr_percent"] == pytest.approx(
            100.0 * (1 - data["te_bits"] / data["td_bits"]), abs=0.01
        )

    def test_json_with_output_file(self, tmp_path, capsys):
        import json

        from repro.testdata import TestSet as TS

        src = tmp_path / "demo.test"
        TS.from_strings(["00000000", "0000X01X"], name="demo").save(src)
        dst = tmp_path / "stream.test"
        assert main(["compress", str(src), "--json", "-o", str(dst)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["output"] == str(dst)
        assert dst.exists()


class TestJsonErrorPaths:
    """Under --json, failures are structured objects, never tracebacks."""

    def test_nonexistent_input_emits_structured_error(self, tmp_path,
                                                      capsys):
        import json

        missing = tmp_path / "does_not_exist.test"
        exit_code = main(["compress", str(missing), "--json"])
        assert exit_code != 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["command"] == "compress"
        assert payload["error"]["type"] == "FileNotFoundError"
        assert "does_not_exist.test" in payload["error"]["message"]

    def test_missing_input_emits_structured_error(self, capsys):
        import json

        exit_code = main(["compress", "--json"])
        assert exit_code != 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["command"] == "compress"
        assert "benchmark" in payload["error"]["message"]

    def test_non_json_path_still_raises(self, tmp_path):
        missing = tmp_path / "does_not_exist.test"
        with pytest.raises(FileNotFoundError):
            main(["compress", str(missing)])


class TestProfileCommand:
    def test_profile_json_writes_baseline(self, tmp_path, capsys):
        import json

        from repro.obs.profile import SCENARIOS, validate_baseline

        out = tmp_path / "BENCH_obs.json"
        assert main([
            "profile", "--circuit", "s27", "--scenarios", "compress",
            "decompress", "--no-fastpath", "--json", "-o", str(out),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_baseline(
            payload, required_scenarios=("compress", "decompress")
        ) == []
        assert json.loads(out.read_text()) == payload

    def test_profile_table(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        assert main([
            "profile", "--circuit", "s27", "--scenarios", "compress",
            "--no-fastpath", "-o", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "compress" in text and str(out) in text
        assert out.exists()

    def test_decode_scenario_prints_fastpath_line(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        assert main([
            "profile", "--circuit", "s27", "--scenarios", "decode",
            "--no-fastpath", "-o", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "decode fast path" in text
        assert "identical output: True" in text

    def test_reference_decode_flag(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_obs.json"
        assert main([
            "profile", "--circuit", "s27", "--scenarios", "decompress",
            "--reference", "--no-fastpath", "--json", "-o", str(out),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        extra = payload["scenarios"]["decompress"]["extra"]
        assert extra["fast"] is False
        counters = payload["scenarios"]["decompress"]["metrics"]["counters"]
        assert counters["decode.reference_calls"] == 1

    def test_unknown_circuit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", "--circuit", "nope",
                  "-o", str(tmp_path / "b.json")])


class TestStatsCommand:
    @pytest.fixture()
    def baseline(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        assert main([
            "profile", "--circuit", "s27", "--scenarios", "compress",
            "session", "--no-fastpath", "-o", str(path), "--json",
        ]) == 0
        return path

    def test_stats_table(self, baseline, capsys):
        capsys.readouterr()  # drop the profile output
        assert main(["stats", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "encode.calls" in out
        assert "session.runs" in out

    def test_stats_json_scenario_filter(self, baseline, capsys):
        import json

        capsys.readouterr()
        assert main(["stats", "--baseline", str(baseline),
                     "--scenario", "compress", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert list(data) == ["compress"]
        assert data["compress"]["counters"]["encode.calls"] == 1

    def test_missing_baseline(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", "--baseline", str(tmp_path / "absent.json")])


class TestCompact:
    def test_compact_table(self, capsys):
        assert main(["compact", "--circuit", "s27", "--faults", "8",
                     "--x-density", "0.0", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "xcompact" in out and "misr" in out
        assert "holds" in out  # X-code verifier status lines

    def test_compact_json_schema_and_checks(self, capsys):
        import json

        from repro.obs.profile import validate_baseline

        assert main(["compact", "--circuit", "s27", "--faults", "8",
                     "--x-density", "0.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_baseline(payload) == []
        extra = payload["scenarios"]["compaction"]["extra"]
        checks = extra["xcode_checks"]
        assert {c["matrix"] for c in checks} == {"parity", "xcompact", "cw3"}
        assert all(c["holds"] for c in checks)
        assert all(p["detection_rate"] == 1.0
                   for p in extra["points"] if p["density"] == 0.0)

    def test_compact_writes_output_file(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "compaction.json"
        assert main(["compact", "--circuit", "s27", "--faults", "4",
                     "--x-density", "0.0", "--json",
                     "-o", str(out_file)]) == 0
        emitted = json.loads(capsys.readouterr().out)
        assert json.loads(out_file.read_text()) == emitted

    def test_compact_compactor_selection(self, capsys):
        import json

        assert main(["compact", "--circuit", "s27", "--faults", "4",
                     "--x-density", "0.0", "--compactor", "misr",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        points = payload["scenarios"]["compaction"]["extra"]["points"]
        assert {p["compactor"] for p in points} == {"misr"}

    def test_unknown_circuit_structured_error(self, capsys):
        import json

        exit_code = main(["compact", "--circuit", "nosuch", "--json"])
        assert exit_code != 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["command"] == "compact"
        assert "nosuch" in payload["error"]["message"]

    def test_unknown_circuit_non_json_raises(self):
        with pytest.raises(SystemExit):
            main(["compact", "--circuit", "nosuch"])
