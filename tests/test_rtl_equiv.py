"""Three-way decoder equivalence harness (EQ001-EQ004).

The positive direction pins all four legs green for every supported K;
the negative direction proves the harness actually *catches* injected
defects — a single-gate netlist mutation and a one-token RTL mutation
both produce failing legs with concrete counterexamples.
"""

import json

import pytest

from repro.circuits.netlist import Gate, GateType, Netlist
from repro.core.codewords import Codebook
from repro.decompressor.gates import decoder_netlist
from repro.decompressor.verilog import generate_decoder_verilog
from repro.lint.findings import Severity
from repro.lint.runner import reassigned_codebook
from repro.rtl import equiv_findings, run_equiv
from repro.rtl.equiv import OracleDecoder
from repro.decompressor.fsm import NineCDecoderFSM


def leg(report, name):
    matches = [entry for entry in report.legs if entry.leg == name]
    assert len(matches) == 1
    return matches[0]


def rename_nets(netlist, prefix="n"):
    mapping = {name: f"{prefix}{i}" for i, name in
               enumerate(netlist.gates)}
    return Netlist(
        "renamed",
        [mapping[i] for i in netlist.inputs],
        [mapping[o] for o in netlist.outputs],
        [
            Gate(mapping[g.name], g.gate_type,
                 tuple(mapping[f] for f in g.fanins))
            for g in netlist.gates.values()
            if g.gate_type is not GateType.INPUT
        ],
    )


def mutate_one_gate(netlist):
    """Flip the first FSM cover AND term to OR (single-gate defect)."""
    gates = []
    mutated = None
    for gate in netlist.gates.values():
        if gate.gate_type is GateType.INPUT:
            continue
        if (
            mutated is None
            and gate.name.startswith("ns")
            and "_t" in gate.name
            and gate.gate_type is GateType.AND
        ):
            gates.append(Gate(gate.name, GateType.OR, gate.fanins))
            mutated = gate.name
        else:
            gates.append(gate)
    assert mutated is not None
    return Netlist("mutant", netlist.inputs, netlist.outputs, gates), \
        mutated


class TestAllLegsPass:
    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_exhaustive_for_small_k(self, k):
        report = run_equiv(k, stream_blocks=2)
        assert report.ok, report.render()
        assert all(entry.status == "pass" for entry in report.legs)
        # EQ002 is genuinely exhaustive at these sizes
        assert "exhaustive" in leg(report, "EQ002").detail
        # EQ001 explored the full reachable product machine
        assert leg(report, "EQ001").checked > 100

    def test_k32_randomized_vector_budget(self):
        report = run_equiv(32, vectors=10000, stream_blocks=2)
        assert report.ok, report.render()
        eq002 = leg(report, "EQ002")
        assert eq002.status == "pass"
        assert eq002.checked == 10000  # the promised budget, verbatim

    def test_reassigned_codebook(self):
        report = run_equiv(
            8, reassigned_codebook(), stream_blocks=2,
            codebook_label="reassigned",
        )
        assert report.ok, report.render()
        assert report.codebook_label == "reassigned"

    def test_report_dict_roundtrips_through_json(self):
        report = run_equiv(4, stream_blocks=1)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert [entry["leg"] for entry in payload["legs"]] == \
            ["EQ001", "EQ002", "EQ003", "EQ004"]


class TestHarnessCatchesDefects:
    def test_single_gate_mutation_is_caught(self):
        mutant, mutated = mutate_one_gate(decoder_netlist(8))
        report = run_equiv(8, netlist=mutant, stream_blocks=1)
        assert not report.ok
        # the word-level leg names the defective net...
        eq002 = leg(report, "EQ002")
        assert eq002.status == "fail"
        counterexample = eq002.counterexample
        assert counterexample is not None
        assert mutated.split("_")[0] in counterexample.message
        # ...with a concrete input assignment in the trace
        assert counterexample.trace
        step = counterexample.trace[0]
        assert set(step.inputs) == set(mutant.scan_inputs)
        # and the name-independent bisimulation leg agrees
        assert leg(report, "EQ003").status == "fail"
        # structural legs are unaffected by a functional mutation
        assert leg(report, "EQ004").status == "pass"

    def test_behavioral_rtl_mutation_is_caught_with_trace(self):
        rtl = generate_decoder_verilog(8)
        broken = rtl.replace(
            "wire done = count == HALF - 1;",
            "wire done = count == HALF - 2;",
        )
        assert broken != rtl
        report = run_equiv(8, rtl_text=broken, stream_blocks=0)
        eq001 = leg(report, "EQ001")
        assert eq001.status == "fail"
        counterexample = eq001.counterexample
        assert counterexample is not None
        assert counterexample.trace  # replayable input sequence
        rendered = counterexample.render()
        assert "cycle" in rendered and "EQ001" in rendered

    def test_failed_legs_become_lint_errors(self):
        mutant, _ = mutate_one_gate(decoder_netlist(8))
        report = run_equiv(8, netlist=mutant, stream_blocks=1)
        findings = equiv_findings(report, "equiv:mutant")
        assert findings
        assert {f.rule for f in findings} <= {"EQ001", "EQ002", "EQ003",
                                              "EQ004"}
        assert all(f.severity is Severity.ERROR for f in findings)
        assert all(f.artifact == "equiv:mutant" for f in findings)

    def test_clean_report_produces_no_findings(self):
        report = run_equiv(4, stream_blocks=1)
        assert equiv_findings(report, "equiv:clean") == []


class TestImportedNetlists:
    def test_renamed_netlist_skips_eq002_but_still_proves_eq003(self):
        renamed = rename_nets(decoder_netlist(8))
        report = run_equiv(8, netlist=renamed, stream_blocks=1)
        assert leg(report, "EQ002").status == "skipped"
        assert leg(report, "EQ003").status == "pass"
        assert leg(report, "EQ004").status == "pass"
        assert report.ok  # skipped legs do not fail the report

    def test_renamed_mutant_still_caught_by_eq003(self):
        mutant, _ = mutate_one_gate(decoder_netlist(8))
        report = run_equiv(8, netlist=rename_nets(mutant),
                           stream_blocks=1)
        assert leg(report, "EQ002").status == "skipped"
        assert leg(report, "EQ003").status == "fail"
        assert not report.ok


class TestOracle:
    """The EQ001 oracle honors the documented handshake contract."""

    def test_codeword_then_halves_then_ack(self):
        fsm = NineCDecoderFSM()
        oracle = OracleDecoder(fsm, k=4)
        bits = Codebook.default().codeword(
            next(iter(dict(Codebook.default().items())))
        )
        for bit in bits:
            assert oracle.ready(1)
            oracle.step(1, 1, bit)
        # case latched: the decoder now drives halves
        assert oracle.case_valid
        cycles = 0
        while oracle.case_valid and cycles < 64:
            dec_en, ate_tick = 1, 1
            oracle.step(dec_en, ate_tick, 0)
            cycles += 1
        assert oracle.ack  # block completion pulses ack
        assert cycles == 4  # K bits driven, one per cycle

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            run_equiv(7)
