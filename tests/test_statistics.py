"""Unit tests for test-data statistics."""

import pytest

from repro.analysis import analyze_stream, analyze_test_set, mt_run_profile
from repro.core import TernaryVector
from repro.testdata import ISCAS89_PROFILES, TestSet, load_benchmark


class TestAnalyzeStream:
    def test_empty(self):
        stats = analyze_stream(TernaryVector(""))
        assert stats.total_bits == 0
        assert stats.x_density == 0.0

    def test_known_values(self):
        stats = analyze_stream(TernaryVector("00XX11XX"))
        assert stats.total_bits == 8
        assert stats.x_density == pytest.approx(0.5)
        assert stats.specified_zero_fraction == pytest.approx(0.5)
        assert stats.mean_specified_burst == pytest.approx(2.0)
        assert stats.mean_x_run == pytest.approx(2.0)

    def test_zero_run_histogram(self):
        # "00100001": a 2-run before the first 1, a 4-run before the next
        stats = analyze_stream(TernaryVector("00100001"))
        assert stats.zero_run_histogram == {2: 1, 4: 1}

    def test_all_x(self):
        stats = analyze_stream(TernaryVector("XXXX"))
        assert stats.x_density == 1.0
        assert stats.specified_zero_fraction == 0.0
        assert stats.mean_specified_burst == 0.0

    def test_describe(self):
        text = analyze_stream(TernaryVector("0X1X")).describe()
        assert "bits" in text and "X" in text


class TestGeneratorCalibration:
    """The surrogate generator must hit its documented statistics."""

    @pytest.mark.parametrize("name", sorted(ISCAS89_PROFILES))
    def test_profile_statistics_match(self, name):
        profile = ISCAS89_PROFILES[name]
        stats = analyze_test_set(load_benchmark(name))
        assert stats.x_density == pytest.approx(profile.x_density, abs=0.02)
        assert stats.specified_zero_fraction == pytest.approx(
            profile.zero_bias, abs=0.05
        )
        assert stats.mean_specified_burst == pytest.approx(
            profile.mean_specified_run, rel=0.35
        )


class TestClosedLoopCalibration:
    """analyze -> profile_from_statistics -> generate reproduces CR."""

    @pytest.mark.parametrize("name", ["s5378", "s13207", "s38417"])
    def test_clone_matches_original_cr(self, name):
        from repro.core import NineCEncoder
        from repro.testdata import generate, profile_from_statistics

        original = load_benchmark(name)
        stats = analyze_test_set(original)
        profile = profile_from_statistics(
            stats, original.num_cells, original.num_patterns, seed=7
        )
        clone = generate(profile)
        for k in (8, 16):
            a = NineCEncoder(k).measure(original.to_stream())
            b = NineCEncoder(k).measure(clone.to_stream())
            assert b.compression_ratio == pytest.approx(
                a.compression_ratio, abs=4.0
            ), (name, k)

    def test_value_persistence_property(self):
        stats = analyze_stream(TernaryVector("000111"))
        # two value runs of 3 -> mean 3 -> persistence 2/3
        assert stats.mean_value_run == pytest.approx(3.0)
        assert stats.value_persistence == pytest.approx(2 / 3)

    def test_profile_clamps_extremes(self):
        from repro.testdata import profile_from_statistics

        stats = analyze_stream(TernaryVector("XXXX"))
        profile = profile_from_statistics(stats, 4, 2)
        assert 0.0 < profile.x_density < 1.0
        assert 0.0 < profile.zero_bias < 1.0


class TestMTRunProfile:
    def test_profile_shape(self):
        profile = mt_run_profile(TernaryVector("0XX011X1"))
        assert sum(k * v for k, v in profile.items()) == 8

    def test_mt_fill_lengthens_runs(self):
        stream = load_benchmark("s5378", fraction=0.2).to_stream()
        mt_runs = mt_run_profile(stream)
        mean_mt = sum(k * v for k, v in mt_runs.items()) / \
            sum(mt_runs.values())
        stats = analyze_stream(stream)
        assert mean_mt > stats.mean_specified_burst
