"""Unit tests for power-aware pattern ordering."""

import pytest

from repro.analysis import (
    greedy_order,
    hamming_distance,
    ordering_gain,
    reorder_for_power,
    sequence_dissimilarity,
)
from repro.core import TernaryVector
from repro.testdata import TestSet, load_benchmark


class TestHammingDistance:
    def test_basic(self):
        assert hamming_distance(TernaryVector("0101"),
                                TernaryVector("0110")) == 2

    def test_x_matches_anything(self):
        assert hamming_distance(TernaryVector("0X1X"),
                                TernaryVector("0110")) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(TernaryVector("01"), TernaryVector("011"))


class TestGreedyOrder:
    def test_empty(self):
        assert greedy_order(TestSet([])) == []

    def test_permutation(self):
        ts = TestSet.from_strings(["0000", "1111", "0011", "0001"])
        order = greedy_order(ts)
        assert sorted(order) == [0, 1, 2, 3]

    def test_obvious_clustering(self):
        ts = TestSet.from_strings(["0000", "1111", "0001", "1110"])
        order = greedy_order(ts, start=0)
        # 0000 -> 0001 (d=1) -> 1110? no: from 0001 nearest is 1110? d=4
        # vs 1111 d=3 -> 1111 then 1110.
        assert order == [0, 2, 1, 3]

    def test_start_validated(self):
        ts = TestSet.from_strings(["01", "10"])
        with pytest.raises(ValueError):
            greedy_order(ts, start=7)


class TestReordering:
    def test_detection_independent_content(self):
        ts = TestSet.from_strings(["0000", "1111", "0011"])
        out = reorder_for_power(ts)
        assert sorted(p.to_string() for p in out) == \
            sorted(p.to_string() for p in ts)

    def test_dissimilarity_never_worse(self):
        ts = load_benchmark("s5378", fraction=0.3)
        before = sequence_dissimilarity(ts)
        after = sequence_dissimilarity(reorder_for_power(ts))
        assert after <= before

    def test_gain_on_shuffled_data(self):
        # Alternating far-apart patterns: huge gain available.
        rows = ["00000000", "11111111"] * 10
        ts = TestSet.from_strings(rows)
        assert ordering_gain(ts) > 80.0

    def test_gain_zero_on_trivial(self):
        ts = TestSet.from_strings(["0000"])
        assert ordering_gain(ts) == 0.0

    def test_gain_on_benchmark(self):
        ts = load_benchmark("s9234", fraction=0.3)
        assert ordering_gain(ts) >= 0.0
