"""Unit tests for the fault model and fault simulators."""

import numpy as np
import pytest

from repro.circuits import (
    Fault,
    all_faults,
    collapsed_faults,
    coverage,
    detects,
    fault_simulate,
    fault_simulate_cubes,
    load_circuit,
)
from repro.circuits.fault_sim import CubeGrader
from repro.core import TernaryVector
from repro.testdata import TestSet, fill_test_set


class TestFault:
    def test_str(self):
        assert str(Fault("n1", 0)) == "n1/sa0"
        assert str(Fault("n1", 1, pin=2)) == "n1.in2/sa1"

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            Fault("n1", 2)

    def test_injection(self):
        injection = Fault("n1", 1, pin=0).injection
        assert injection.net == "n1"
        assert injection.value == 1
        assert injection.pin == 0

    def test_ordering_and_hash(self):
        fs = {Fault("a", 0), Fault("a", 0), Fault("a", 1)}
        assert len(fs) == 2
        assert sorted(fs)[0] == Fault("a", 0)


class TestCollapseMap:
    """Every dropped fault must be simulation-equivalent to its rep."""

    @pytest.mark.parametrize("name", ["c17", "s27", "g64"])
    def test_dropped_faults_all_mapped(self, name):
        from repro.circuits import collapse_map

        netlist = load_circuit(name)
        dropped = set(all_faults(netlist)) - set(collapsed_faults(netlist))
        mapping = collapse_map(netlist)
        assert dropped <= set(mapping)
        collapsed = set(collapsed_faults(netlist))
        assert all(rep in collapsed for rep in mapping.values())

    @pytest.mark.parametrize("name", ["c17", "s27", "g64"])
    def test_equivalence_by_simulation(self, name):
        """Dropped fault and representative have identical detection."""
        from repro.circuits import Injection, PackedSimulator, collapse_map

        netlist = load_circuit(name)
        mapping = collapse_map(netlist)
        rng = np.random.default_rng(31)
        matrix = rng.integers(
            0, 2, size=(48, netlist.scan_length)
        ).astype(np.uint8)
        simulator = PackedSimulator(netlist)
        packed = PackedSimulator.pack(matrix)
        outputs = netlist.scan_outputs

        def response(injection):
            values = simulator.run_packed(packed, 48, injection)
            return tuple(values[net] for net in outputs)

        for dropped, representative in sorted(mapping.items())[:120]:
            assert response(dropped.injection) == \
                response(representative.injection), (dropped, representative)


class TestFaultLists:
    def test_dff_q_stem_faults_present(self):
        s27 = load_circuit("s27")
        faults = set(all_faults(s27))
        for ff in s27.flip_flops:
            assert Fault(ff, 0) in faults and Fault(ff, 1) in faults
        collapsed = set(collapsed_faults(s27))
        for ff in s27.flip_flops:
            assert Fault(ff, 0) in collapsed

    def test_all_faults_counts(self):
        c17 = load_circuit("c17")
        faults = all_faults(c17)
        # 5 PIs (2 each) + 6 gates (2 stem + 2*2 pins each)
        assert len(faults) == 5 * 2 + 6 * (2 + 4)

    def test_collapsed_smaller(self):
        c17 = load_circuit("c17")
        assert len(collapsed_faults(c17)) < len(all_faults(c17))

    def test_collapsed_subset_of_all(self):
        s27 = load_circuit("s27")
        assert set(collapsed_faults(s27)) <= set(all_faults(s27))

    def test_no_dff_input_pin_faults(self):
        # DFFs contribute Q stem faults only; the D-input pin fault is
        # outside the combinational model (see all_faults docstring).
        s27 = load_circuit("s27")
        dffs = set(s27.flip_flops)
        assert all(f.pin is None for f in all_faults(s27)
                   if f.net in dffs)

    def test_coverage_helper(self):
        assert coverage(1, 2) == 50.0
        assert coverage(0, 0) == 100.0


class TestFaultSimulate:
    def test_exhaustive_c17_coverage(self):
        c17 = load_circuit("c17")
        patterns = [
            TernaryVector([(i >> b) & 1 for b in range(5)]) for i in range(32)
        ]
        result = fault_simulate(c17, TestSet(patterns), collapsed_faults(c17))
        assert result.coverage == 100.0  # c17 has no redundant faults

    def test_rejects_x(self):
        c17 = load_circuit("c17")
        with pytest.raises(ValueError):
            fault_simulate(c17, TestSet([TernaryVector("0101X")]),
                           collapsed_faults(c17))

    def test_empty_pattern_set(self):
        c17 = load_circuit("c17")
        faults = collapsed_faults(c17)
        result = fault_simulate(c17, TestSet([]), faults)
        assert result.coverage == 0.0
        assert result.undetected == faults

    def test_first_detection_indices(self):
        c17 = load_circuit("c17")
        patterns = TestSet([TernaryVector("00000"), TernaryVector("11111")])
        result = fault_simulate(c17, patterns, collapsed_faults(c17))
        assert all(0 <= i < 2 for i in result.first_detection.values())
        assert set(result.essential_patterns()) <= {0, 1}


class TestCubeGrading:
    def test_cube_detection_fill_independent(self):
        """A cube-detected fault stays detected under every constant fill."""
        s27 = load_circuit("s27")
        faults = collapsed_faults(s27)
        cube = TernaryVector("1XX0XX1")
        cube_result = fault_simulate_cubes(s27, TestSet([cube]), faults)
        for fill in (0, 1):
            filled = TestSet([cube.filled(fill)])
            filled_result = fault_simulate(s27, filled, faults)
            assert set(cube_result.detected) <= set(filled_result.detected)

    def test_matches_specified_simulation(self):
        s27 = load_circuit("s27")
        faults = collapsed_faults(s27)
        patterns = TestSet([TernaryVector("1010101"), TernaryVector("0101010")])
        assert set(fault_simulate_cubes(s27, patterns, faults).detected) == \
            set(fault_simulate(s27, patterns, faults).detected)

    def test_grader_matches_cube_simulation(self):
        s27 = load_circuit("s27")
        faults = collapsed_faults(s27)
        grader = CubeGrader(s27)
        rng = np.random.default_rng(9)
        for _ in range(20):
            data = rng.integers(0, 3, size=s27.scan_length).astype(np.uint8)
            cube = TernaryVector(data)
            reference = set(
                fault_simulate_cubes(s27, TestSet([cube]), faults).detected
            )
            assert set(grader.grade(cube, faults)) == reference

    def test_detects_helper(self):
        c17 = load_circuit("c17")
        fault = Fault("N22", 0)
        # N22 sa0 needs N22=1: e.g. N10=0 via N1=N3=1
        assert detects(c17, TernaryVector("1X1XX"), fault) in (True, False)
