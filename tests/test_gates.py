"""Unit tests for decoder cost estimation (QM minimization + FSM cost)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompressor import (
    decoder_cost,
    fsm_cost,
    minimize_function,
    minimum_cover,
    prime_implicants,
)
from repro.decompressor.gates import _covers, implicant_literals


def truth_of_cover(cover, num_vars):
    return {
        m for m in range(1 << num_vars)
        if any(_covers(p, m) for p in cover)
    }


class TestQuineMcCluskey:
    def test_xor_not_minimizable(self):
        # XOR of 2 vars: minterms {1, 2}, no merging possible.
        primes = prime_implicants([1, 2], [], 2)
        cover = minimum_cover([1, 2], primes)
        assert len(cover) == 2
        assert sum(implicant_literals(p, 2) for p in cover) == 4

    def test_full_cube_collapses(self):
        primes = prime_implicants(list(range(8)), [], 3)
        cover = minimum_cover(list(range(8)), primes)
        assert len(cover) == 1
        assert implicant_literals(cover[0], 3) == 0

    def test_classic_example(self):
        # f(a,b,c,d) = sum m(0,1,2,5,6,7,8,9,10,14) — a textbook case.
        minterms = [0, 1, 2, 5, 6, 7, 8, 9, 10, 14]
        primes = prime_implicants(minterms, [], 4)
        cover = minimum_cover(minterms, primes)
        assert truth_of_cover(cover, 4) == set(minterms)

    def test_dont_cares_help(self):
        with_dc = minimize_function([1], 2, dont_cares=[3])
        without = minimize_function([1], 2)
        assert with_dc.literals <= without.literals

    def test_empty_function(self):
        cost = minimize_function([], 4)
        assert cost.terms == 0 and cost.literals == 0

    @given(
        st.sets(st.integers(0, 31), max_size=20),
        st.sets(st.integers(0, 31), max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_cover_is_exact_on_care_set(self, on_set, dc_set):
        on_set = sorted(on_set - dc_set)
        if not on_set:
            return
        primes = prime_implicants(on_set, sorted(dc_set), 5)
        cover = minimum_cover(on_set, primes)
        truth = truth_of_cover(cover, 5)
        assert set(on_set) <= truth
        # cover may absorb don't-cares but never off-set minterms
        off = set(range(32)) - set(on_set) - dc_set
        assert not (truth & off)


class TestDecoderCost:
    def test_fsm_cost_shape(self):
        states, flops, terms, literals = fsm_cost()
        assert states == 8
        assert flops == 3
        assert terms > 0 and literals > 0

    def test_fsm_cost_k_independent(self):
        # The paper's headline decoder property: K only resizes the
        # counter and shifter, never the control FSM.
        costs = [decoder_cost(k) for k in (4, 8, 16, 32, 64)]
        fsm_ge = {c.fsm_gate_equivalents for c in costs}
        assert len(fsm_ge) == 1

    def test_counter_and_shifter_scale_with_k(self):
        small, large = decoder_cost(8), decoder_cost(32)
        assert large.counter_flops > small.counter_flops
        assert large.shifter_flops > small.shifter_flops

    def test_decoder_is_small(self):
        # Order tens of gate equivalents, consistent with the paper's
        # Design Compiler figure for the FSM.
        cost = decoder_cost(8)
        assert cost.fsm_gate_equivalents < 150
        assert cost.total_flops < 30

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            decoder_cost(7)
