"""Unit tests for repro.testdata.testset."""

import numpy as np
import pytest

from repro.core import TernaryVector
from repro.testdata import TestSet


def small_set():
    return TestSet.from_strings(["01X0", "1X10", "XXXX"], name="demo")


class TestConstruction:
    def test_from_strings(self):
        ts = small_set()
        assert ts.num_patterns == 3
        assert ts.num_cells == 4
        assert ts.total_bits == 12

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            TestSet.from_strings(["01", "011"])

    def test_from_matrix(self):
        matrix = np.array([[0, 1], [2, 0]], dtype=np.uint8)
        ts = TestSet.from_matrix(matrix)
        assert ts[0].to_string() == "01"
        assert ts[1].to_string() == "X0"

    def test_from_matrix_requires_2d(self):
        with pytest.raises(ValueError):
            TestSet.from_matrix(np.zeros(4, dtype=np.uint8))

    def test_from_stream(self):
        ts = TestSet.from_stream(TernaryVector("01X010"), 3)
        assert ts.num_patterns == 2
        assert ts[1].to_string() == "010"

    def test_from_stream_bad_length(self):
        with pytest.raises(ValueError):
            TestSet.from_stream(TernaryVector("01X01"), 3)

    def test_from_stream_bad_cells(self):
        with pytest.raises(ValueError):
            TestSet.from_stream(TernaryVector("01"), 0)

    def test_empty(self):
        ts = TestSet([])
        assert ts.num_patterns == 0
        assert ts.num_cells == 0
        assert ts.x_density == 0.0


class TestProperties:
    def test_x_stats(self):
        ts = small_set()
        assert ts.num_x == 6
        assert ts.x_density == pytest.approx(0.5)

    def test_stream_roundtrip(self):
        ts = small_set()
        back = TestSet.from_stream(ts.to_stream(), ts.num_cells)
        assert back == ts

    def test_to_matrix_is_copy(self):
        ts = small_set()
        m = ts.to_matrix()
        m[0, 0] = 1
        assert ts[0][0] == 0

    def test_repr(self):
        assert "demo" in repr(small_set())


class TestTransforms:
    def test_filled(self):
        ts = small_set().filled(0)
        assert ts[2].to_string() == "0000"
        assert ts[0].to_string() == "0100"

    def test_map_patterns(self):
        ts = small_set().map_patterns(lambda p: p.filled(1))
        assert ts[2].to_string() == "1111"
        assert ts.name == "demo"

    def test_covers(self):
        cubes = small_set()
        filled = cubes.filled(0)
        assert filled.covers(cubes)
        assert not cubes.filled(1).covers(cubes.filled(0))

    def test_covers_length_mismatch(self):
        assert not small_set().covers(TestSet.from_strings(["01X0"]))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        ts = small_set()
        path = tmp_path / "demo.test"
        ts.save(path)
        back = TestSet.load(path)
        assert back == ts
        assert back.name == "demo"

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.test"
        path.write_text("# repro test set: cells=2 patterns=1 name=x\n\n01\n\n")
        ts = TestSet.load(path)
        assert ts.num_patterns == 1
        assert ts.name == "x"
