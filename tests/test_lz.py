"""Unit + property tests for the LZ77/LZW baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import LZ77Code, LZWCode, roundtrip_ok
from repro.core import TernaryVector

from .conftest import ternary_vectors

specified = st.lists(st.sampled_from([0, 1]), min_size=1, max_size=128) \
    .map(TernaryVector)


class TestLZ77:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LZ77Code(window=3)
        with pytest.raises(ValueError):
            LZ77Code(lookahead=1)

    def test_repetitive_data_compresses(self):
        data = TernaryVector("10110100" * 64)
        code = LZ77Code(window=128, lookahead=32)
        assert code.compression_ratio(data) > 45.0

    def test_incompressible_short_data_expands_gracefully(self):
        data = TernaryVector("01")
        out = LZ77Code().compress(data)
        assert LZ77Code().decompress(out) == data

    def test_overlapping_match(self):
        # "0000000..." encodes via self-overlapping references.
        data = TernaryVector("1" + "0" * 60)
        code = LZ77Code(window=16, lookahead=16)
        assert code.decompress(code.compress(data)) == data

    @given(specified)
    @settings(max_examples=60, deadline=None)
    def test_exact_roundtrip(self, data):
        code = LZ77Code(window=32, lookahead=8)
        assert code.decompress(code.compress(data)) == data

    @given(ternary_vectors(max_size=96))
    @settings(max_examples=40, deadline=None)
    def test_covering_roundtrip(self, data):
        assert roundtrip_ok(LZ77Code(window=32, lookahead=8), data)


class TestLZW:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LZWCode(code_bits=1)

    def test_repetitive_data_compresses(self):
        data = TernaryVector("1100" * 256)
        assert LZWCode(code_bits=6).compression_ratio(data) > 30.0

    def test_kwkwk_case(self):
        # "aba aba ab..." style input exercises code == len(entries).
        data = TernaryVector("0" * 3 + "01" * 8)
        code = LZWCode(code_bits=6)
        assert code.decompress(code.compress(data)) == data

    def test_dictionary_cap_respected(self):
        data = TernaryVector("0110" * 200)
        code = LZWCode(code_bits=4)  # tiny dictionary, must still be exact
        assert code.decompress(code.compress(data)) == data

    @given(specified)
    @settings(max_examples=60, deadline=None)
    def test_exact_roundtrip(self, data):
        code = LZWCode(code_bits=8)
        assert code.decompress(code.compress(data)) == data

    @given(ternary_vectors(max_size=96))
    @settings(max_examples=40, deadline=None)
    def test_covering_roundtrip(self, data):
        assert roundtrip_ok(LZWCode(code_bits=8), data)


class TestAgainstNineC:
    def test_specialized_code_beats_lz_on_cubes(self):
        """The reason the DFT field built dedicated codes."""
        from repro.codes import NineCCode
        from repro.testdata import load_benchmark

        stream = load_benchmark("s5378", fraction=0.2).to_stream()
        ninec = NineCCode(8).compression_ratio(stream)
        lzw = LZWCode(code_bits=10).compression_ratio(stream)
        assert ninec > lzw
