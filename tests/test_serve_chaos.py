"""Chaos suite: fault-injection campaigns against the service invariants.

Every test drives :func:`repro.serve.chaos.run_chaos_campaign` (or the
TCP transport directly) through a fault plan and asserts the report's
``violations`` list is empty: no lost requests, no silent corruption,
typed errors only, breaker transitions as specified.
"""

from __future__ import annotations

import asyncio

from repro.robust.channel import BitFlipChannel, BurstErrorChannel
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    Client,
    CompressionService,
    RetryPolicy,
    ServeServer,
    ServiceConfig,
    ServiceFault,
    TCPClient,
    run_chaos_campaign,
)

DATA = ("00000000" + "11111111" + "0110X01X" + "0000X0X0") * 3


def run(coroutine):
    return asyncio.run(coroutine)


def chaos_config(**overrides) -> ServiceConfig:
    overrides.setdefault("executor", "inline")
    overrides.setdefault("enable_obs", False)
    overrides.setdefault("allow_chaos", True)
    # campaigns fire their whole request burst concurrently; keep the
    # admission queue wide so only overload tests exercise shedding
    overrides.setdefault("max_inflight", 16)
    overrides.setdefault("max_queue", 64)
    overrides.setdefault(
        "retry", RetryPolicy(max_attempts=3, base_s=0.0, jitter=0.0))
    return ServiceConfig(**overrides)


async def with_service(config, action):
    service = CompressionService(config)
    await service.start()
    try:
        return await action(service)
    finally:
        await service.close()


class TestCleanCampaign:
    def test_no_faults_no_violations(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=20, data=DATA)
            assert report.passed, report.violations
            assert report.ok == 20
            assert report.degraded == 0
            return report

        report = run(with_service(chaos_config(), scenario))
        assert "PASS" in report.summary()


class TestServiceFaults:
    def test_synthetic_worker_failures_absorbed_or_typed(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=30, data=DATA,
                faults=[ServiceFault(kind="fail", times=4)])
            assert report.passed, report.violations
            # retries (3 attempts per request) absorb the 4 failures
            assert report.ok == 30
            assert service.totals["retries"] >= 2

        run(with_service(chaos_config(), scenario))

    def test_latency_fault_terminates_within_deadline(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=10, data=DATA,
                faults=[ServiceFault(kind="latency", seconds=0.4,
                                     times=2)],
                request_deadline_ms=150.0,
                deadline_s=20.0)
            assert report.passed, report.violations
            # the slow requests died as typed deadline errors, not hangs
            assert report.ok + sum(report.errors_by_code.values()) == 10
            if report.errors_by_code:
                assert set(report.errors_by_code) <= {"deadline_exceeded"}

        run(with_service(chaos_config(), scenario))

    def test_fastpath_corruption_is_flagged_never_silent(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=20, data=DATA,
                faults=[ServiceFault(kind="corrupt_fast",
                                     op="decompress", times=3)])
            assert report.passed, report.violations
            # each corruption tripped the differential contract: the
            # response was flagged degraded, and every payload stayed
            # correct because the reference result is what got served
            assert report.degraded >= 1

        run(with_service(chaos_config(differential_every=1), scenario))

    def test_real_worker_kill_under_process_pool(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=12, data=DATA,
                faults=[ServiceFault(kind="worker_crash", times=1)],
                request_deadline_ms=60_000.0,
                deadline_s=120.0)
            assert report.passed, report.violations
            assert service.totals["worker_crashes"] >= 1

        run(with_service(
            chaos_config(executor="process", workers=1), scenario))


class TestChannelFaults:
    def test_bitflip_channel_no_silent_service_corruption(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=40, data=DATA,
                channel=BitFlipChannel(rate=0.05, seed=7),
                corrupt_every=2)
            assert report.passed, report.violations
            # corrupted streams must surface as typed stream errors or
            # (rarely) decode clean-but-wrong — counted, not hidden
            assert report.ok + sum(report.errors_by_code.values()) == 40
            return report

        report = run(with_service(chaos_config(), scenario))
        if report.errors_by_code:
            assert set(report.errors_by_code) <= {"bad_request"}

    def test_burst_channel_campaign_terminates(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=24, data=DATA,
                channel=BurstErrorChannel(rate=0.02, burst_length=5,
                                          seed=11),
                corrupt_every=3,
                deadline_s=30.0)
            assert report.passed, report.violations

        run(with_service(chaos_config(), scenario))

    def test_composed_service_and_channel_faults(self):
        async def scenario(service):
            report = await run_chaos_campaign(
                service, requests=30, data=DATA,
                faults=[ServiceFault(kind="fail", times=2),
                        ServiceFault(kind="corrupt_fast",
                                     op="decompress", times=2)],
                channel=BitFlipChannel(rate=0.03, seed=3),
                corrupt_every=4)
            assert report.passed, report.violations

        run(with_service(chaos_config(differential_every=1), scenario))


class TestBreakerDiscipline:
    def test_breaker_opens_half_opens_closes_under_fault_burst(self):
        async def scenario(service):
            client = Client(service)
            # exactly enough consecutive failures to trip the breaker;
            # once open, no worker is touched, so nothing else is armed
            service.fault_plan.arm(ServiceFault(kind="fail", times=3))
            for _ in range(6):
                response = await client.call(
                    "compress", {"data": DATA, "k": 8})
                assert response["ok"] is False
            breaker = service.breakers.breaker(("compress", 8))
            assert breaker.state == OPEN
            # while open: fast-fail with a typed, retryable error
            response = await client.call("compress", {"data": DATA, "k": 8})
            assert response["error"]["code"] == "circuit_open"
            assert response["error"]["retryable"] is True
            # recovery window elapses -> half-open probe -> closed
            await asyncio.sleep(0.12)
            assert breaker.state == HALF_OPEN
            response = await client.call("compress", {"data": DATA, "k": 8})
            assert response["ok"], response
            assert breaker.state == CLOSED
            states = [(a, b) for _, a, b in breaker.transitions]
            assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                              (HALF_OPEN, CLOSED)]

        run(with_service(
            chaos_config(
                retry=RetryPolicy(max_attempts=1, base_s=0.0),
                breaker_failure_threshold=3,
                breaker_recovery_s=0.1,
                max_batch=1),
            scenario))

    def test_failed_probe_reopens_breaker(self):
        async def scenario(service):
            client = Client(service)
            service.fault_plan.arm(ServiceFault(kind="fail", times=4))
            for _ in range(3):
                await client.call("compress", {"data": DATA, "k": 8})
            breaker = service.breakers.breaker(("compress", 8))
            assert breaker.state == OPEN
            await asyncio.sleep(0.12)
            # the probe consumes the 4th armed failure and reopens
            response = await client.call("compress", {"data": DATA, "k": 8})
            assert response["ok"] is False
            assert breaker.state == OPEN
            states = [(a, b) for _, a, b in breaker.transitions]
            assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                              (HALF_OPEN, OPEN)]

        run(with_service(
            chaos_config(
                retry=RetryPolicy(max_attempts=1, base_s=0.0),
                breaker_failure_threshold=3,
                breaker_recovery_s=0.1,
                max_batch=1),
            scenario))


class TestMalformedFramesOverTCP:
    def test_garbage_frames_get_typed_errors_and_service_survives(self):
        async def scenario():
            service = CompressionService(chaos_config())
            server = await ServeServer(service, port=0).start()
            client = TCPClient(port=server.port)
            try:
                for garbage in (b"\x00\x01\x02 garbage\n",
                                b"[1,2,3]\n",
                                b'{"op": "rm -rf"}\n',
                                b'{"op": "compress", "params": 5}\n'):
                    response = await client.send_raw(garbage)
                    assert response["ok"] is False
                    assert response["error"]["code"] == "malformed_frame"
                # the connection and service still work afterwards
                response = await client.call(
                    "compress", {"data": DATA, "k": 8})
                assert response["ok"]
            finally:
                await client.close()
                await server.close()

        run(scenario())


class TestOverloadChaos:
    def test_flood_sheds_explicitly_and_recovers(self):
        async def scenario(service):
            client = Client(service)
            service.fault_plan.arm(
                ServiceFault(kind="latency", seconds=0.2, times=2))
            responses = await asyncio.gather(*[
                client.call("compress", {"data": DATA, "k": 8},
                            deadline_ms=5_000)
                for _ in range(12)
            ])
            codes = [r["error"]["code"] for r in responses if not r["ok"]]
            # every non-ok outcome is an explicit, typed shed
            assert all(code == "overloaded" for code in codes)
            assert codes, "expected the flood to shed something"
            assert service.totals["shed"] == len(codes)
            # after the burst the service accepts work again
            response = await client.call("compress", {"data": DATA, "k": 8})
            assert response["ok"]

        run(with_service(
            chaos_config(max_inflight=1, max_queue=2, max_batch=1),
            scenario))
