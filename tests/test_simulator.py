"""Unit tests for the three simulation engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Gate,
    GateType,
    Injection,
    Netlist,
    PackedSimulator,
    eval_gate3,
    eval_gate3_vec,
    load_circuit,
    output_values,
    simulate,
    simulate_patterns,
)
from repro.core import TernaryVector

ALL_EVAL_TYPES = [
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
]


class TestEvalGate3:
    @pytest.mark.parametrize("gt,values,expected", [
        (GateType.AND, [1, 1], 1),
        (GateType.AND, [1, 0], 0),
        (GateType.AND, [0, 2], 0),     # controlling beats X
        (GateType.AND, [1, 2], 2),
        (GateType.NAND, [1, 1], 0),
        (GateType.NAND, [0, 2], 1),
        (GateType.OR, [0, 0], 0),
        (GateType.OR, [1, 2], 1),
        (GateType.OR, [0, 2], 2),
        (GateType.NOR, [1, 2], 0),
        (GateType.XOR, [1, 0], 1),
        (GateType.XOR, [1, 2], 2),
        (GateType.XNOR, [1, 1], 1),
        (GateType.NOT, [2], 2),
        (GateType.NOT, [0], 1),
        (GateType.BUF, [1], 1),
        (GateType.DFF, [0], 0),
    ])
    def test_truth_table(self, gt, values, expected):
        assert eval_gate3(gt, values) == expected

    def test_input_not_evaluable(self):
        with pytest.raises(ValueError):
            eval_gate3(GateType.INPUT, [])

    @pytest.mark.parametrize("gt", ALL_EVAL_TYPES)
    @given(values=st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_scalar_matches_vector(self, gt, values):
        if gt in (GateType.NOT, GateType.BUF):
            values = values[:1]
        columns = np.array([[v] for v in values], dtype=np.uint8)
        assert eval_gate3_vec(gt, columns)[0] == eval_gate3(gt, values)

    @pytest.mark.parametrize("gt", ALL_EVAL_TYPES)
    @given(values=st.lists(st.sampled_from([0, 1]), min_size=2, max_size=4))
    @settings(max_examples=30)
    def test_x_monotone(self, gt, values):
        # Replacing a specified input with X can only move the output to X.
        if gt in (GateType.NOT, GateType.BUF):
            values = values[:1]
        base = eval_gate3(gt, values)
        for i in range(len(values)):
            relaxed = list(values)
            relaxed[i] = 2
            out = eval_gate3(gt, relaxed)
            assert out in (base, 2)


def mux_netlist():
    """y = s ? b : a, plus a DFF on y."""
    return Netlist(
        "mux", ["a", "b", "s"], ["y"],
        [
            Gate("ns", GateType.NOT, ("s",)),
            Gate("t0", GateType.AND, ("a", "ns")),
            Gate("t1", GateType.AND, ("b", "s")),
            Gate("y", GateType.OR, ("t0", "t1")),
            Gate("ff", GateType.DFF, ("y",)),
        ],
    )


class TestSimulate:
    def test_mux_truth(self):
        n = mux_netlist()
        # pattern layout: a, b, s, ff
        for a in (0, 1):
            for b in (0, 1):
                for s in (0, 1):
                    values = simulate(n, TernaryVector([a, b, s, 0]))
                    assert values["y"] == (b if s else a)

    def test_x_propagation(self):
        n = mux_netlist()
        values = simulate(n, TernaryVector("XX0X"))
        assert values["y"] == 2
        values = simulate(n, TernaryVector("1X0X"))
        assert values["y"] == 1  # select=0 passes a=1 regardless of b

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            simulate(mux_netlist(), TernaryVector("01"))

    def test_stem_injection(self):
        n = mux_netlist()
        values = simulate(n, TernaryVector("1100"),
                          Injection("t0", 0))
        assert values["t0"] == 0
        assert values["y"] == 0

    def test_pin_injection_affects_one_gate(self):
        n = mux_netlist()
        # force pin 0 of y (=t0) to 0; t0 itself stays 1
        values = simulate(n, TernaryVector("1000"),
                          Injection("y", 0, pin=0))
        assert values["t0"] == 1
        assert values["y"] == 0

    def test_input_stem_injection(self):
        n = mux_netlist()
        values = simulate(n, TernaryVector("1000"), Injection("a", 0))
        assert values["y"] == 0

    def test_output_values(self):
        n = mux_netlist()
        values = simulate(n, TernaryVector("1100"))
        out = output_values(n, values)
        # scan outputs: y (PO), y (ff data) -> "11"
        assert out.to_string() == "11"


class TestSimulatePatterns:
    def test_matches_scalar(self):
        n = load_circuit("s27")
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 3, size=(32, n.scan_length)).astype(np.uint8)
        vec_values = simulate_patterns(n, matrix)
        for p in range(matrix.shape[0]):
            scalar = simulate(n, TernaryVector(matrix[p]))
            for net, arr in vec_values.items():
                assert int(arr[p]) == scalar[net], (p, net)

    def test_matches_scalar_with_injection(self):
        n = load_circuit("s27")
        rng = np.random.default_rng(4)
        matrix = rng.integers(0, 3, size=(16, n.scan_length)).astype(np.uint8)
        injection = Injection("G11", 1)
        vec_values = simulate_patterns(n, matrix, injection)
        for p in range(matrix.shape[0]):
            scalar = simulate(n, TernaryVector(matrix[p]), injection)
            for net, arr in vec_values.items():
                assert int(arr[p]) == scalar[net], (p, net)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            simulate_patterns(load_circuit("s27"),
                              np.zeros((4, 3), dtype=np.uint8))


class TestPackedSimulator:
    def test_matches_scalar(self):
        n = load_circuit("c17")
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 2, size=(40, n.scan_length)).astype(np.uint8)
        packed = PackedSimulator(n).run(matrix)
        for p in range(matrix.shape[0]):
            scalar = simulate(n, TernaryVector(matrix[p]))
            for net, word in packed.items():
                assert (word >> p) & 1 == scalar[net], (p, net)

    def test_matches_scalar_with_injections(self):
        n = load_circuit("c17")
        rng = np.random.default_rng(6)
        matrix = rng.integers(0, 2, size=(20, n.scan_length)).astype(np.uint8)
        for injection in (Injection("N10", 1), Injection("N22", 0, pin=1),
                          Injection("N1", 1)):
            packed = PackedSimulator(n).run(matrix, injection)
            for p in range(matrix.shape[0]):
                scalar = simulate(n, TernaryVector(matrix[p]), injection)
                for net, word in packed.items():
                    assert (word >> p) & 1 == scalar[net], (p, net, injection)

    def test_rejects_x(self):
        with pytest.raises(ValueError):
            PackedSimulator.pack(np.array([[0, 2]], dtype=np.uint8))
