"""Unit tests for repro.core.metrics."""

import pytest

from repro.core import (
    BlockCase,
    NineCEncoder,
    TernaryVector,
    analytic_compressed_size,
    analytic_compression_ratio,
    best_block_size,
    report,
    sweep_block_sizes,
)


def sample_data():
    return TernaryVector(
        "00000000" "11111111" "0000X01X" "01XX10XX" "0X0X11X1" * 4
    )


class TestReport:
    def test_report_from_encoding(self):
        enc = NineCEncoder(8).encode(sample_data())
        rep = report(enc)
        assert rep.k == 8
        assert rep.original_size == len(sample_data())
        assert rep.compressed_size == enc.compressed_size
        assert rep.compression_ratio == pytest.approx(enc.compression_ratio)
        assert sum(rep.case_counts.values()) == len(enc.blocks)

    def test_report_from_measurement(self):
        meas = NineCEncoder(8).measure(sample_data())
        rep = report(meas)
        assert rep.compressed_size == meas.compressed_size
        assert rep.leftover_x == meas.leftover_x

    def test_codeword_statistics_keys(self):
        rep = report(NineCEncoder(8).measure(sample_data()))
        assert set(rep.codeword_statistics) == {f"N{i}" for i in range(1, 10)}


class TestAnalytic:
    def test_size_by_hand(self):
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C1] = 3
        counts[BlockCase.C5] = 2
        counts[BlockCase.C9] = 1
        # K=8: 3*1 + 2*(5+4) + 1*(4+8) = 33
        assert analytic_compressed_size(counts, 8) == 33

    def test_ratio_by_hand(self):
        counts = {case: 0 for case in BlockCase}
        counts[BlockCase.C1] = 8
        # 8 K=8 blocks of zeros from 64 bits -> TE=8
        assert analytic_compression_ratio(counts, 64, 8) == pytest.approx(87.5)

    def test_ratio_empty(self):
        assert analytic_compression_ratio({}, 0, 8) == 0.0


class TestSweep:
    def test_sweep_keys(self):
        out = sweep_block_sizes(sample_data(), (4, 8, 16))
        assert set(out) == {4, 8, 16}
        for k, rep in out.items():
            assert rep.k == k

    def test_best_block_size(self):
        data = sample_data()
        ks = (4, 8, 16)
        best = best_block_size(data, ks)
        out = sweep_block_sizes(data, ks)
        assert out[best].compression_ratio == max(
            r.compression_ratio for r in out.values()
        )
