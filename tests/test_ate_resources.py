"""Unit tests for ATE resource modeling."""

import pytest

from repro.analysis import (
    ATEConfig,
    parallel_resources,
    single_pin_resources,
)
from repro.core import NineCEncoder, TernaryVector
from repro.testdata import load_benchmark


def make_encoding(bits=None):
    data = bits if bits is not None else TernaryVector("00000000" * 32)
    return NineCEncoder(8).encode(data)


class TestATEConfig:
    def test_defaults(self):
        config = ATEConfig()
        assert config.num_channels == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ATEConfig(vector_memory_bits_per_channel=0)
        with pytest.raises(ValueError):
            ATEConfig(num_channels=0)


class TestSinglePin:
    def test_memory_saving_equals_cr(self):
        encoding = make_encoding()
        report = single_pin_resources(encoding)
        assert report.memory_saving_percent == pytest.approx(
            encoding.compression_ratio
        )
        assert report.channels_used == 1

    def test_bandwidth_amplification(self):
        encoding = make_encoding()
        report = single_pin_resources(encoding)
        # 256 scan bits from 32 compressed bits -> 8x amplification
        assert report.bandwidth_amplification == pytest.approx(
            encoding.original_length / encoding.compressed_size
        )
        assert report.bandwidth_amplification > 1.0

    def test_fits_small_tester(self):
        encoding = make_encoding()
        report = single_pin_resources(encoding)
        assert report.fits(ATEConfig())
        tiny = ATEConfig(vector_memory_bits_per_channel=4, num_channels=1)
        assert not report.fits(tiny)

    def test_benchmark_fits_after_compression_only(self):
        stream = load_benchmark("s38584").to_stream()
        encoding = NineCEncoder(8).encode(stream)
        report = single_pin_resources(encoding)
        small = ATEConfig(vector_memory_bits_per_channel=100_000)
        # 199k raw bits would not fit one 100k channel; compressed does.
        assert encoding.original_length > 100_000
        assert report.fits(small)


class TestParallel:
    def test_aggregates_groups(self):
        groups = [make_encoding(TernaryVector("00000000" * 16)),
                  make_encoding(TernaryVector("01100110" * 16))]
        report = parallel_resources(groups)
        assert report.channels_used == 2
        assert report.compressed_bits == sum(g.compressed_size
                                             for g in groups)
        assert report.memory_per_channel_bits == max(
            g.compressed_size for g in groups
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_resources([])

    def test_slowest_group_sets_time(self):
        fast = make_encoding(TernaryVector("00000000" * 16))
        slow = make_encoding(TernaryVector("01100110" * 16))
        report = parallel_resources([fast, slow])
        assert report.ate_cycles == slow.compressed_size

    def test_zero_division_guards(self):
        from repro.analysis import ResourceReport

        empty = ResourceReport(0, 0, 1, 0, 0, 0.0)
        assert empty.memory_saving_percent == 0.0
        assert empty.bandwidth_amplification == 0.0
