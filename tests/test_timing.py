"""Unit tests for cross-code timing models."""

import pytest

from repro.analysis import compressed_time_ate_cycles
from repro.codes import FDRCode, GolombCode, NineCCode, VIHCCode
from repro.codes.timing import timing_report
from repro.core import NineCEncoder, TernaryVector
from repro.testdata import load_benchmark


class TestNineCTiming:
    def test_matches_section3c_model(self):
        """The generic two-domain model reduces to the paper's terms."""
        stream = load_benchmark("s5378", fraction=0.3).to_stream()
        for p in (2, 4, 8):
            report = timing_report(NineCCode(8), stream, p=p)
            encoding = NineCEncoder(8).measure(stream)
            paper = compressed_time_ate_cycles(encoding.case_counts, 8, p)
            # exact up to the final padded block (< K/p cycles)
            assert report.t_comp_ate_cycles == pytest.approx(
                paper, abs=8 / p + 1e-9
            )

    def test_tat_limits(self):
        stream = load_benchmark("s9234", fraction=0.3).to_stream()
        report_small = timing_report(NineCCode(8), stream, p=1)
        report_big = timing_report(NineCCode(8), stream, p=1000)
        assert report_small.tat_percent < report_big.tat_percent
        assert report_big.tat_percent == pytest.approx(
            report_big.compression_ratio, abs=0.5
        )


class TestRunLengthTiming:
    def test_everything_generated_on_chip(self):
        stream = TernaryVector("0001" * 32)
        for code in (FDRCode(), GolombCode(4), VIHCCode(8)):
            report = timing_report(code, stream, p=8)
            assert report.forwarded_bits == 0
            assert report.t_comp_ate_cycles == pytest.approx(
                report.compressed_bits + len(stream) / 8
            )

    def test_tat_bounded_by_cr(self):
        stream = load_benchmark("s5378", fraction=0.3).to_stream()
        for code in (FDRCode(), GolombCode(4), VIHCCode(8), NineCCode(8)):
            for p in (2, 8, 64):
                report = timing_report(code, stream, p=p)
                assert report.tat_percent <= report.compression_ratio + 1e-9


class TestValidation:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            timing_report(FDRCode(), TernaryVector("01"), p=0)

    def test_empty_stream(self):
        report = timing_report(FDRCode(), TernaryVector(""), p=8)
        assert report.tat_percent == 0.0


class TestCrossCodeComparison:
    def test_ninec_beats_fdr_on_time_too(self):
        """9C's CR advantage carries into test time at realistic p."""
        stream = load_benchmark("s5378").to_stream()
        ninec = timing_report(NineCCode(8), stream, p=8)
        fdr = timing_report(FDRCode(), stream, p=8)
        assert ninec.tat_percent > fdr.tat_percent
