"""Unit tests for the coding-efficiency analysis."""

import math

import pytest

from repro.analysis import (
    case_entropy_bits,
    coding_efficiency,
    huffman_optimal_bits,
)
from repro.core import BlockCase, Codebook, NineCEncoder, TernaryVector
from repro.core.frequency import assign_lengths_by_frequency
from repro.testdata import load_benchmark


def counts(**kwargs):
    out = {case: 0 for case in BlockCase}
    for name, value in kwargs.items():
        out[BlockCase[name]] = value
    return out


class TestEntropy:
    def test_empty(self):
        assert case_entropy_bits(counts()) == 0.0

    def test_single_case_zero_entropy(self):
        assert case_entropy_bits(counts(C1=100)) == 0.0

    def test_uniform_two_cases(self):
        assert case_entropy_bits(counts(C1=50, C2=50)) == pytest.approx(1.0)

    def test_uniform_nine_cases(self):
        uniform = {case: 7 for case in BlockCase}
        assert case_entropy_bits(uniform) == pytest.approx(math.log2(9))


class TestHuffmanBound:
    def test_single_case(self):
        assert huffman_optimal_bits(counts(C1=10)) == 10

    def test_skewed(self):
        # optimal lengths 1/2/2 -> 8*1 + 4*2 + 4*2 = 24
        assert huffman_optimal_bits(counts(C1=8, C2=4, C9=4)) == 24

    def test_never_below_entropy(self):
        c = counts(C1=100, C2=30, C5=11, C9=3)
        total = sum(c.values())
        assert huffman_optimal_bits(c) >= \
            case_entropy_bits(c) * total - 1e-9


class TestCodingEfficiency:
    def test_efficiency_bounds(self):
        stream = load_benchmark("s5378").to_stream()
        report = coding_efficiency(stream, 8)
        assert 0.0 < report.efficiency_vs_entropy <= \
            report.efficiency_vs_huffman <= 1.0 + 1e-9

    def test_paper_claim_high_efficiency(self):
        # Table VI's "indicates the coding efficiency": the fixed lengths
        # are close to the per-circuit optimum on conforming data.
        for name in ("s5378", "s13207", "s38584"):
            stream = load_benchmark(name).to_stream()
            report = coding_efficiency(stream, 8)
            assert report.efficiency_vs_huffman > 0.85, name

    def test_reassigned_codebook_not_worse(self):
        stream = load_benchmark("s9234").to_stream()
        base = coding_efficiency(stream, 8)
        lengths = assign_lengths_by_frequency(
            NineCEncoder(8).measure(stream).case_counts
        )
        tuned = coding_efficiency(stream, 8, Codebook.from_lengths(lengths))
        assert tuned.actual_codeword_bits <= base.actual_codeword_bits

    def test_payload_accounts_for_rest(self):
        data = TernaryVector("0000X01X" * 10)
        report = coding_efficiency(data, 8)
        measurement = NineCEncoder(8).measure(data)
        assert report.actual_codeword_bits + report.payload_bits == \
            measurement.compressed_size

    def test_degenerate_uniform_data(self):
        report = coding_efficiency(TernaryVector.zeros(80), 8)
        assert report.entropy_bits_per_block == 0.0
        assert report.efficiency_vs_huffman == pytest.approx(1.0)
