"""Unit tests for run-length parsing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import TernaryVector
from repro.codes import maximal_runs, terminated_segments, zero_runs

bits = st.lists(st.sampled_from([0, 1]), max_size=64).map(TernaryVector)


class TestZeroRuns:
    def test_simple(self):
        runs, open_end = zero_runs(TernaryVector("0010001"))
        assert runs == [2, 3]
        assert open_end is False

    def test_trailing_zeros(self):
        runs, open_end = zero_runs(TernaryVector("00100"))
        assert runs == [2, 2]
        assert open_end is True

    def test_leading_one(self):
        runs, _ = zero_runs(TernaryVector("101"))
        assert runs == [0, 1]

    def test_all_zeros(self):
        assert zero_runs(TernaryVector("0000")) == ([4], True)

    def test_all_ones(self):
        assert zero_runs(TernaryVector("111")) == ([0, 0, 0], False)

    def test_empty(self):
        assert zero_runs(TernaryVector("")) == ([], False)

    def test_rejects_x(self):
        with pytest.raises(ValueError):
            zero_runs(TernaryVector("0X1"))

    @given(bits)
    def test_reconstruction(self, data):
        runs, open_end = zero_runs(data)
        parts = []
        for i, run in enumerate(runs):
            parts.append("0" * run)
            if not (open_end and i == len(runs) - 1):
                parts.append("1")
        assert "".join(parts) == data.to_string()


class TestMaximalRuns:
    def test_simple(self):
        assert maximal_runs(TernaryVector("0011101")) == [
            (0, 2), (1, 3), (0, 1), (1, 1),
        ]

    def test_single_run(self):
        assert maximal_runs(TernaryVector("1111")) == [(1, 4)]

    def test_empty(self):
        assert maximal_runs(TernaryVector("")) == []

    def test_rejects_x(self):
        with pytest.raises(ValueError):
            maximal_runs(TernaryVector("0X"))

    @given(bits)
    def test_reconstruction(self, data):
        runs = maximal_runs(data)
        assert "".join(str(s) * n for s, n in runs) == data.to_string()

    @given(bits)
    def test_runs_alternate(self, data):
        runs = maximal_runs(data)
        for (a, _), (b, _) in zip(runs, runs[1:]):
            assert a != b


class TestTerminatedSegments:
    def test_simple(self):
        # "0001100": 0^3 closed by the first 1; then 1^1 closed by a 0;
        # the final 0 is an open run.
        segments, open_end = terminated_segments(TernaryVector("0001100"))
        assert segments == [(0, 3), (1, 1), (0, 1)]
        assert open_end is True

    def test_closed_end(self):
        segments, open_end = terminated_segments(TernaryVector("00011"))
        # 0^3 then 1 consumed as terminator; then 1^1 open
        assert segments == [(0, 3), (1, 1)]
        assert open_end is True

    def test_exact_termination(self):
        segments, open_end = terminated_segments(TernaryVector("0001"))
        assert segments == [(0, 3)]
        assert open_end is False

    def test_empty(self):
        assert terminated_segments(TernaryVector("")) == ([], False)

    def test_rejects_x(self):
        with pytest.raises(ValueError):
            terminated_segments(TernaryVector("X"))

    @given(bits)
    def test_reconstruction(self, data):
        segments, open_end = terminated_segments(data)
        parts = []
        for i, (symbol, run) in enumerate(segments):
            parts.append(str(symbol) * run)
            if not (open_end and i == len(segments) - 1):
                parts.append(str(1 - symbol))
        assert "".join(parts) == data.to_string()
