"""Cross-module property tests (whole-flow invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    analytic_compressed_size,
)
from repro.decompressor import SingleScanDecompressor
from repro.analysis import compressed_time_ate_cycles, trace_time_ate_cycles

from .conftest import even_block_sizes, ternary_vectors


class TestIdempotence:
    """9C is idempotent: re-encoding the decoded stream is a fixpoint.

    Decoding replaces X in uniform halves with the uniform value (halves
    stay uniform) and copies mismatch halves verbatim, so the second
    encoding chooses the same case for every block and emits the same
    stream up to the leftover X positions.
    """

    @given(ternary_vectors(max_size=120), even_block_sizes(max_k=16))
    @settings(max_examples=100)
    def test_case_sequence_fixpoint(self, data, k):
        first = NineCEncoder(k).encode(data)
        decoded = NineCDecoder(k).decode(first)
        second = NineCEncoder(k).encode(decoded)
        assert [r.case for r in first.blocks] == \
            [r.case for r in second.blocks]
        assert second.compressed_size == first.compressed_size

    @given(ternary_vectors(max_size=100), even_block_sizes(max_k=12))
    @settings(max_examples=60)
    def test_double_decode_stable(self, data, k):
        enc1 = NineCEncoder(k).encode(data)
        dec1 = NineCDecoder(k).decode(enc1)
        enc2 = NineCEncoder(k).encode(dec1)
        dec2 = NineCDecoder(k).decode(enc2)
        assert dec2 == dec1


class TestCompressionBounds:
    @given(ternary_vectors(min_size=1, max_size=200), even_block_sizes())
    @settings(max_examples=80)
    def test_worst_case_expansion_bounded(self, data, k):
        # Worst case is all-C9: (4 + K) bits per K-bit block.
        enc = NineCEncoder(k).measure(data)
        blocks = max(1, -(-len(data) // k))
        assert enc.compressed_size <= blocks * (4 + k)

    @given(ternary_vectors(min_size=1, max_size=200), even_block_sizes())
    @settings(max_examples=80)
    def test_best_case_floor(self, data, k):
        # At least one bit per block must be spent.
        enc = NineCEncoder(k).measure(data)
        blocks = max(1, -(-len(data) // k))
        assert enc.compressed_size >= blocks

    @given(ternary_vectors(min_size=1, max_size=160), even_block_sizes(max_k=16))
    @settings(max_examples=60)
    def test_leftover_never_exceeds_original_x(self, data, k):
        enc = NineCEncoder(k).measure(data)
        # padding can add X, all of which may survive in a final
        # mismatch block — bound by original X + one block of padding
        assert enc.leftover_x <= data.num_x + k

    @given(ternary_vectors(min_size=1, max_size=160))
    @settings(max_examples=60)
    def test_fully_specified_leftover_is_padding_only(self, data):
        specified = data.filled(0)
        enc = NineCEncoder(8).measure(specified)
        assert enc.leftover_x <= 8  # only the pad block can carry X


class TestMonotonicity:
    @given(ternary_vectors(min_size=8, max_size=120), even_block_sizes(max_k=12))
    @settings(max_examples=60)
    def test_specifying_bits_never_helps_cr(self, data, k):
        """Filling X (losing freedom) can only keep or worsen CR."""
        filled = data.filled(0)
        free = NineCEncoder(k).measure(data)
        constrained = NineCEncoder(k).measure(filled)
        assert constrained.compressed_size >= free.compressed_size - k


class TestArchitectureAgreement:
    # min_size=1: an empty test set has nothing to drive, so the
    # decompressor legitimately consumes zero cycles while the analytic
    # model still charges the all-X pad block.
    @given(ternary_vectors(min_size=1, max_size=96), even_block_sizes(max_k=12),
           st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_trace_matches_analytic_everywhere(self, data, k, p):
        encoding = NineCEncoder(k).encode(data)
        trace = SingleScanDecompressor(k, p=p).run_encoding(encoding)
        analytic = compressed_time_ate_cycles(encoding.case_counts, k, p)
        assert trace_time_ate_cycles(trace, p) == pytest.approx(analytic)
        assert trace.ate_cycles == encoding.compressed_size
        assert trace.ate_cycles == analytic_compressed_size(
            encoding.case_counts, k
        )
