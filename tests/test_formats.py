"""Unit tests for MinTest-style and STIL-lite interchange formats."""

import pytest

from repro.testdata import (
    TestSet,
    dumps_mintest,
    dumps_stil,
    load_mintest,
    load_stil,
    loads_mintest,
    loads_stil,
    save_mintest,
    save_stil,
)


def sample():
    return TestSet.from_strings(["01X0", "1X10", "XXXX"], name="demo")


class TestMinTestFormat:
    def test_roundtrip(self):
        ts = sample()
        assert loads_mintest(dumps_mintest(ts), name="demo") == ts

    def test_file_roundtrip(self, tmp_path):
        ts = sample()
        path = tmp_path / "demo.mintest"
        save_mintest(ts, path)
        back = load_mintest(path)
        assert back == ts
        assert back.name == "demo"

    def test_wrapped_cube_lines(self):
        text = "p1:\n01\nX0\np2:\n1X\n10\n"
        ts = loads_mintest(text)
        assert ts.num_patterns == 2
        assert ts[0].to_string() == "01X0"

    def test_comments_skipped(self):
        ts = loads_mintest("# header\np1:\n01X0\n")
        assert ts.num_patterns == 1

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            loads_mintest("p1:\nhello world\n")

    def test_lowercase_x_and_dash(self):
        ts = loads_mintest("p1:\n0x-1\n")
        assert ts[0].to_string() == "0XX1"


class TestStilFormat:
    def test_roundtrip(self):
        ts = sample()
        back = loads_stil(dumps_stil(ts))
        assert back == ts
        assert back.name == "demo"

    def test_file_roundtrip(self, tmp_path):
        ts = sample()
        path = tmp_path / "demo.stil"
        save_stil(ts, path)
        assert load_stil(path) == ts

    def test_x_rendered_as_n(self):
        text = dumps_stil(sample())
        assert "N" in text
        assert "X" not in text.split("Pattern")[1]

    def test_header_required(self):
        with pytest.raises(ValueError):
            loads_stil('Pattern "x" { V { "g" = 0101; } }')

    def test_no_vectors_rejected(self):
        with pytest.raises(ValueError):
            loads_stil("STIL 1.0;\n")

    def test_benchmark_roundtrip(self):
        from repro.testdata import load_benchmark

        ts = load_benchmark("s5378", fraction=0.1)
        assert loads_stil(dumps_stil(ts)) == ts
