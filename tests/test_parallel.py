"""Tests for repro.parallel: sharded encode/decode vs the oracle.

The headline assertion is the differential proof: for every tested
(target, K, workers) combination the sharded codec must be
*bit-identical* to the single-core oracle — streams, block records,
case counts, decoded output, diagnostics, and raised-error identity.
"""

import asyncio
import subprocess
import sys

import numpy as np
import pytest

from repro import obs
from repro.core.bitvec import TernaryVector
from repro.core.decoder import NineCDecoder
from repro.core.encoder import NineCEncoder
from repro.core.errors import StreamError
from repro.core.io import save_test_set_binary
from repro.obs import get_registry
from repro.parallel import (
    ShardedCodec,
    SharedUint8Array,
    differential_proof,
    parallel_decode,
    parallel_encode,
    parallel_encode_file,
    plan_shards,
)
from repro.parallel.proof import compare_case, load_target_stream
from repro.testdata.mintest import load_benchmark


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_balanced_within_one_block(self):
        shards = plan_shards(10, 3)
        assert [s.num_blocks for s in shards] == [4, 3, 3]

    def test_contiguous_and_complete(self):
        shards = plan_shards(17, 5)
        assert shards[0].block_start == 0
        assert shards[-1].block_stop == 17
        for prev, nxt in zip(shards, shards[1:]):
            assert prev.block_stop == nxt.block_start

    def test_fewer_blocks_than_workers(self):
        shards = plan_shards(2, 7)
        assert len(shards) == 2
        assert all(s.num_blocks == 1 for s in shards)

    def test_zero_blocks(self):
        assert plan_shards(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(4, 0)
        with pytest.raises(ValueError):
            plan_shards(-1, 2)


# ----------------------------------------------------------------------
# shared memory
# ----------------------------------------------------------------------
class TestSharedUint8Array:
    def test_roundtrip_through_attach(self):
        data = np.arange(32, dtype=np.uint8)
        with SharedUint8Array.from_array(data) as shared:
            other = SharedUint8Array.attach(shared.name, shared.size)
            window = other.view(8, 16).copy()
            other.close()
            assert np.array_equal(window, data[8:16])

    def test_zero_size_segment(self):
        with SharedUint8Array.create(0) as shared:
            assert shared.view().size == 0

    def test_view_bounds_checked(self):
        with SharedUint8Array.create(8) as shared:
            with pytest.raises(ValueError):
                shared.view(4, 12)

    def test_closed_rejects_views(self):
        shared = SharedUint8Array.create(8)
        shared.unlink()
        shared.close()
        with pytest.raises(ValueError):
            shared.view()


# ----------------------------------------------------------------------
# the differential proof (issue grid: workers x K x targets)
# ----------------------------------------------------------------------
class TestDifferentialProof:
    def test_full_grid_serial(self):
        # workers {1, 2, 3, 7} x K {4, 8, 16} on an ATPG circuit and a
        # benchmark-scale profile; error parity included
        report = differential_proof(
            targets=("s27", "s9234"), executor="serial"
        )
        assert len(report.cases) == 2 * 3 * 4
        assert report.ok, report.summary()

    def test_process_executor(self):
        data = load_target_stream("s9234")
        case = compare_case(
            data, 8, 2, executor="process", target="s9234",
            check_errors=False,
        )
        assert case.ok, case.failures

    def test_odd_sizes_and_padding(self):
        # lengths that exercise the pad block, a lone block, and a
        # non-multiple-of-K tail across uneven shard splits
        rng = np.random.default_rng(7)
        for bits in (0, 1, 7, 8, 9, 63, 64, 65):
            data = TernaryVector(
                rng.integers(0, 3, size=bits).astype(np.uint8)
            )
            for workers in (2, 3, 7):
                case = compare_case(
                    data, 8, workers, executor="serial",
                    target=f"rand{bits}", check_errors=False,
                )
                assert case.ok, (bits, workers, case.failures)

    def test_variable_length_codewords_defeat_bit_splits(self):
        # first half compresses to 1-bit C1 codewords, second half to
        # long mismatch codewords: any "split the stream at the bit
        # midpoint" sharding would land inside a codeword and desync
        rng = np.random.default_rng(3)
        skew = np.concatenate([
            np.zeros(512, dtype=np.uint8),
            rng.integers(0, 2, size=512).astype(np.uint8),
        ])
        data = TernaryVector(skew)
        for workers in (2, 3, 7):
            case = compare_case(
                data, 8, workers, executor="serial",
                target="skew", check_errors=True,
            )
            assert case.ok, (workers, case.failures)


class TestErrorParity:
    """Corrupt streams must fail identically at every worker count."""

    @pytest.fixture(scope="class")
    def encoding(self):
        return NineCEncoder(8).encode(load_target_stream("s27"))

    def test_same_typed_error_same_offset(self, encoding):
        corrupt = encoding.stream.data.copy()
        middle = encoding.blocks[len(encoding.blocks) // 2]
        corrupt[middle.stream_offset] = 2  # X inside a codeword
        stream = TernaryVector(corrupt)

        def caught(workers):
            codec = ShardedCodec(8, workers=workers, executor="serial")
            with pytest.raises(StreamError) as excinfo:
                codec.decode_stream(stream, encoding.original_length)
            return excinfo.value

        oracle = caught(1)
        for workers in (2, 3, 7):
            exc = caught(workers)
            assert type(exc) is type(oracle)
            assert str(exc) == str(oracle)
            assert exc.bit_offset == oracle.bit_offset
            assert exc.block_index == oracle.block_index

    def test_recover_diagnostics_parity(self, encoding):
        corrupt = encoding.stream.data.copy()
        middle = encoding.blocks[len(encoding.blocks) // 2]
        corrupt[middle.stream_offset] = 2
        stream = TernaryVector(corrupt)

        oracle = NineCDecoder(8)
        want = oracle.decode_stream(
            stream, encoding.original_length, recover=True
        )
        want_diag = oracle.last_diagnostics
        for workers in (2, 3):
            codec = ShardedCodec(8, workers=workers, executor="serial")
            got = codec.decode_stream(
                stream, encoding.original_length, recover=True
            )
            assert got == want
            diag = codec.last_diagnostics
            assert diag.blocks_decoded == want_diag.blocks_decoded
            assert diag.blocks_lost == want_diag.blocks_lost
            assert diag.first_error_offset == want_diag.first_error_offset


# ----------------------------------------------------------------------
# hinted decode: trusted-but-verified block offsets
# ----------------------------------------------------------------------
class TestHintedDecode:
    def test_hints_from_encoding_records(self):
        data = load_target_stream("s27")
        encoding = NineCEncoder(8).encode(data)
        want = NineCDecoder(8).decode(encoding)
        codec = ShardedCodec(8, workers=3, executor="serial")
        assert codec.decode(encoding) == want

    def test_misaligned_hint_falls_back_to_exact(self):
        # a hint offset landing inside a codeword makes that shard's
        # verification scan fail -> the decode must fall back to the
        # coordinator scan and still produce the oracle's output
        data = load_target_stream("s27")
        encoding = NineCEncoder(8).encode(data)
        want = NineCDecoder(8).decode_stream(
            encoding.stream, encoding.original_length
        )
        offsets = [r.stream_offset for r in encoding.blocks]
        bad = list(offsets)
        bad[len(bad) // 2] += 1  # now inside the previous codeword
        codec = ShardedCodec(8, workers=3, executor="serial")
        obs.reset()
        with obs.enabled_scope(True):
            got = codec.decode_stream(
                encoding.stream, encoding.original_length,
                block_offsets=bad,
            )
            fallbacks = get_registry().snapshot()["counters"].get(
                "parallel.decode.hint_fallbacks", 0
            )
        obs.reset()
        assert got == want
        assert fallbacks == 1

    def test_invalid_boundaries_fall_back(self):
        data = load_target_stream("s27")
        encoding = NineCEncoder(8).encode(data)
        want = NineCDecoder(8).decode_stream(
            encoding.stream, encoding.original_length
        )
        codec = ShardedCodec(8, workers=2, executor="serial")
        for bad in ([5, 1, 9], [1], [0, 10**9]):
            assert codec.decode_stream(
                encoding.stream, encoding.original_length,
                block_offsets=bad,
            ) == want

    def test_early_stop_semantics_match(self):
        # output_length shorter than the stream's coverage: the oracle
        # stops after ceil(output_length / K) blocks; hinted sharding
        # must decode exactly the same prefix
        data = load_target_stream("s27")
        encoding = NineCEncoder(8).encode(data)
        offsets = [r.stream_offset for r in encoding.blocks]
        oracle = NineCDecoder(8)
        codec = ShardedCodec(8, workers=3, executor="serial")
        for length in (1, 8, 9, 24, encoding.original_length):
            want = oracle.decode_stream(encoding.stream, length)
            got = codec.decode_stream(
                encoding.stream, length, block_offsets=offsets
            )
            assert got == want, length


# ----------------------------------------------------------------------
# memmap ingestion (bounded-RSS encode)
# ----------------------------------------------------------------------
class TestEncodeFile:
    def test_bit_identical_to_in_memory(self, tmp_path):
        test_set = load_benchmark("s9234")
        path = tmp_path / "s9234.9ct"
        save_test_set_binary(test_set, path)
        expected = NineCEncoder(8).encode(test_set.to_stream())
        for workers in (1, 2, 4):
            encoding = parallel_encode_file(
                path, 8, workers=workers, executor="serial"
            )
            assert encoding.stream == expected.stream, workers
            assert encoding.blocks == expected.blocks, workers
            assert encoding.original_length == expected.original_length

    def test_rss_bounded_by_shard_not_file(self, tmp_path):
        # the memmap path must not pull the whole payload into memory:
        # encoding a 12 MB file shard-by-shard has to grow RSS by at
        # least half a payload less than loading the file up front does
        # (per-block records dominate both paths equally, so the delta
        # isolates input residency)
        from repro.core.io import _BINARY_HEADER, BINARY_MAGIC

        cells, patterns = 1000, 12_000  # 12e6 cells = ~11.4 MiB payload
        payload = patterns * cells
        path = tmp_path / "big.9ct"
        with open(path, "wb") as handle:
            handle.write(_BINARY_HEADER.pack(
                BINARY_MAGIC, 1, patterns, cells
            ))
            chunk = bytes(cells)  # all-zero patterns: compresses to C1
            for _ in range(patterns):
                handle.write(chunk)

        def grown(*body: str) -> int:
            script = "\n".join([
                "import resource",
                "import numpy as np",
                "from repro.core.bitvec import TernaryVector",
                "from repro.core.io import memmap_stream",
                "from repro.parallel import parallel_encode,"
                " parallel_encode_file",
                f"path = {str(path)!r}",
                "baseline = resource.getrusage("
                "resource.RUSAGE_SELF).ru_maxrss",
                *body,
                "peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss",
                f"assert encoding.original_length == {payload}",
                "print((peak - baseline) * 1024)",
            ])
            result = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
            )
            return int(result.stdout.strip())

        mmap_grown = grown(
            'encoding = parallel_encode_file('
            'path, 16, workers=8, executor="serial")'
        )
        full_grown = grown(
            'stream, header = memmap_stream(path)',
            'data = TernaryVector(np.asarray(stream.data).copy())',
            'encoding = parallel_encode('
            'data, 16, workers=8, executor="serial")'
        )
        assert mmap_grown + payload // 2 < full_grown, (
            f"mmap encode grew RSS by {mmap_grown} bytes vs "
            f"{full_grown} for the full-load path"
        )


# ----------------------------------------------------------------------
# serve integration: the workers= knob
# ----------------------------------------------------------------------
class TestServeWorkersKnob:
    def _config(self):
        from repro.serve import ServiceConfig

        return ServiceConfig(
            executor="inline", enable_obs=False,
            max_parallel_workers=4, parallel_executor="serial",
        )

    def _call(self, op, params):
        from repro.serve import CompressionService
        from repro.serve.server import Client

        async def scenario():
            service = CompressionService(self._config())
            await service.start()
            try:
                return await Client(service).call(op, params)
            finally:
                await service.close()

        return asyncio.run(scenario())

    def test_parallel_compress_matches_single(self):
        data = load_target_stream("s27").to_string()
        single = self._call("compress", {"k": 8, "data": data})
        sharded = self._call(
            "compress", {"k": 8, "data": data, "workers": 2}
        )
        assert single["ok"] and sharded["ok"]
        for key in ("te_bits", "td_bits", "cr_percent"):
            assert sharded["result"][key] == single["result"][key]
        assert sharded["result"]["workers"] == 2

    def test_parallel_decompress_matches_single(self):
        data = load_target_stream("s27")
        encoding = NineCEncoder(8).encode(data)
        params = {
            "k": 8, "stream": encoding.stream.to_string(),
            "output_length": encoding.original_length,
        }
        single = self._call("decompress", params)
        sharded = self._call("decompress", {**params, "workers": 3})
        assert single["ok"] and sharded["ok"]
        assert sharded["result"]["data"] == single["result"]["data"]
        assert sharded["result"]["workers"] == 3

    def test_workers_above_cap_rejected(self):
        data = load_target_stream("s27").to_string()
        response = self._call(
            "compress", {"k": 8, "data": data, "workers": 64}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_workers_invalid_rejected(self):
        data = load_target_stream("s27").to_string()
        for bad in (0, -1, "two", True):
            response = self._call(
                "compress", {"k": 8, "data": data, "workers": bad}
            )
            assert response["ok"] is False, bad

    def test_workers_with_batch_items_rejected(self):
        data = load_target_stream("s27").to_string()
        response = self._call(
            "compress", {"k": 8, "items": [data, data], "workers": 2}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"


# ----------------------------------------------------------------------
# tracing: per-shard worker spans graft into the live tree
# ----------------------------------------------------------------------
class TestWorkerSpans:
    def test_encode_grafts_worker_spans(self):
        from repro.obs import tracing

        data = load_target_stream("s27")
        obs.reset()
        with obs.enabled_scope(True):
            parallel_encode(data, 8, workers=2, executor="serial")
            tree = tracing.get_tracer().tree()
        obs.reset()
        root = tree["parallel.encode"]
        worker = root["children"]["worker.encode"]
        assert worker["calls"] == 2
        assert worker["children"]["encode.shard"]["calls"] == 2

    def test_decode_grafts_worker_spans(self):
        from repro.obs import tracing

        data = load_target_stream("s27")
        encoding = NineCEncoder(8).encode(data)
        obs.reset()
        with obs.enabled_scope(True):
            parallel_decode(
                encoding.stream, 8,
                output_length=encoding.original_length,
                workers=2, executor="serial",
            )
            tree = tracing.get_tracer().tree()
        obs.reset()
        root = tree["parallel.decode"]
        assert root["children"]["worker.decode"]["calls"] == 2
