"""Tests for the hardened stream layer (repro.robust + core error types)."""

import numpy as np
import pytest

from repro.core import (
    CodewordDesyncError,
    NineCDecoder,
    NineCEncoder,
    StreamError,
    TernaryVector,
    TruncatedStreamError,
)
from repro.robust import (
    BitFlipChannel,
    BurstErrorChannel,
    CompositeChannel,
    FrameCRCError,
    FrameSyncError,
    PerfectChannel,
    StuckAtChannel,
    SymbolDropChannel,
    SymbolInsertChannel,
    XErasureChannel,
    decode_framed,
    frame_overhead_bits,
    frame_stream,
    make_channel,
    run_campaign,
)
from repro.robust.framing import FRAME_OVERHEAD_BITS, HEADER_BITS


def random_ternary(n, seed=0, p=(0.3, 0.2, 0.5)):
    rng = np.random.default_rng(seed)
    return TernaryVector(rng.choice([0, 1, 2], size=n, p=list(p)).astype(np.uint8))


# ----------------------------------------------------------------------
# structured errors
# ----------------------------------------------------------------------
class TestStreamErrors:
    def test_truncated_mid_payload_has_context(self):
        from repro.core import BlockCase, Codebook

        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C9), 0, 1])
        with pytest.raises(TruncatedStreamError) as info:
            NineCDecoder(8).decode_stream(stream)
        assert info.value.bit_offset is not None
        assert info.value.block_index == 0
        assert "bit offset" in str(info.value)

    def test_desync_has_context(self):
        # C1=0; an X inside the second codeword desynchronizes
        stream = TernaryVector("0X")
        with pytest.raises(CodewordDesyncError) as info:
            NineCDecoder(8).decode_stream(stream)
        assert info.value.block_index == 1
        assert info.value.bit_offset == 1

    def test_errors_are_valueerrors(self):
        # backwards compatibility: legacy callers catch ValueError/EOFError
        assert issubclass(StreamError, ValueError)
        assert issubclass(TruncatedStreamError, EOFError)
        assert issubclass(FrameCRCError, StreamError)

    def test_negative_output_length_rejected(self):
        with pytest.raises(ValueError):
            NineCDecoder(8).decode_stream(TernaryVector("0"), output_length=-1)

    def test_short_stream_raises_truncation(self):
        from repro.core import BlockCase, Codebook

        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        with pytest.raises(TruncatedStreamError):
            NineCDecoder(8).decode_stream(stream, output_length=9)


class TestUnframedRecovery:
    def test_recover_returns_prefix_and_diagnostics(self):
        data = random_ternary(256, seed=7)
        enc = NineCEncoder(8).encode(data)
        corrupted = enc.stream.data.copy()
        corrupted[len(corrupted) // 2] = 2  # X inside the stream
        decoder = NineCDecoder(8)
        out = decoder.decode_stream(TernaryVector(corrupted),
                                    output_length=len(data), recover=True)
        assert len(out) == len(data)
        diag = decoder.last_diagnostics
        assert diag is not None and diag.detected
        assert diag.first_error_offset is not None
        assert diag.blocks_decoded * 8 >= diag.first_error_offset - 8
        # the prefix before the first error must match a clean decode
        clean = decoder.decode_stream(enc.stream, output_length=len(data))
        prefix = diag.blocks_decoded * 8
        assert out[:prefix] == clean[:prefix]

    def test_recover_on_clean_stream_is_clean(self):
        data = random_ternary(128, seed=3)
        enc = NineCEncoder(8).encode(data)
        decoder = NineCDecoder(8)
        out = decoder.decode_stream(enc.stream, output_length=len(data),
                                    recover=True)
        assert decoder.last_diagnostics.clean
        assert out.covers(data)


# ----------------------------------------------------------------------
# channel fault models
# ----------------------------------------------------------------------
class TestChannels:
    def test_perfect_channel_identity(self):
        data = random_ternary(100)
        result = PerfectChannel().apply(data)
        assert result.stream == data and not result.corrupted

    def test_bitflip_reproducible(self):
        data = random_ternary(500, seed=1)
        channel = BitFlipChannel(rate=0.05, seed=9)
        first, second = channel.apply(data), channel.apply(data)
        assert first.stream == second.stream
        assert first.injections == second.injections
        assert first.corrupted

    def test_bitflip_exact_count(self):
        data = TernaryVector.zeros(200)
        result = BitFlipChannel(count=5, seed=2).apply(data)
        assert len(result.injections) == 5
        assert result.stream.count(1) == 5

    def test_burst_is_contiguous(self):
        data = TernaryVector.zeros(400)
        result = BurstErrorChannel(rate=0.004, burst_length=6, seed=4).apply(data)
        assert result.corrupted
        positions = sorted(i.position for i in result.injections)
        runs = np.split(np.array(positions),
                        np.where(np.diff(positions) != 1)[0] + 1)
        assert all(len(run) <= 6 for run in runs)

    def test_stuck_at_holds_to_end(self):
        data = TernaryVector.ones(50)
        result = StuckAtChannel(value=0, start=10, seed=0).apply(data)
        assert result.stream[:10] == TernaryVector.ones(10)
        assert result.stream[10:] == TernaryVector.zeros(40)

    def test_drop_shortens(self):
        data = random_ternary(300, seed=5)
        result = SymbolDropChannel(count=7, seed=5).apply(data)
        assert len(result.stream) == 293
        assert len(result.injections) == 7

    def test_insert_lengthens(self):
        data = random_ternary(300, seed=6)
        result = SymbolInsertChannel(count=4, seed=6).apply(data)
        assert len(result.stream) == 304

    def test_erasure_only_degrades_specified(self):
        data = TernaryVector("0101010101" * 10)
        result = XErasureChannel(rate=0.5, seed=8).apply(data)
        assert result.corrupted
        assert all(i.after == 2 and i.before in (0, 1)
                   for i in result.injections)

    def test_composite_applies_in_sequence(self):
        data = TernaryVector.zeros(100)
        channel = CompositeChannel([
            StuckAtChannel(value=1, start=90, seed=0),
            BitFlipChannel(count=1, seed=1),
        ])
        result = channel.apply(data)
        kinds = {i.kind for i in result.injections}
        assert kinds == {"stuck", "flip"}

    def test_registry(self):
        assert isinstance(make_channel("flip", 0.1), BitFlipChannel)
        with pytest.raises(ValueError):
            make_channel("nope", 0.1)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_matches_raw_decode(self):
        data = random_ternary(4096, seed=11)
        enc = NineCEncoder(8).encode(data)
        framed = frame_stream(enc, 16)
        decoder = NineCDecoder(8)
        result = decode_framed(framed, decoder, output_length=len(data))
        assert result.data == decoder.decode_stream(enc.stream,
                                                    output_length=len(data))
        assert result.diagnostics.clean
        assert result.diagnostics.frames_total == -(-len(enc.blocks) // 16)

    def test_overhead_accounting(self):
        data = random_ternary(4096, seed=11)
        enc = NineCEncoder(8).encode(data)
        framed = frame_stream(enc, 16)
        assert len(framed) == len(enc.stream) + frame_overhead_bits(
            len(enc.blocks), 16
        )
        assert frame_overhead_bits(0) == 0

    def test_empty_encoding(self):
        enc = NineCEncoder(8).encode(TernaryVector(""))
        framed = frame_stream(enc)
        result = decode_framed(framed, NineCDecoder(8), output_length=0)
        assert len(result.data) == 0

    def test_payload_crc_failure_strict(self):
        data = random_ternary(512, seed=12)
        enc = NineCEncoder(8).encode(data)
        framed = frame_stream(enc, 8).data.copy()
        # flip a payload bit in the first frame, past the header
        pos = HEADER_BITS + 2
        framed[pos] = 1 - framed[pos] if framed[pos] < 2 else 0
        with pytest.raises(StreamError) as info:
            decode_framed(TernaryVector(framed), NineCDecoder(8),
                          output_length=len(data))
        assert isinstance(info.value, (FrameCRCError, CodewordDesyncError,
                                       TruncatedStreamError))
        assert info.value.frame_index == 0

    def test_header_sync_failure_strict(self):
        data = random_ternary(512, seed=13)
        enc = NineCEncoder(8).encode(data)
        framed = frame_stream(enc, 8).data.copy()
        framed[0] = 1 - framed[0]  # break the sync marker
        with pytest.raises((FrameSyncError, FrameCRCError)):
            decode_framed(TernaryVector(framed), NineCDecoder(8),
                          output_length=len(data))

    def test_truncated_container_strict(self):
        data = random_ternary(512, seed=14)
        enc = NineCEncoder(8).encode(data)
        framed = frame_stream(enc, 8)
        with pytest.raises(TruncatedStreamError):
            decode_framed(framed[: len(framed) - 10], NineCDecoder(8),
                          output_length=len(data))


class TestFramedRecovery:
    """The acceptance property: a flip costs at most the frame it hits."""

    BLOCKS_PER_FRAME = 16
    K = 8

    @classmethod
    def setup_class(cls):
        # ~1000-block stream, mixed X density
        cls.data = random_ternary(cls.K * 1000, seed=21)
        cls.encoding = NineCEncoder(cls.K).encode(cls.data)
        assert len(cls.encoding.blocks) == 1000
        cls.framed = frame_stream(cls.encoding, cls.BLOCKS_PER_FRAME)
        cls.decoder = NineCDecoder(cls.K)
        cls.clean = cls.decoder.decode_stream(
            cls.encoding.stream, output_length=len(cls.data)
        )

    def test_single_flip_resynchronizes(self):
        span = self.BLOCKS_PER_FRAME * self.K
        for offset in range(0, len(self.framed), 97):  # sample positions
            corrupted = self.framed.data.copy()
            corrupted[offset] = 1 - corrupted[offset] if corrupted[offset] < 2 else 0
            result = decode_framed(
                TernaryVector(corrupted), self.decoder,
                output_length=len(self.data), recover=True,
            )
            diag = result.diagnostics
            assert diag.frames_damaged <= 1, (
                f"flip at bit {offset} damaged {diag.frames_damaged} frames"
            )
            assert diag.blocks_lost <= self.BLOCKS_PER_FRAME
            # every bit outside the damaged frame's span must be intact:
            # decoding resynchronized at the next frame boundary
            got, want = result.data.data, self.clean.data
            if diag.frames_damaged == 0:
                assert result.data == self.clean
            else:
                damaged = np.flatnonzero(got != want)
                assert damaged.size <= span
                if damaged.size:
                    assert damaged.max() - damaged.min() < span

    def test_flip_is_detected_not_silent(self):
        corrupted = self.framed.data.copy()
        corrupted[HEADER_BITS + 5] = 1 - corrupted[HEADER_BITS + 5] \
            if corrupted[HEADER_BITS + 5] < 2 else 0
        result = decode_framed(TernaryVector(corrupted), self.decoder,
                               output_length=len(self.data), recover=True)
        assert result.diagnostics.detected
        assert result.diagnostics.first_error_offset is not None
        assert result.diagnostics.resync_points

    def test_burst_damages_neighboring_frames_only(self):
        frame_bits = FRAME_OVERHEAD_BITS  # burst shorter than one frame
        corrupted = BurstErrorChannel(rate=0.0, burst_length=frame_bits,
                                      seed=1)
        # place one burst by hand across a frame boundary
        start = len(self.framed) // 2
        data = self.framed.data.copy()
        for pos in range(start, min(start + 20, len(data))):
            data[pos] = 1 - data[pos] if data[pos] < 2 else 0
        result = decode_framed(TernaryVector(data), self.decoder,
                               output_length=len(self.data), recover=True)
        assert result.diagnostics.frames_damaged <= 2
        assert result.diagnostics.blocks_lost <= 2 * self.BLOCKS_PER_FRAME


# ----------------------------------------------------------------------
# campaign harness
# ----------------------------------------------------------------------
class TestCampaign:
    @classmethod
    def setup_class(cls):
        from repro.circuits.library import load_circuit

        cls.circuit = load_circuit("s27")

    def test_framed_campaign_runs_and_detects(self):
        report = run_campaign(self.circuit, k=4, error_rates=[1e-2],
                              trials=8, framed=True, circuit_name="s27")
        assert report.circuit == "s27" and report.framed
        (summary,) = report.summaries
        assert summary.trials == 8
        assert summary.clean + summary.corrupted == 8
        assert 0.0 <= report.overall_silent_escape_rate <= 1.0
        assert 0.0 <= report.overall_detection_rate <= 1.0
        # accounting must add up
        assert (summary.clean + summary.detected_stream
                + summary.detected_signature + summary.silent_escapes) == 8

    def test_raw_campaign_uses_signature_detection(self):
        report = run_campaign(self.circuit, k=4, error_rates=[5e-2],
                              trials=8, framed=False, circuit_name="s27")
        (summary,) = report.summaries
        assert summary.corrupted > 0
        # raw streams have no CRC: any detection is desync or signature
        assert summary.detected + summary.silent_escapes == summary.corrupted

    def test_campaign_reproducible(self):
        a = run_campaign(self.circuit, k=4, error_rates=[1e-2], trials=5,
                         framed=True, seed=3, circuit_name="s27")
        b = run_campaign(self.circuit, k=4, error_rates=[1e-2], trials=5,
                         framed=True, seed=3, circuit_name="s27")
        assert a.trials == b.trials
        assert a.to_dict() == b.to_dict()

    def test_campaign_validates_arguments(self):
        with pytest.raises(ValueError):
            run_campaign(self.circuit, trials=0)
        with pytest.raises(ValueError):
            run_campaign(self.circuit, error_rates=[])

    def test_session_apply_stream_clean_roundtrip(self):
        from repro.system import TestSession

        session = TestSession(self.circuit, k=4).prepare()
        patterns, diag = session.apply_stream(session.encoding.stream)
        assert diag.clean
        assert patterns == session.applied_patterns


# ----------------------------------------------------------------------
# correlated X-erasure + bidirectional campaign (repro.compaction)
# ----------------------------------------------------------------------
class TestXErasurePositions:
    def test_positions_override_rate(self):
        data = TernaryVector("01" * 10)
        result = XErasureChannel(positions=[1, 3, 99]).apply(data)
        erased = sorted(i.position for i in result.injections)
        assert erased == [1, 3]  # out-of-range positions are ignored
        assert result.stream.data[1] == 2 and result.stream.data[3] == 2

    def test_positions_skip_existing_x(self):
        data = TernaryVector("0X1X")
        result = XErasureChannel(positions=[0, 1, 2, 3]).apply(data)
        erased = sorted(i.position for i in result.injections)
        assert erased == [0, 2]

    def test_positions_deterministic(self):
        data = TernaryVector("0101010101")
        a = XErasureChannel(positions=[2, 4]).apply(data)
        b = XErasureChannel(positions=[2, 4]).apply(data)
        assert a.stream == b.stream and a.injections == b.injections

    def test_placement_drives_channel(self):
        """A compaction XPlacement projects onto the stimulus stream —
        the shared-geometry path the bidirectional campaign uses."""
        from repro.compaction import XPlacement

        placement = XPlacement.from_density(8, 4, 0.2, seed=3)
        data = TernaryVector.zeros(8 * 4)
        result = XErasureChannel(
            positions=placement.stream_positions()
        ).apply(data)
        erased = sorted(i.position for i in result.injections)
        assert erased == placement.stream_positions()


class TestBidirectionalCampaign:
    @classmethod
    def setup_class(cls):
        from repro.circuits.library import load_circuit

        cls.circuit = load_circuit("s27")

    def test_placement_requires_compactor(self):
        from repro.compaction import XPlacement

        with pytest.raises(ValueError):
            run_campaign(
                self.circuit, k=4, trials=2,
                response_placement=XPlacement.from_density(1, 1, 0.0),
            )

    def test_compactor_observation_campaign(self):
        from repro.compaction import build_compactor

        width = len(self.circuit.scan_outputs)
        report = run_campaign(
            self.circuit, k=4, error_rates=[1e-2], trials=6,
            framed=True, seed=1, circuit_name="s27",
            response_compactor=build_compactor("xcompact", width),
        )
        (summary,) = report.summaries
        assert summary.corrupted > 0
        assert summary.detected + summary.silent_escapes == summary.corrupted

    def test_bidirectional_faults_both_directions(self):
        """Stimulus-side erasures and response-side X's share geometry
        and the campaign still detects corruption end to end."""
        from repro.compaction import XPlacement, build_compactor
        from repro.system import TestSession

        width = len(self.circuit.scan_outputs)
        session = TestSession(self.circuit, k=4).prepare()
        cycles = len(session.applied_patterns)
        placement = XPlacement.from_density(cycles, width, 0.05, seed=2)
        report = run_campaign(
            self.circuit, k=4, error_rates=[1e-2], trials=6,
            framed=True, seed=2, circuit_name="s27",
            channel_factory=lambda rate, s: XErasureChannel(
                positions=placement.companion(
                    self.circuit.scan_length
                ).stream_positions(),
            ),
            response_compactor=build_compactor("xcompact", width),
            response_placement=placement,
        )
        (summary,) = report.summaries
        assert summary.trials == 6
        assert summary.corrupted + summary.clean == summary.trials

    def test_bidirectional_reproducible(self):
        from repro.compaction import build_compactor

        width = len(self.circuit.scan_outputs)

        def run():
            return run_campaign(
                self.circuit, k=4, error_rates=[5e-2], trials=4,
                framed=False, seed=7, circuit_name="s27",
                response_compactor=build_compactor("cw3", width),
            ).to_dict()

        assert run() == run()
