"""Unit tests for the LFSR/MISR response-compaction models."""

import numpy as np
import pytest

from repro.core import TernaryVector
from repro.decompressor import (
    LFSR,
    MISR,
    AliasingEstimate,
    default_taps,
    find_primitive_taps,
    is_primitive,
    signature_of,
)
from repro.decompressor.misr import MAX_SEARCH_WIDTH, PRIMITIVE_TAPS


class TestLFSR:
    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_maximal_period(self, width):
        assert LFSR(width).period() == (1 << width) - 1

    def test_deterministic(self):
        assert LFSR(8, seed=5).bits(64) == LFSR(8, seed=5).bits(64)

    def test_seed_changes_sequence(self):
        assert LFSR(8, seed=1).bits(32) != LFSR(8, seed=77).bits(32)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LFSR(1)
        with pytest.raises(ValueError):
            LFSR(8, seed=0)
        with pytest.raises(ValueError):
            LFSR(8, taps=(9,))
        with pytest.raises(ValueError):
            default_taps(MAX_SEARCH_WIDTH + 8)

    def test_output_balance(self):
        # A maximal LFSR emits 2^(w-1) ones per period.
        bits = LFSR(8).bits(255)
        assert sum(bits) == 128


class TestPrimitivity:
    """Every shipped tap set yields a maximal-period LFSR."""

    @pytest.mark.parametrize("width", sorted(PRIMITIVE_TAPS))
    def test_table_entries_primitive(self, width):
        # is_primitive is the algebraic maximal-period proof: x has
        # order 2^w - 1 in GF(2)[x]/(p), exactly when period = 2^w - 1.
        assert is_primitive(PRIMITIVE_TAPS[width], width)

    @pytest.mark.parametrize("width", [4, 7, 8, 12, 16])
    def test_small_widths_maximal_by_stepping(self, width):
        # Cross-check the algebra by literally counting states.
        assert LFSR(width, taps=default_taps(width)).period() == 2**width - 1

    @pytest.mark.parametrize("width", [5, 6, 11, 18, 30])
    def test_search_fallback_fills_table_gaps(self, width):
        assert width not in PRIMITIVE_TAPS
        taps = default_taps(width)
        assert is_primitive(taps, width)
        assert max(taps) == width
        # cached: the search runs once per width
        assert default_taps(width) is taps or default_taps(width) == taps

    def test_find_primitive_taps_rejects_bad_width(self):
        with pytest.raises(ValueError):
            find_primitive_taps(1)

    def test_non_primitive_rejected(self):
        # x^4 + x^2 + 1 = (x^2 + x + 1)^2 is not even irreducible.
        assert not is_primitive((4, 2), 4)


class TestMISR:
    def test_signature_deterministic(self):
        response = TernaryVector("10110100" * 4)
        assert signature_of([response], 8) == signature_of([response], 8)

    def test_signature_sensitive_to_single_bit(self):
        good = TernaryVector("10110100" * 4)
        data = good.data.copy()
        data[13] ^= 1
        bad = TernaryVector(data)
        assert signature_of([good], 8) != signature_of([bad], 8)

    def test_width_checked(self):
        misr = MISR(8)
        with pytest.raises(ValueError):
            misr.absorb([0, 1])
        with pytest.raises(ValueError):
            misr.absorb_response(TernaryVector("101"))

    def test_x_rejected(self):
        with pytest.raises(ValueError):
            MISR(4).absorb([0, 1, 2, 0])

    def test_aliasing_rate_near_bound(self):
        """Empirical aliasing ~ 2^-w over random error patterns."""
        rng = np.random.default_rng(99)
        width = 8
        good = TernaryVector(rng.integers(0, 2, 64).astype(np.uint8))
        good_sig = signature_of([good], width)
        trials = 3000
        aliases = 0
        for _ in range(trials):
            error = rng.integers(0, 2, 64).astype(np.uint8)
            if not error.any():
                continue
            bad = TernaryVector(good.data ^ error)
            if signature_of([bad], width) == good_sig:
                aliases += 1
        bound = AliasingEstimate(width).probability
        assert aliases / trials < 6 * bound  # loose, seed-stable

    def test_multi_pattern_signature(self):
        r1 = TernaryVector("1011" * 2)
        r2 = TernaryVector("0100" * 2)
        combined = signature_of([r1, r2], 4)
        misr = MISR(4)
        misr.absorb_response(r1)
        misr.absorb_response(r2)
        assert misr.signature == combined

    def test_rpct_roundtrip_with_fault(self):
        """Stimulus decompression + MISR catches an injected fault."""
        from repro.circuits import (Injection, load_circuit,
                                    simulate, output_values)
        from repro.atpg import generate_test_cubes
        from repro.testdata import fill_test_set

        circuit = load_circuit("s27")
        atpg = generate_test_cubes(circuit)
        filled = fill_test_set(atpg.test_set, "random", seed=3)
        width = 4
        pad = (-len(circuit.scan_outputs)) % width

        def run(injection=None):
            misr = MISR(width)
            for pattern in filled:
                values = simulate(circuit, pattern, injection)
                response = output_values(circuit, values).padded(
                    len(circuit.scan_outputs) + pad, 0
                )
                misr.absorb_response(response)
            return misr.signature

        fault = atpg.detected[0]
        assert run() != run(fault.injection)
