"""Unit tests for X-fill strategies."""

import numpy as np
import pytest
from hypothesis import given

from repro.core import TernaryVector
from repro.testdata import (
    TestSet,
    fill_test_set,
    mt_fill,
    one_fill,
    random_fill,
    zero_fill,
)

from .conftest import ternary_vectors


class TestConstantFills:
    def test_zero_fill(self):
        assert zero_fill(TernaryVector("0X1X")).to_string() == "0010"

    def test_one_fill(self):
        assert one_fill(TernaryVector("0X1X")).to_string() == "0111"


class TestRandomFill:
    def test_deterministic_for_seed(self):
        v = TernaryVector.xs(64)
        assert random_fill(v, seed=7) == random_fill(v, seed=7)

    def test_fully_specified(self):
        out = random_fill(TernaryVector("X0X1XX"), seed=3)
        assert out.is_fully_specified()
        assert out.covers(TernaryVector("X0X1XX"))

    def test_explicit_rng(self):
        rng = np.random.default_rng(1)
        assert random_fill(TernaryVector.xs(8), rng=rng).is_fully_specified()


class TestMTFill:
    def test_repeats_previous_value(self):
        assert mt_fill(TernaryVector("0XX1XX")).to_string() == "000111"

    def test_leading_x_copies_first_specified(self):
        assert mt_fill(TernaryVector("XX1X")).to_string() == "1111"

    def test_all_x_becomes_zero(self):
        assert mt_fill(TernaryVector("XXXX")).to_string() == "0000"

    def test_no_x_unchanged(self):
        assert mt_fill(TernaryVector("0101")).to_string() == "0101"

    @given(ternary_vectors(min_size=1))
    def test_covers_and_specified(self, v):
        out = mt_fill(v)
        assert out.is_fully_specified()
        assert out.covers(v)

    @given(ternary_vectors(min_size=1))
    def test_minimizes_transitions_vs_constant_fills(self, v):
        def transitions(x):
            arr = x.data
            return int(np.count_nonzero(arr[1:] != arr[:-1]))

        t_mt = transitions(mt_fill(v))
        assert t_mt <= min(transitions(zero_fill(v)), transitions(one_fill(v)))


class TestFillTestSet:
    def setup_method(self):
        self.ts = TestSet.from_strings(["0XX1", "XXXX"])

    @pytest.mark.parametrize("strategy", ["zero", "one", "random", "mt"])
    def test_all_strategies_specify_everything(self, strategy):
        out = fill_test_set(self.ts, strategy)
        assert all(p.is_fully_specified() for p in out)
        assert out.covers(self.ts)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            fill_test_set(self.ts, "bogus")

    def test_random_fill_seeded(self):
        a = fill_test_set(self.ts, "random", seed=5)
        b = fill_test_set(self.ts, "random", seed=5)
        assert a == b
