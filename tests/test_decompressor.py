"""Unit + integration tests for the decompression architectures."""

import pytest
from hypothesis import given, settings

from repro.analysis import compressed_time_ate_cycles, trace_time_ate_cycles
from repro.core import NineCDecoder, NineCEncoder, TernaryVector
from repro.decompressor import (
    MultiScanDecompressor,
    ParallelDecompressor,
    ScanChain,
    ScanFanout,
    SingleScanDecompressor,
)
from repro.testdata import TestSet, load_benchmark

from .conftest import even_block_sizes, ternary_vectors


class TestScanChain:
    def test_shift_and_capture(self):
        chain = ScanChain(4)
        for bit in (1, 0, 1, 1):
            chain.shift_in(bit)
        assert chain.capture().to_string() == "1011"

    def test_shift_out(self):
        chain = ScanChain(2)
        chain.shift_in(1)
        chain.shift_in(0)
        assert chain.shift_in(1) == 1  # first bit exits after length shifts

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            ScanChain(0)

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            ScanChain(2).shift_in(3)

    def test_wtm_accumulation(self):
        # Pattern 1010 into a 4-cell chain: transitions at j=1,2,3 with
        # weights 3,2,1 -> WTM 6.
        chain = ScanChain(4)
        for bit in (1, 0, 1, 0):
            chain.shift_in(bit)
        assert chain.weighted_transitions == 6

    def test_wtm_matches_analysis_module(self):
        from repro.analysis import wtm

        pattern = TernaryVector("1100101")
        chain = ScanChain(len(pattern))
        for bit in pattern:
            chain.shift_in(bit)
        assert chain.weighted_transitions == wtm(pattern)

    def test_parallel_load(self):
        chain = ScanChain(3)
        chain.load_parallel([1, 0, 1])
        assert chain.contents().to_string() == "101"
        with pytest.raises(ValueError):
            chain.load_parallel([1])


class TestScanFanout:
    def test_buffer_fills_then_loads(self):
        fanout = ScanFanout(2, 2)
        assert fanout.shift_into_buffer(1) is False
        assert fanout.shift_into_buffer(0) is True
        assert fanout.loads == 1

    def test_capture_interleaves(self):
        fanout = ScanFanout(2, 2)
        for bit in (1, 0, 1, 1):  # pattern 1011 across 2 chains of 2
            fanout.shift_into_buffer(bit)
        assert fanout.capture_pattern().to_string() == "1011"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ScanFanout(0, 4)


class TestSingleScan:
    def test_matches_software_decoder(self):
        data = TernaryVector("0000X01X" * 12 + "11111111" * 3)
        encoding = NineCEncoder(8).encode(data)
        software = NineCDecoder(8).decode(encoding)
        trace = SingleScanDecompressor(8, p=4).run_encoding(encoding)
        assert trace.output == software

    @given(ternary_vectors(max_size=96), even_block_sizes(max_k=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_software_decoder_property(self, data, k):
        encoding = NineCEncoder(k).encode(data)
        software = NineCDecoder(k).decode(encoding)
        trace = SingleScanDecompressor(k, p=2).run_encoding(encoding)
        assert trace.output == software

    def test_cycle_counts_match_analytic_model(self):
        ts = load_benchmark("s5378", fraction=0.3)
        stream = ts.to_stream()
        for k in (4, 8, 16):
            for p in (1, 2, 8):
                encoding = NineCEncoder(k).encode(stream)
                trace = SingleScanDecompressor(k, p=p).run_encoding(encoding)
                analytic = compressed_time_ate_cycles(
                    encoding.case_counts, k, p
                )
                assert trace_time_ate_cycles(trace, p) == \
                    pytest.approx(analytic), (k, p)

    def test_ate_cycles_equal_stream_length(self):
        # Every compressed bit crosses the single pin exactly once.
        data = TernaryVector("01100110" * 6)
        encoding = NineCEncoder(8).encode(data)
        trace = SingleScanDecompressor(8, p=2).run_encoding(encoding)
        assert trace.ate_cycles == encoding.compressed_size

    def test_scan_chain_patterns(self):
        ts = TestSet.from_strings(["00000000", "11111111", "00001111"])
        encoding = NineCEncoder(8).encode(ts.to_stream())
        decompressor = SingleScanDecompressor(8, p=2, scan_length=8)
        trace = decompressor.run_encoding(encoding)
        assert len(trace.patterns) == 3
        assert trace.patterns[0].to_string() == "00000000"
        assert trace.patterns[1].to_string() == "11111111"
        assert trace.patterns[2].to_string() == "00001111"

    def test_x_fill_applied(self):
        data = TernaryVector("0000X01X")
        encoding = NineCEncoder(8).encode(data)
        trace = SingleScanDecompressor(8).run_encoding(encoding, x_fill=1)
        assert trace.output.to_string() == "00001011"

    def test_case_counts_match_encoder(self):
        data = TernaryVector("0000000011111111" * 5)
        encoding = NineCEncoder(8).encode(data)
        trace = SingleScanDecompressor(8).run_encoding(encoding)
        assert trace.case_counts == encoding.case_counts

    def test_k_mismatch_rejected(self):
        encoding = NineCEncoder(8).encode(TernaryVector.zeros(16))
        with pytest.raises(ValueError):
            SingleScanDecompressor(4).run_encoding(encoding)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SingleScanDecompressor(7)
        with pytest.raises(ValueError):
            SingleScanDecompressor(8, p=0)


class TestMultiScan:
    def test_single_pin_same_test_time(self):
        """Figure 3/4b claim: one pin, unchanged test application time."""
        ts = load_benchmark("s9234", fraction=0.2)
        stream = ts.to_stream()
        encoding = NineCEncoder(8).encode(stream)
        single = SingleScanDecompressor(8, p=4).run_encoding(encoding)
        for m in (2, 4, 8):
            multi = MultiScanDecompressor(
                8, num_chains=m, chain_length=1 + len(stream) // m, p=4
            ).run_encoding(encoding)
            assert multi.soc_cycles == single.soc_cycles

    def test_output_covers_software_decoder(self):
        data = TernaryVector("0000X01X" * 8)
        encoding = NineCEncoder(8).encode(data)
        software = NineCDecoder(8).decode(encoding)
        trace = MultiScanDecompressor(8, 4, 16).run_encoding(encoding)
        assert trace.output.covers(software)

    def test_pattern_reassembly(self):
        ts = TestSet.from_strings(["01100110", "10011001"])
        encoding = NineCEncoder(4).encode(ts.to_stream())
        trace = MultiScanDecompressor(
            4, num_chains=4, chain_length=2
        ).run_encoding(encoding)
        assert [p.to_string() for p in trace.patterns] == \
            ["01100110", "10011001"]

    def test_loads_counted(self):
        ts = TestSet.from_strings(["01100110"])
        encoding = NineCEncoder(4).encode(ts.to_stream())
        trace = MultiScanDecompressor(4, 4, 2).run_encoding(encoding)
        assert trace.loads == 2  # 8 bits / 4 chains

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MultiScanDecompressor(8, 0, 4)
        with pytest.raises(ValueError):
            MultiScanDecompressor(8, 4, 4, p=0)


class TestExpand:
    """Trace-free expand() vs the cycle-accurate run_encoding()."""

    def _encoding(self, k=8, fraction=0.05):
        data = load_benchmark("s5378", fraction=fraction).to_stream()
        return NineCEncoder(k).encode(data)

    @pytest.mark.parametrize("p", [1, 4])
    def test_single_scan_matches_cycle_accurate(self, p):
        encoding = self._encoding()
        decompressor = SingleScanDecompressor(8, p=p)
        accurate = decompressor.run_encoding(encoding)
        fast = decompressor.expand(encoding)
        assert fast.output == accurate.output
        assert fast.soc_cycles == accurate.soc_cycles
        assert fast.ate_cycles == accurate.ate_cycles
        assert fast.codeword_ate_cycles == accurate.codeword_ate_cycles
        assert fast.data_ate_cycles == accurate.data_ate_cycles
        assert fast.uniform_soc_cycles == accurate.uniform_soc_cycles
        assert fast.blocks == accurate.blocks
        assert fast.case_counts == accurate.case_counts

    @pytest.mark.parametrize("p", [1, 4])
    def test_single_scan_matches_tat_analysis(self, p):
        encoding = self._encoding()
        trace = SingleScanDecompressor(8, p=p).expand(encoding)
        assert trace_time_ate_cycles(trace, p) == compressed_time_ate_cycles(
            encoding.case_counts, 8, p
        )

    @pytest.mark.parametrize("p", [1, 4])
    def test_multi_scan_matches_cycle_accurate(self, p):
        encoding = self._encoding()
        decompressor = MultiScanDecompressor(
            8, num_chains=4,
            chain_length=1 + encoding.original_length // 4, p=p,
        )
        accurate = decompressor.run_encoding(encoding)
        fast = decompressor.expand(encoding)
        assert fast.output == accurate.output
        assert fast.soc_cycles == accurate.soc_cycles
        assert fast.ate_cycles == accurate.ate_cycles
        assert fast.uniform_soc_cycles == accurate.uniform_soc_cycles
        assert fast.loads == accurate.loads
        assert (fast.num_chains, fast.chain_length) == \
            (accurate.num_chains, accurate.chain_length)

    @given(ternary_vectors(max_size=96), even_block_sizes(max_k=12))
    @settings(max_examples=60, deadline=None)
    def test_single_scan_expand_property(self, data, k):
        encoding = NineCEncoder(k).encode(data)
        decompressor = SingleScanDecompressor(k, p=2)
        accurate = decompressor.run_encoding(encoding)
        fast = decompressor.expand(encoding)
        assert fast.output == accurate.output
        assert fast.soc_cycles == accurate.soc_cycles

    def test_x_fill_applied(self):
        data = TernaryVector("0000X01X" * 4)
        encoding = NineCEncoder(8).encode(data)
        decompressor = SingleScanDecompressor(8)
        accurate = decompressor.run_encoding(encoding, x_fill=1)
        fast = decompressor.expand(encoding, x_fill=1)
        assert fast.output == accurate.output
        assert fast.output.is_fully_specified()

    def test_trace_free_fields(self):
        encoding = self._encoding()
        trace = MultiScanDecompressor(8, 4, 4000).expand(encoding)
        assert trace.patterns == []
        assert trace.weighted_transitions == 0

    def test_k_mismatch_rejected(self):
        encoding = self._encoding(k=8)
        with pytest.raises(ValueError):
            SingleScanDecompressor(4).expand(encoding)
        with pytest.raises(ValueError):
            MultiScanDecompressor(4, 4, 100).expand(encoding)


class TestParallel:
    def make_test_set(self):
        rows = ["0110011010100101", "1111000011001100", "0000111101010101"]
        return TestSet.from_strings(rows, name="par")

    def test_exact_reconstruction(self):
        ts = self.make_test_set()
        par = ParallelDecompressor(k=4, num_chains=8, chain_length=2)
        result = par.run(ts, x_fill=0)
        # With no X the reconstruction must be bit-exact.
        assert result.test_set == ts

    def test_speedup_with_group_count(self):
        ts = self.make_test_set()
        one = ParallelDecompressor(k=8, num_chains=8, chain_length=2, p=4)
        two = ParallelDecompressor(k=4, num_chains=8, chain_length=2, p=4)
        t1 = one.run(ts).soc_cycles
        t2 = two.run(ts).soc_cycles
        assert t2 < t1  # more pins/decoders -> shorter test

    def test_pin_count(self):
        ts = self.make_test_set()
        result = ParallelDecompressor(k=4, num_chains=8, chain_length=2).run(ts)
        assert result.num_pins == 2
        assert len(result.group_traces) == 2

    def test_group_trace_geometry(self):
        """Regression: group decoders must see the true scan geometry.

        `run` used to build each group decoder with
        ``chain_length = num_patterns * chain_length``, so the group
        traces reported a fictitious geometry (one giant pattern instead
        of num_patterns real ones).
        """
        rows = ["0110011010100101", "1111000011001100",
                "0000111101010101", "1010010111110000"]
        ts = TestSet.from_strings(rows, name="geom")
        par = ParallelDecompressor(k=4, num_chains=8, chain_length=2)
        result = par.run(ts)
        for trace in result.group_traces:
            assert trace.num_chains == 4          # k chains per group
            assert trace.chain_length == 2        # the true chain length
            assert len(trace.patterns) == ts.num_patterns
            # loads: num_patterns * (k * chain_length) bits / k chains
            assert trace.loads == ts.num_patterns * 2
        # each captured pattern is the group's k-wide slice of the rows
        for group, trace in enumerate(result.group_traces):
            for row, pattern in zip(rows, trace.patterns):
                want = "".join(
                    row[r * 8 + group * 4 : r * 8 + group * 4 + 4]
                    for r in range(2)
                )
                assert pattern.to_string() == want

    def test_geometry_fix_keeps_soc_cycles(self):
        """Cycle counts are geometry-independent; Figure-4c is unaffected."""
        from repro.analysis.tat import compressed_time_soc_cycles

        ts = self.make_test_set()
        par = ParallelDecompressor(k=4, num_chains=8, chain_length=2, p=4)
        result = par.run(ts)
        for encoding, trace in zip(par.compress(ts), result.group_traces):
            assert trace.soc_cycles == compressed_time_soc_cycles(
                encoding.case_counts, 4, 4
            )

    def test_chain_multiple_required(self):
        with pytest.raises(ValueError):
            ParallelDecompressor(k=8, num_chains=12, chain_length=2)

    def test_width_checked(self):
        par = ParallelDecompressor(k=4, num_chains=8, chain_length=2)
        with pytest.raises(ValueError):
            par.run(TestSet.from_strings(["0101"]))
