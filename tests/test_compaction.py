"""Response compaction: observations, MISR fast path, gates, sweeps.

The two properties that make the subsystem trustworthy:

* **X-invariance** — an observation may not depend on the value a
  masked position happens to take (that is what "unknown" means);
* **differential equality** — the word-packed MISR fast path, the
  bit-serial reference, and the gate-level netlists all agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compaction import (
    MISRCompactor,
    MaskedMISRCompactor,
    SpatialXCompactor,
    XPlacement,
    build_compactor,
    build_matrix,
    compactor_netlist,
    constant_weight_matrix,
    cosimulate_compactor,
    cosimulate_misr,
    default_compactors,
    misr_netlist,
    run_sweep,
    split_ternary,
    xcompact_matrix,
)
from repro.core.bitvec import TernaryVector, X


def random_case(seed, cycles=6, width=8, density=0.2):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2, (cycles, width)).astype(np.uint8)
    xmask = rng.random((cycles, width)) < density
    return values, xmask


class TestSplitTernary:
    def test_roundtrip(self):
        stream = TernaryVector("10X10X01")
        values, xmask = split_ternary(stream, 4)
        assert values.shape == (2, 4)
        assert xmask.tolist() == [[False, False, True, False],
                                  [False, True, False, False]]
        assert values[xmask].sum() == 0  # X positions carry value 0

    def test_rejects_partial_cycle(self):
        with pytest.raises(ValueError):
            split_ternary(TernaryVector("101"), 2)


class TestXInvariance:
    """Flipping bits under the mask must never change an observation."""

    @pytest.mark.parametrize("kind", ["xcompact", "cw3", "misr",
                                      "masked-misr"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_masked_positions_are_dont_cares(self, kind, seed):
        values, xmask = random_case(seed)
        compactor = build_compactor(kind, 8)
        baseline = compactor.compact(values, xmask)
        rng = np.random.default_rng(seed + 100)
        for _ in range(8):
            flipped = values.copy()
            flips = xmask & (rng.random(xmask.shape) < 0.5)
            flipped[flips] ^= 1
            other = compactor.compact(flipped, xmask)
            assert baseline.matches(other), (
                f"{kind}: observation changed under X-only flips"
            )

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_spatial_invariance_hypothesis(self, data):
        values, xmask = random_case(data.draw(st.integers(0, 2**16)))
        compactor = build_compactor("xcompact", 8)
        flips = np.array(
            [[data.draw(st.booleans()) for _ in row] for row in xmask]
        )
        flipped = values.copy()
        flipped[xmask & flips] ^= 1
        assert compactor.compact(values, xmask).matches(
            compactor.compact(flipped, xmask)
        )

    @pytest.mark.parametrize("kind", ["xcompact", "cw3", "misr",
                                      "masked-misr"])
    def test_unmasked_single_bit_flip_detected(self, kind):
        values, _ = random_case(7)
        xmask = np.zeros(values.shape, dtype=bool)
        compactor = build_compactor(kind, 8)
        baseline = compactor.compact(values, xmask)
        flipped = values.copy()
        flipped[3, 5] ^= 1
        assert not baseline.matches(compactor.compact(flipped, xmask))


class TestObservations:
    def test_spatial_matches_uses_mutually_visible_positions(self):
        """Positions masked on either side are excluded from comparison."""
        compactor = SpatialXCompactor(xcompact_matrix(8))
        values, _ = random_case(11)
        mask_a = np.zeros(values.shape, dtype=bool)
        mask_a[0, 0] = True
        mask_b = np.zeros(values.shape, dtype=bool)
        mask_b[2, 3] = True
        a = compactor.compact(values, mask_a)
        b = compactor.compact(values, mask_b)
        assert a.matches(b) and b.matches(a)
        assert a.matches(a)

    def test_signature_matches_requires_same_cycle_count(self):
        compactor = MISRCompactor(4)
        values, _ = random_case(5, width=4)
        none = np.zeros(values.shape, dtype=bool)
        one_cycle = none.copy()
        one_cycle[2, :] = True
        a = compactor.compact(values, none)
        b = compactor.compact(values, one_cycle)
        assert a.cycles_absorbed != b.cycles_absorbed
        assert not a.matches(b)

    def test_output_pins(self):
        assert MISRCompactor(18).output_pins == 1
        assert MaskedMISRCompactor(18).output_pins == 1
        assert SpatialXCompactor(xcompact_matrix(18)).output_pins < 18

    def test_compact_stream_equals_compact(self):
        compactor = build_compactor("xcompact", 4)
        stream = TernaryVector("10X1" "0110")
        values, xmask = split_ternary(stream, 4)
        assert compactor.compact_stream(stream).matches(
            compactor.compact(values, xmask)
        )

    def test_build_compactor_unknown_kind(self):
        with pytest.raises(ValueError):
            build_compactor("nosuch", 8)


class TestMISRDifferential:
    """Word-packed fast path == bit-serial reference MISR."""

    @pytest.mark.parametrize("width", [3, 7, 16, 23])
    @pytest.mark.parametrize("misr_width", [8, 16, 24])
    @pytest.mark.parametrize("cls", [MISRCompactor, MaskedMISRCompactor])
    def test_packed_equals_reference(self, width, misr_width, cls):
        compactor = cls(width, misr_width=misr_width)
        values, xmask = random_case(width * misr_width, cycles=9,
                                    width=width)
        observation = compactor.compact(values, xmask)
        reference = compactor.reference_signature(values, xmask)
        assert observation == reference
        assert observation.matches(reference)

    def test_all_x_stream(self):
        compactor = MISRCompactor(4)
        values = np.zeros((3, 4), dtype=np.uint8)
        xmask = np.ones((3, 4), dtype=bool)
        observation = compactor.compact(values, xmask)
        assert observation.cycles_absorbed == 0
        assert observation.cycles_dropped == 3
        assert observation == compactor.reference_signature(values, xmask)


class TestGateCosimulation:
    """Python models vs emitted netlists, including X propagation."""

    @pytest.mark.parametrize("kind,n", [("xcompact", 8), ("xcompact", 16),
                                        ("cw3", 8)])
    def test_compactor_gates_match_model(self, kind, n):
        matrix = build_matrix(kind, n)
        netlist = compactor_netlist(matrix)
        rng = np.random.default_rng(n)
        slices = [
            [int(b) if rng.random() > 0.2 else X
             for b in rng.integers(0, 2, n)]
            for _ in range(12)
        ]
        assert cosimulate_compactor(netlist, matrix, slices) == []

    @pytest.mark.parametrize("width", [4, 8, 12, 16])
    def test_misr_gates_match_model(self, width):
        netlist = misr_netlist(width)
        rng = np.random.default_rng(width)
        slices = rng.integers(0, 2, (10, width)).tolist()
        mismatches, signature = cosimulate_misr(netlist, width, slices)
        assert mismatches == []
        assert 0 <= signature < (1 << width)

    def test_misr_cosim_rejects_x(self):
        netlist = misr_netlist(4)
        with pytest.raises(ValueError):
            cosimulate_misr(netlist, 4, [[0, 1, X, 0]])

    def test_lint_clean(self):
        from repro.lint import lint_netlist

        for netlist in (compactor_netlist(xcompact_matrix(8)),
                        compactor_netlist(constant_weight_matrix(8)),
                        misr_netlist(16)):
            assert lint_netlist(netlist) == []


class TestXPlacement:
    def test_exact_count(self):
        placement = XPlacement.from_density(100, 10, 0.05, seed=1)
        assert len(placement.positions) <= 50  # dedupe can only shrink
        assert len(placement.positions) >= 45
        assert placement.density == pytest.approx(0.05, abs=0.01)

    def test_nonzero_density_places_at_least_one(self):
        placement = XPlacement.from_density(2, 2, 0.01)
        assert len(placement.positions) == 1

    def test_zero_density_places_none(self):
        assert XPlacement.from_density(50, 8, 0.0).positions == ()

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            XPlacement.from_density(10, 4, 1.5)

    def test_deterministic(self):
        a = XPlacement.from_density(64, 9, 0.1, seed=3)
        b = XPlacement.from_density(64, 9, 0.1, seed=3)
        assert a == b

    def test_companion_shares_cycles(self):
        """Same seed, different width: the Section III-C correlation —
        stimulus-side and response-side X's hit the same test cycles."""
        response = XPlacement.from_density(64, 9, 0.1, seed=5)
        stimulus = response.companion(33)
        assert stimulus.width == 33
        assert stimulus.positions
        # the companion re-draws the same cycle stream, so its cycles
        # are a subset of the response-side cycles (never independent)
        assert set(stimulus.cycles_touched) <= set(response.cycles_touched)
        assert response.companion(9) is response

    def test_stream_positions_are_flat_indices(self):
        placement = XPlacement.from_density(8, 4, 0.2, seed=2)
        flat = placement.stream_positions()
        assert flat == sorted(flat)
        for (cycle, column), index in zip(placement.positions, flat):
            assert index == cycle * 4 + column

    def test_mask_matches_positions(self):
        placement = XPlacement.from_density(16, 6, 0.1, seed=7)
        mask = placement.mask()
        assert mask.sum() == len(placement.positions)
        for cycle, column in placement.positions:
            assert mask[cycle, column]


class TestRunSweep:
    def test_s27_shape(self):
        from repro.circuits.library import load_circuit

        report = run_sweep(
            load_circuit("s27"), densities=(0.0, 0.05),
            max_faults=8, seed=0, circuit_name="s27",
        )
        assert report.circuit == "s27"
        assert report.densities == [0.0, 0.05]
        assert set(report.compactors) == {"misr", "masked-misr",
                                          "xcompact", "cw3"}
        for name in report.compactors:
            assert report.point(0.0, name).detection_rate == 1.0
        payload = report.to_baseline_dict()
        from repro.obs.profile import validate_baseline

        assert validate_baseline(payload) == []

    def test_rejects_mismatched_compactor(self):
        from repro.circuits.library import load_circuit

        with pytest.raises(ValueError):
            run_sweep(load_circuit("s27"),
                      compactors=[MISRCompactor(99)])

    def test_rejects_empty_densities(self):
        from repro.circuits.library import load_circuit

        with pytest.raises(ValueError):
            run_sweep(load_circuit("s27"), densities=())

    def test_default_compactors_lineup(self):
        names = [c.name for c in default_compactors(8)]
        assert names == ["misr", "masked-misr", "xcompact", "cw3"]
