"""Unit tests for the ATE channel clock model."""

import pytest

from repro.decompressor import ATEChannel


class TestATEChannel:
    def test_defaults(self):
        channel = ATEChannel()
        assert channel.f_scan_hz == channel.f_ate_hz * channel.p

    def test_validation(self):
        with pytest.raises(ValueError):
            ATEChannel(f_ate_hz=0)
        with pytest.raises(ValueError):
            ATEChannel(p=0)

    def test_soc_period(self):
        channel = ATEChannel(f_ate_hz=50e6, p=8)
        assert channel.soc_period_s == pytest.approx(1.0 / 400e6)

    def test_cycle_conversions(self):
        channel = ATEChannel(f_ate_hz=100e6, p=4)
        # 400 SoC cycles at 400 MHz = 1 us
        assert channel.seconds_from_soc_cycles(400) == pytest.approx(1e-6)
        # 100 ATE cycles at 100 MHz = 1 us
        assert channel.seconds_from_ate_cycles(100) == pytest.approx(1e-6)

    def test_uncompressed_baseline(self):
        channel = ATEChannel(f_ate_hz=1e6, p=8)
        assert channel.uncompressed_time_s(1000) == pytest.approx(1e-3)

    def test_consistency_with_tat_model(self):
        """t_nocomp through the channel equals the TAT model's baseline."""
        from repro.analysis import analyze
        from repro.testdata import load_benchmark

        stream = load_benchmark("s5378", fraction=0.2).to_stream()
        report = analyze(stream, 8, 8)
        channel = ATEChannel(f_ate_hz=50e6, p=8)
        assert channel.seconds_from_ate_cycles(
            report.t_nocomp_ate_cycles
        ) == pytest.approx(channel.uncompressed_time_s(len(stream)))
