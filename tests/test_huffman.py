"""Unit tests for the canonical Huffman substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes import HuffmanCode, canonical_codes, huffman_code_lengths


class TestLengths:
    def test_empty(self):
        assert huffman_code_lengths({}) == {}

    def test_zero_frequencies_excluded(self):
        assert huffman_code_lengths({"a": 5, "b": 0}) == {"a": 1}

    def test_single_symbol_gets_one_bit(self):
        assert huffman_code_lengths({"a": 10}) == {"a": 1}

    def test_two_symbols(self):
        lengths = huffman_code_lengths({"a": 9, "b": 1})
        assert lengths == {"a": 1, "b": 1}

    def test_skewed_distribution(self):
        lengths = huffman_code_lengths({"a": 8, "b": 4, "c": 2, "d": 1})
        assert lengths["a"] == 1
        assert lengths["b"] == 2
        assert lengths["c"] == 3
        assert lengths["d"] == 3

    def test_kraft_equality(self):
        lengths = huffman_code_lengths({s: f for s, f in
                                        zip("abcdefg", (13, 11, 7, 5, 3, 2, 1))})
        assert sum(2.0 ** -l for l in lengths.values()) == pytest.approx(1.0)

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 1000),
                           min_size=2, max_size=20))
    def test_optimality_vs_entropy(self, freqs):
        import math

        lengths = huffman_code_lengths(freqs)
        total = sum(freqs.values())
        entropy = -sum(
            f / total * math.log2(f / total) for f in freqs.values()
        )
        avg = sum(lengths[s] * f for s, f in freqs.items()) / total
        assert entropy <= avg + 1e-9 <= entropy + 1 + 1e-9


class TestCanonicalCodes:
    def test_respects_lengths(self):
        codes = canonical_codes({"a": 1, "b": 2, "c": 2})
        assert len(codes["a"]) == 1
        assert len(codes["b"]) == 2

    def test_prefix_free(self):
        codes = canonical_codes({"a": 1, "b": 3, "c": 3, "d": 3, "e": 3})
        words = list(codes.values())
        for i, w1 in enumerate(words):
            for j, w2 in enumerate(words):
                if i != j:
                    assert w1[: len(w2)] != w2

    def test_kraft_violation_rejected(self):
        with pytest.raises(ValueError):
            canonical_codes({"a": 1, "b": 1, "c": 1})


class TestHuffmanCode:
    def make(self):
        return HuffmanCode.from_frequencies({"a": 10, "b": 5, "c": 2, "d": 1})

    def test_encode_decode_symbol(self):
        code = self.make()
        for sym in "abcd":
            bits = iter(code.encode_symbol(sym))
            assert code.decode_symbol(lambda: next(bits)) == sym

    def test_encode_decode_sequence(self):
        code = self.make()
        seq = list("abacabdca")
        bits = code.encode(seq)
        assert code.decode(bits, len(seq)) == seq

    def test_invalid_codeword_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode({"a": (0,), "b": (0, 1)})

    def test_empty_codeword_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode({"a": ()})

    def test_expected_length(self):
        code = HuffmanCode({"a": (0,), "b": (1, 0), "c": (1, 1)})
        assert code.expected_length({"a": 2, "b": 1, "c": 1}) == pytest.approx(1.5)

    def test_expected_length_empty(self):
        code = HuffmanCode({"a": (0,)})
        assert code.expected_length({}) == 0.0

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=200))
    def test_roundtrip_property(self, seq):
        from collections import Counter

        code = HuffmanCode.from_frequencies(Counter(seq))
        assert code.decode(code.encode(seq), len(seq)) == seq
