"""Unit tests for decoder-complexity models."""

import pytest

from repro.codes import (
    DictionaryCode,
    EFDRCode,
    FDRCode,
    GolombCode,
    NineCCode,
    SelectiveHuffmanCode,
    VIHCCode,
)
from repro.codes.complexity import DecoderComplexity, decoder_complexity
from repro.core import TernaryVector


def sample():
    return TernaryVector("0000000100101" * 10)


class TestNineC:
    def test_fixed_profile(self):
        profile = decoder_complexity(NineCCode(8), sample())
        assert profile.codewords == 9
        assert profile.max_codeword_bits == 5
        assert profile.table_bits == 0
        assert profile.test_set_independent

    def test_independent_of_data(self):
        a = decoder_complexity(NineCCode(8), sample())
        b = decoder_complexity(NineCCode(8), TernaryVector("1" * 100))
        assert a == b


class TestRunLengthCodes:
    def test_golomb_window_tracks_longest_run(self):
        short = decoder_complexity(GolombCode(4), TernaryVector("0001" * 8))
        longer = decoder_complexity(
            GolombCode(4), TernaryVector("0" * 64 + "1")
        )
        assert longer.max_codeword_bits > short.max_codeword_bits
        assert short.table_bits == 0

    def test_fdr_window_tracks_longest_run(self):
        short = decoder_complexity(FDRCode(), TernaryVector("0001" * 8))
        longer = decoder_complexity(FDRCode(), TernaryVector("0" * 200 + "1"))
        assert longer.max_codeword_bits > short.max_codeword_bits
        assert longer.codewords > short.codewords


class TestTableCodes:
    def test_vihc_has_table(self):
        profile = decoder_complexity(VIHCCode(8), sample())
        assert profile.table_bits > 0
        assert not profile.test_set_independent
        assert profile.codewords <= 9  # mh + 1

    def test_selective_huffman_table_scales_with_patterns(self):
        small = decoder_complexity(
            SelectiveHuffmanCode(b=4, n=2), sample()
        )
        large = decoder_complexity(
            SelectiveHuffmanCode(b=4, n=8), sample()
        )
        assert large.table_bits >= small.table_bits

    def test_dictionary_table(self):
        profile = decoder_complexity(DictionaryCode(b=8, d=4), sample())
        assert profile.table_bits > 0
        assert profile.codewords == 2


class TestDispatch:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            decoder_complexity(EFDRCode(), sample())

    def test_dataclass_fields(self):
        profile = DecoderComplexity("x", 1, 2, 3)
        assert not profile.test_set_independent
