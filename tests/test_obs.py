"""Tests for the repro.obs observability subsystem."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.core.bitvec import TernaryVector
from repro.core.encoder import NineCEncoder
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import (
    SCENARIOS,
    run_profile,
    scrub_volatile,
    validate_baseline,
)
from repro.obs.tracing import Tracer, traced


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with obs disabled and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accuracy(self):
        registry = MetricsRegistry()
        counter = registry.counter("bits")
        for amount in (1, 5, 0, 7):
            counter.inc(amount)
        assert registry.counter("bits").value == 13
        assert registry.snapshot()["counters"] == {"bits": 13}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        registry.gauge("depth").set(2)
        assert registry.snapshot()["gauges"] == {"depth": 2}

    def test_histogram_bucket_placement(self):
        hist = Histogram("h", (1, 2, 5))
        for value in (0, 1, 2, 3, 5, 6, 100):
            hist.observe(value)
        assert hist.bucket_dict() == {"<=1": 2, "<=2": 1, "<=5": 2, "+inf": 2}
        assert hist.count == 7
        assert hist.sum == 117

    def test_histogram_weighted_observe(self):
        hist = Histogram("h", (10,))
        hist.observe(3, weight=4)
        assert hist.count == 4
        assert hist.sum == 12
        assert hist.bucket_dict()["<=10"] == 4

    def test_histogram_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2, 2))
        with pytest.raises(ValueError):
            Histogram("h", (3, 1))

    def test_histogram_requires_bounds_on_create(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("lat")
        registry.histogram("lat", (1, 2))
        # later lookups may omit or must match the bounds
        assert registry.histogram("lat").bounds == (1, 2)
        with pytest.raises(ValueError):
            registry.histogram("lat", (1, 3))

    def test_name_collision_across_kinds(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x", (1,))

    def test_count_cases_folds_dict(self):
        from repro.core.codewords import BlockCase

        registry = MetricsRegistry()
        registry.count_cases("enc", {BlockCase.C1: 3, BlockCase.C9: 0,
                                     BlockCase.C2: 1})
        counters = registry.snapshot()["counters"]
        assert counters == {"enc.C1": 3, "enc.C2": 1}  # zero counts skipped

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b", (1,)).observe(0)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


# ----------------------------------------------------------------------
class TestTracing:
    def test_span_tree_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        tree = tracer.tree()
        assert tree["outer"]["calls"] == 1
        assert tree["outer"]["children"]["inner"]["calls"] == 2
        assert tree["outer"]["wall_s"] >= \
            tree["outer"]["children"]["inner"]["wall_s"]

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tree = tracer.tree()
        assert set(tree) == {"a", "b"}
        assert "children" not in tree["a"]

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # both spans recorded and the stack unwound completely
        tree = tracer.tree()
        assert tree["outer"]["calls"] == 1
        assert tree["outer"]["children"]["inner"]["calls"] == 1
        assert tracer.depth == 0
        # tracer still usable: new spans attach at the root
        with tracer.span("after"):
            pass
        assert "after" in tracer.tree()

    def test_traced_decorator_records_when_enabled(self):
        calls = []

        @traced("work.unit")
        def unit(x):
            calls.append(x)
            return x * 2

        assert unit(2) == 4  # disabled: straight call
        assert obs.get_tracer().tree() == {}
        obs.enable()
        assert unit(3) == 6
        assert obs.get_tracer().tree()["work.unit"]["calls"] == 1
        assert calls == [2, 3]

    def test_obs_span_noop_when_disabled(self):
        with obs.span("invisible"):
            pass
        assert obs.get_tracer().tree() == {}
        obs.enable()
        with obs.span("visible"):
            pass
        assert "visible" in obs.get_tracer().tree()


# ----------------------------------------------------------------------
class TestPipelineInstrumentation:
    def test_encode_records_metrics_and_span(self):
        obs.enable()
        data = TernaryVector("00000000" + "11111111" + "0110X01X")
        encoding = NineCEncoder(8).encode(data)
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["encode.calls"] == 1
        assert counters["encode.bits_in"] == 24
        assert counters["encode.bits_out"] == encoding.compressed_size
        assert counters["encode.blocks.C1"] == 1
        assert counters["encode.blocks.C2"] == 1
        assert counters["encode.blocks.C9"] == 1
        hist = obs.get_registry().snapshot()["histograms"]
        assert hist["encode.codeword_length"]["count"] == 3
        assert "encode" in obs.get_tracer().tree()

    def test_decode_records_metrics(self):
        from repro.core.decoder import NineCDecoder

        obs.enable()
        data = TernaryVector("00000000" * 4)
        encoding = NineCEncoder(8).encode(data)
        obs.reset()
        decoded = NineCDecoder(8).decode_stream(encoding.stream, 32)
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["decode.calls"] == 1
        assert counters["decode.bits_out"] == len(decoded) == 32
        assert counters["decode.blocks"] == 4

    def test_disabled_records_nothing(self):
        NineCEncoder(8).encode(TernaryVector("01100110"))
        assert obs.get_registry().snapshot()["counters"] == {}
        assert obs.get_tracer().tree() == {}


# ----------------------------------------------------------------------
class TestProfileHarness:
    def test_s27_profile_all_scenarios(self, tmp_path):
        report = run_profile("s27", resilience_trials=2)
        assert set(report.scenarios) == set(SCENARIOS)
        compress = report.scenarios["compress"]
        assert compress.bits > 0 and compress.bits_per_s > 0
        assert "encode" in compress.spans
        assert compress.metrics["counters"]["encode.calls"] == 1
        session = report.scenarios["session"]
        assert "session.prepare" in session.spans
        assert "encode" in session.spans["session.prepare"]["children"]
        # fast-path comparison rides along and verifies equivalence
        assert report.encode_fastpath["identical_output"] is True
        path = report.write(tmp_path / "BENCH_obs.json")
        assert validate_baseline(
            __import__("json").loads(path.read_text()),
            required_scenarios=SCENARIOS,
        ) == []

    def test_profile_leaves_obs_disabled(self):
        assert not obs.enabled()
        run_profile("s27", scenarios=("compress",), fastpath_compare=False)
        assert not obs.enabled()
        assert obs.get_registry().snapshot()["counters"] == {}

    def test_two_runs_identical_modulo_walltime(self):
        kwargs = dict(scenarios=("compress", "decompress", "decode"),
                      fastpath_compare=False)
        first = run_profile("s27", **kwargs).to_dict()
        second = run_profile("s27", **kwargs).to_dict()
        assert first != second or first == second  # wall_s may coincide
        assert scrub_volatile(first) == scrub_volatile(second)

    def test_decode_scenario_records_fastpath_comparison(self):
        report = run_profile("s27", scenarios=("decode",),
                             fastpath_compare=False)
        decode = report.scenarios["decode"]
        assert decode.bits > 0
        assert "decode.stream" in decode.spans
        counters = decode.metrics["counters"]
        assert counters["decode.calls"] == 1
        assert counters["decode.fast_calls"] == 1
        extra = decode.extra
        assert extra["identical_output"] is True
        assert extra["speedup"] > 0
        assert extra["vectorized_wall_s"] > 0
        assert extra["reference_wall_s"] > 0

    def test_decompress_scenario_reference_path(self):
        report = run_profile("s27", scenarios=("decompress",),
                             fastpath_compare=False, decode_fast=False)
        counters = report.scenarios["decompress"].metrics["counters"]
        assert counters["decode.reference_calls"] == 1
        assert "decode.fast_calls" not in counters
        assert report.scenarios["decompress"].extra["fast"] is False

    def test_benchmark_target_uses_surrogate_session_circuit(self):
        report = run_profile("s5378", scenarios=("compress",),
                             fastpath_compare=False)
        assert report.target == "s5378"
        assert report.session_circuit == "g64"
        assert report.scenarios["compress"].bits == 23754  # |T_D| of s5378

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            run_profile("not-a-circuit")
        with pytest.raises(ValueError):
            run_profile("s27", scenarios=("compress", "nope"))

    def test_validate_baseline_flags_problems(self):
        assert validate_baseline({}) != []
        good = run_profile("s27", scenarios=("compress",),
                           fastpath_compare=False).to_dict()
        assert validate_baseline(good) == []
        assert validate_baseline(good, required_scenarios=("session",)) != []
        broken = scrub_volatile(good)
        del broken["scenarios"]["compress"]["metrics"]
        assert any("metrics" in p for p in validate_baseline(broken))


# ----------------------------------------------------------------------
class TestThreadSafety:
    """Concurrent recording must not lose updates or tear snapshots."""

    THREADS = 8
    PER_THREAD = 2_000

    def _hammer(self, work):
        import sys
        import threading

        errors = []

        def runner():
            try:
                work()
            except Exception as exc:  # propagated to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=runner)
                   for _ in range(self.THREADS)]
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent preemption
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(interval)
        assert errors == []

    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def work():
            counter = registry.counter("hammered")
            for _ in range(self.PER_THREAD):
                counter.inc()

        self._hammer(work)
        expected = self.THREADS * self.PER_THREAD
        assert registry.counter("hammered").value == expected

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()

        def work():
            hist = registry.histogram("hist", bounds=(1, 2, 4))
            for i in range(self.PER_THREAD):
                hist.observe(i % 6)

        self._hammer(work)
        hist = registry.histogram("hist")
        assert hist.count == self.THREADS * self.PER_THREAD
        assert sum(hist.counts) + hist.overflow == hist.count

    def test_snapshot_and_reset_race_safely(self):
        registry = MetricsRegistry()
        registry.counter("seed").inc()

        def work():
            for i in range(200):
                registry.counter("churn").inc()
                registry.gauge("level").set(i)
                snap = registry.snapshot()
                assert set(snap) == {"counters", "gauges", "histograms"}
                if i % 50 == 0:
                    registry.reset()

        self._hammer(work)

    def test_obs_reset_is_thread_safe(self):
        def work():
            for _ in range(200):
                obs.counter("reset.race").inc()
                obs.reset()

        self._hammer(work)
        obs.reset()
        assert obs.get_registry().snapshot()["counters"] == {}


# ----------------------------------------------------------------------
class TestDisabledOverheadGuard:
    def test_disabled_overhead_under_5_percent_on_1mbit_encode(self):
        """The ISSUE's acceptance bound: instrumented-but-disabled encode
        must stay within 5% of the hook-free control path on 1 Mbit.

        ``encode`` is the instrumented entry (one enabled() check plus a
        null span per call); ``_encode_fast`` is the identical hook-free
        control.  Timings take the min of interleaved repeats to shed
        scheduler noise, and the whole measurement retries a few times
        before failing so a transiently loaded machine cannot flake it.
        """
        rng = np.random.default_rng(99)
        data = TernaryVector(
            rng.choice([0, 1, 2], size=1_000_000,
                       p=[0.25, 0.15, 0.6]).astype(np.uint8)
        )
        encoder = NineCEncoder(8)
        encoder.encode(data)  # warm caches before timing
        assert not obs.enabled()

        def measure():
            hooked, control = [], []
            for _ in range(3):
                start = time.perf_counter()
                encoder.encode(data)
                hooked.append(time.perf_counter() - start)
                start = time.perf_counter()
                encoder._encode_fast(data)
                control.append(time.perf_counter() - start)
            return min(hooked), min(control)

        for _attempt in range(3):
            hooked_s, control_s = measure()
            if hooked_s <= control_s * 1.05:
                break
        else:
            pytest.fail(
                f"disabled-instrumentation overhead too high after 3 "
                f"measurement rounds: hooked={hooked_s:.4f}s "
                f"control={control_s:.4f}s"
            )
