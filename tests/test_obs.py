"""Tests for the repro.obs observability subsystem."""

from __future__ import annotations

import copy
import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.bitvec import TernaryVector
from repro.core.encoder import NineCEncoder
from repro.obs import log as oblog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import (
    SCENARIOS,
    run_profile,
    scrub_volatile,
    validate_baseline,
)
from repro.obs.regress import (
    TRAJECTORY_SCHEMA_VERSION,
    append_trajectory,
    compare_to_baseline,
    load_trajectory,
    run_regress,
    validate_trajectory,
)
from repro.obs.tracing import Tracer, capture_events, get_tracer, traced


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with obs disabled and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accuracy(self):
        registry = MetricsRegistry()
        counter = registry.counter("bits")
        for amount in (1, 5, 0, 7):
            counter.inc(amount)
        assert registry.counter("bits").value == 13
        assert registry.snapshot()["counters"] == {"bits": 13}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        registry.gauge("depth").set(2)
        assert registry.snapshot()["gauges"] == {"depth": 2}

    def test_histogram_bucket_placement(self):
        hist = Histogram("h", (1, 2, 5))
        for value in (0, 1, 2, 3, 5, 6, 100):
            hist.observe(value)
        assert hist.bucket_dict() == {"<=1": 2, "<=2": 1, "<=5": 2, "+inf": 2}
        assert hist.count == 7
        assert hist.sum == 117

    def test_histogram_weighted_observe(self):
        hist = Histogram("h", (10,))
        hist.observe(3, weight=4)
        assert hist.count == 4
        assert hist.sum == 12
        assert hist.bucket_dict()["<=10"] == 4

    def test_histogram_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2, 2))
        with pytest.raises(ValueError):
            Histogram("h", (3, 1))

    def test_histogram_requires_bounds_on_create(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("lat")
        registry.histogram("lat", (1, 2))
        # later lookups may omit or must match the bounds
        assert registry.histogram("lat").bounds == (1, 2)
        with pytest.raises(ValueError):
            registry.histogram("lat", (1, 3))

    def test_name_collision_across_kinds(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x", (1,))

    def test_count_cases_folds_dict(self):
        from repro.core.codewords import BlockCase

        registry = MetricsRegistry()
        registry.count_cases("enc", {BlockCase.C1: 3, BlockCase.C9: 0,
                                     BlockCase.C2: 1})
        counters = registry.snapshot()["counters"]
        assert counters == {"enc.C1": 3, "enc.C2": 1}  # zero counts skipped

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b", (1,)).observe(0)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


# ----------------------------------------------------------------------
class TestTracing:
    def test_span_tree_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        tree = tracer.tree()
        assert tree["outer"]["calls"] == 1
        assert tree["outer"]["children"]["inner"]["calls"] == 2
        assert tree["outer"]["wall_s"] >= \
            tree["outer"]["children"]["inner"]["wall_s"]

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tree = tracer.tree()
        assert set(tree) == {"a", "b"}
        assert "children" not in tree["a"]

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # both spans recorded and the stack unwound completely
        tree = tracer.tree()
        assert tree["outer"]["calls"] == 1
        assert tree["outer"]["children"]["inner"]["calls"] == 1
        assert tracer.depth == 0
        # tracer still usable: new spans attach at the root
        with tracer.span("after"):
            pass
        assert "after" in tracer.tree()

    def test_traced_decorator_records_when_enabled(self):
        calls = []

        @traced("work.unit")
        def unit(x):
            calls.append(x)
            return x * 2

        assert unit(2) == 4  # disabled: straight call
        assert obs.get_tracer().tree() == {}
        obs.enable()
        assert unit(3) == 6
        assert obs.get_tracer().tree()["work.unit"]["calls"] == 1
        assert calls == [2, 3]

    def test_obs_span_noop_when_disabled(self):
        with obs.span("invisible"):
            pass
        assert obs.get_tracer().tree() == {}
        obs.enable()
        with obs.span("visible"):
            pass
        assert "visible" in obs.get_tracer().tree()


# ----------------------------------------------------------------------
class TestHistogramQuantile:
    def test_quantile_rejects_out_of_range(self):
        hist = Histogram("h", (1, 2))
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_histogram_returns_zero(self):
        assert Histogram("h", (1, 2)).quantile(0.5) == 0.0

    def test_quantile_interpolates_bucket_tops(self):
        hist = Histogram("h", (1, 2, 4, 8))
        for value in (0.5, 1.5, 3.0, 6.0):  # one per bucket
            hist.observe(value)
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.50) == 2.0
        assert hist.quantile(1.00) == 8.0

    def test_quantile_interpolates_within_a_bucket(self):
        hist = Histogram("h", (100,))
        for _ in range(10):
            hist.observe(50)
        # all mass sits in [0, 100]; the median interpolates halfway
        assert hist.quantile(0.5) == pytest.approx(50.0)
        assert hist.quantile(0.1) == pytest.approx(10.0)

    def test_overflow_clamps_to_top_bound(self):
        hist = Histogram("h", (1, 2))
        for _ in range(10):
            hist.observe(100)
        assert hist.quantile(0.99) == 2.0

    def test_quantile_tracks_true_percentile_on_uniform_data(self):
        bounds = tuple(range(10, 1010, 10))
        hist = Histogram("h", bounds)
        rng = np.random.default_rng(7)
        values = rng.uniform(0, 1000, size=5_000)
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.95, 0.99):
            true = float(np.quantile(values, q))
            assert hist.quantile(q) == pytest.approx(true, rel=0.05)


# ----------------------------------------------------------------------
class TestInterleavedSpans:
    """Non-LIFO span lifetimes, as interleaved asyncio handlers on one
    loop thread produce: request A's span closes while request B's span
    (opened later) is still running.  A pop-the-top stack would pop B's
    frame when A exits, attributing B's remaining time to the wrong
    parent and corrupting every span that follows."""

    def test_out_of_order_close_keeps_stack_sane(self):
        tracer = Tracer()
        ctx_a = tracer.span("req.a")
        ctx_b = tracer.span("req.b")
        ctx_a.__enter__()
        ctx_b.__enter__()                 # b nests under a
        ctx_a.__exit__(None, None, None)  # a closes first (non-LIFO)
        assert tracer.depth == 1          # b still open, untouched
        ctx_b.__exit__(None, None, None)
        assert tracer.depth == 0
        tree = tracer.tree()
        assert tree["req.a"]["calls"] == 1
        assert tree["req.a"]["children"]["req.b"]["calls"] == 1
        # the tracer stays usable: new spans attach at the root
        with tracer.span("after"):
            pass
        assert "after" in tracer.tree()

    def test_interleaved_events_keep_parent_links(self):
        tracer = Tracer(record_events=True)
        ctx_a = tracer.span("a")
        ctx_b = tracer.span("b")
        ctx_a.__enter__()
        ctx_b.__enter__()
        ctx_a.__exit__(None, None, None)
        with tracer.span("c"):  # opens while only b remains open
            pass
        ctx_b.__exit__(None, None, None)
        by_name = {ev["name"]: ev for ev in tracer.events()}
        assert by_name["a"]["parent"] == 0
        assert by_name["b"]["parent"] == by_name["a"]["id"]
        assert by_name["c"]["parent"] == by_name["b"]["id"]

    def test_pop_after_reset_is_a_noop(self):
        tracer = Tracer()
        ctx = tracer.span("orphan")
        ctx.__enter__()
        tracer.reset()
        ctx.__exit__(None, None, None)  # frame gone: must not raise
        assert tracer.depth == 0


# ----------------------------------------------------------------------
class TestSpanEvents:
    def test_events_record_close_order_and_parents(self):
        tracer = Tracer(record_events=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = tracer.events()
        # children close before parents
        assert [ev["name"] for ev in events] == ["inner", "outer"]
        inner, outer = events
        assert inner["parent"] == outer["id"]
        assert outer["parent"] == 0
        assert inner["ts"] >= outer["ts"]
        assert inner["dur"] <= outer["dur"]

    def test_event_cap_counts_drops_but_keeps_aggregate(self):
        tracer = Tracer(record_events=True, max_events=3)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.events()) == 3
        assert tracer.events_dropped == 2
        assert tracer.tree()["s"]["calls"] == 5

    def test_graft_events_rebases_ids_times_and_tree(self):
        worker = Tracer(record_events=True)
        with worker.span("worker.outer"):
            with worker.span("worker.inner"):
                pass
        shipped = worker.events()

        service = Tracer(record_events=True)
        with service.span("request"):
            assert service.graft_events(shipped, offset_s=1.0) == 2
        # aggregate tree: worker subtree hangs under the request span
        tree = service.tree()
        outer = tree["request"]["children"]["worker.outer"]
        assert outer["calls"] == 1
        assert outer["children"]["worker.inner"]["calls"] == 1
        # events: foreign ids remapped, foreign root re-parented onto
        # the open request span, timestamps shifted by the anchor
        by_name = {ev["name"]: ev for ev in service.events()}
        assert by_name["worker.outer"]["parent"] == by_name["request"]["id"]
        assert (by_name["worker.inner"]["parent"]
                == by_name["worker.outer"]["id"])
        assert by_name["worker.outer"]["ts"] >= 1.0

    def test_graft_defaults_to_current_span_start_anchor(self):
        service = Tracer(record_events=True)
        worker = Tracer(record_events=True)
        with worker.span("work"):
            time.sleep(0.001)
        with service.span("request"):
            time.sleep(0.001)
            anchor = service.current_span_start_s()
            service.graft_events(worker.events())
        by_name = {ev["name"]: ev for ev in service.events()}
        # the grafted span cannot start before its enclosing span did
        assert by_name["work"]["ts"] >= anchor
        assert by_name["work"]["ts"] >= by_name["request"]["ts"]

    def test_chrome_trace_structure(self):
        tracer = Tracer(record_events=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        doc = tracer.to_chrome_trace(name="req-1")
        assert doc["displayTimeUnit"] == "ms"
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert meta[0]["args"]["name"] == "req-1"
        assert {ev["name"] for ev in spans} == {"a", "b"}
        lane_a = next(ev for ev in spans if ev["name"] == "a")
        lane_b = next(ev for ev in spans if ev["name"] == "b")
        assert lane_a["ts"] <= lane_b["ts"]  # parent opened first
        for ev in spans:
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        json.dumps(doc)  # must be plain-JSON serializable

    def test_capture_events_isolates_worker_thread(self):
        import threading

        obs.enable()
        main_tracer = obs.get_tracer()
        seen: dict = {}

        def worker():
            with capture_events() as tracer:
                assert get_tracer() is tracer
                with obs.span("worker.only"):
                    pass
                seen["events"] = tracer.events()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert [ev["name"] for ev in seen["events"]] == ["worker.only"]
        # the process-wide tracer never saw the captured span, and the
        # worker thread's override did not leak into this thread
        assert "worker.only" not in main_tracer.tree()
        assert obs.get_tracer() is main_tracer


# ----------------------------------------------------------------------
class TestStructuredLog:
    def test_off_by_default_and_capture_restores(self):
        assert not oblog.enabled()
        oblog.info("should.vanish")  # disabled: silent no-op
        with oblog.capture() as records:
            oblog.info("hello", x=1)
            # the list fills live, inside the with-block
            assert records[-1]["event"] == "hello"
            assert records[-1]["x"] == 1
            assert records[-1]["level"] == "info"
            assert "ts" in records[-1]
        assert not oblog.enabled()

    def test_level_threshold_filters(self):
        with oblog.capture(level="warning") as records:
            oblog.debug("d")
            oblog.info("i")
            oblog.warning("w")
            oblog.error("e")
        assert [r["event"] for r in records] == ["w", "e"]

    def test_bind_correlation_nesting_and_override(self):
        with oblog.capture() as records:
            with oblog.bind(request_id="r1", op="compress"):
                oblog.info("inner")
                with oblog.bind(op="decompress"):
                    oblog.info("nested", op="explicit")
            oblog.info("outer")
        inner, nested, outer = records
        assert inner["request_id"] == "r1" and inner["op"] == "compress"
        assert nested["request_id"] == "r1"
        assert nested["op"] == "explicit"  # call-site fields win
        assert "request_id" not in outer   # bind scope ended

    def test_non_serializable_field_falls_back_to_str(self):
        with oblog.capture() as records:
            oblog.info("obj", thing=object())
        assert records[0]["thing"].startswith("<object object")

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            oblog.configure(level="loud")

    def test_stream_error_logs_localization_context(self):
        from repro.core.errors import CodewordDesyncError

        with oblog.capture() as records:
            with pytest.raises(CodewordDesyncError):
                raise CodewordDesyncError("lost sync", bit_offset=17,
                                          block_index=2)
        assert records[0]["event"] == "stream.error"
        assert records[0]["level"] == "warning"
        assert records[0]["type"] == "CodewordDesyncError"
        assert records[0]["bit_offset"] == 17
        assert records[0]["block_index"] == 2

    def test_stream_error_is_silent_when_logging_off(self):
        from repro.core.errors import TruncatedStreamError

        assert not oblog.enabled()
        with pytest.raises(TruncatedStreamError):
            raise TruncatedStreamError("short", bit_offset=3)


# ----------------------------------------------------------------------
def _profile_dict():
    return run_profile("s27", scenarios=("compress",),
                       fastpath_compare=False).to_dict()


class TestRegressGate:
    def test_self_comparison_passes(self):
        base = _profile_dict()
        comparisons = compare_to_baseline(base, [base], tolerance=0.5)
        assert comparisons and not any(
            c.regressed for c in comparisons.values()
        )

    def test_ten_x_degradation_trips_the_gate(self):
        base = _profile_dict()
        degraded = copy.deepcopy(base)
        for record in degraded["scenarios"].values():
            record["wall_s"] /= 10.0  # baseline pretends to be 10x faster
        comparisons = compare_to_baseline(degraded, [base], tolerance=1.0)
        assert comparisons["compress"].regressed
        assert "exceeds baseline" in comparisons["compress"].note
        assert comparisons["compress"].ratio > 2.0

    def test_median_of_repeats_shrugs_off_one_outlier(self):
        base = _profile_dict()
        slow = copy.deepcopy(base)
        slow["scenarios"]["compress"]["wall_s"] *= 100
        comparisons = compare_to_baseline(base, [base, slow, base],
                                          tolerance=0.5)
        assert not comparisons["compress"].regressed

    def test_scenario_missing_from_fresh_is_skipped_not_failed(self):
        base = _profile_dict()
        fresh = copy.deepcopy(base)
        del fresh["scenarios"]["compress"]
        comparisons = compare_to_baseline(base, [fresh])
        assert comparisons["compress"].regressed is False
        assert "skipped" in comparisons["compress"].note

    def test_speedup_ratio_guard(self):
        base = {"scenarios": {}, "encode_fastpath": {"speedup": 10.0}}
        fine = {"scenarios": {}, "encode_fastpath": {"speedup": 9.0}}
        collapsed = {"scenarios": {}, "encode_fastpath": {"speedup": 0.5}}
        ok = compare_to_baseline(base, [fine], tolerance=0.5)
        assert not ok["encode_fastpath"].regressed
        bad = compare_to_baseline(base, [collapsed], tolerance=0.5)
        assert bad["encode_fastpath"].regressed
        assert "fell below" in bad["encode_fastpath"].note

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_to_baseline({"scenarios": {}}, [{}], tolerance=-0.1)
        with pytest.raises(ValueError):
            compare_to_baseline({"scenarios": {}}, [])

    def test_run_regress_end_to_end_appends_trajectory(self, tmp_path):
        report = run_profile("s27", scenarios=("compress",),
                             fastpath_compare=False)
        baseline_path = report.write(tmp_path / "BENCH_obs.json")
        trajectory_path = tmp_path / "BENCH_trajectory.json"
        result = run_regress(baseline_path, repeats=1,
                             scenarios=("compress",),
                             trajectory_path=trajectory_path)
        assert result.regressed is False
        assert result.target == "s27"
        payload = json.loads(trajectory_path.read_text())
        assert validate_trajectory(payload) == []
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["target"] == "s27"
        assert entry["scenarios"]["compress"]["regressed"] is False
        # a second run appends, never overwrites
        run_regress(baseline_path, repeats=1, scenarios=("compress",),
                    trajectory_path=trajectory_path)
        assert len(load_trajectory(trajectory_path)["entries"]) == 2

    def test_run_regress_rejects_missing_or_invalid_baseline(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            run_regress(tmp_path / "nope.json", repeats=1,
                        trajectory_path=None)
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema_version": 1}')
        with pytest.raises(ValueError, match="schema"):
            run_regress(bad, repeats=1, trajectory_path=None)

    def test_run_regress_rejects_bad_repeats(self, tmp_path):
        with pytest.raises(ValueError, match="repeats"):
            run_regress(tmp_path / "whatever.json", repeats=0,
                        trajectory_path=None)


# ----------------------------------------------------------------------
class TestTrajectorySchema:
    def test_missing_file_yields_empty_skeleton(self, tmp_path):
        payload = load_trajectory(tmp_path / "none.json")
        assert payload == {"schema_version": TRAJECTORY_SCHEMA_VERSION,
                           "entries": []}

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trajectory(path)

    def test_old_schema_version_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema_version": 0, "entries": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_trajectory(path)

    def test_validate_flags_shape_problems(self):
        assert validate_trajectory([]) != []
        assert any("schema_version" in p
                   for p in validate_trajectory({"entries": []}))
        assert any("entries" in p for p in validate_trajectory(
            {"schema_version": TRAJECTORY_SCHEMA_VERSION}))
        missing_scenario_keys = {
            "schema_version": TRAJECTORY_SCHEMA_VERSION,
            "entries": [{"timestamp": 1.0, "target": "s27", "k": 8,
                         "regressed": False,
                         "scenarios": {"compress": {"ratio": 1.0}}}],
        }
        problems = validate_trajectory(missing_scenario_keys)
        assert any("baseline_wall_s" in p for p in problems)

    def test_append_refuses_invalid_entry_and_leaves_no_file(self, tmp_path):
        path = tmp_path / "t.json"
        with pytest.raises(ValueError, match="invalid trajectory"):
            append_trajectory(path, {"nope": True})
        assert not path.exists()

    def test_scrub_volatile_covers_trajectory_entries(self):
        entry = {
            "timestamp": 123.4, "target": "s27", "k": 8,
            "tolerance": 1.0, "repeats": 3, "regressed": False,
            "scenarios": {"compress": {
                "baseline_wall_s": 0.1, "fresh_wall_s": 0.2,
                "ratio": 2.0, "regressed": False,
            }},
        }
        scrubbed = scrub_volatile(entry)
        assert scrubbed["timestamp"] == 0
        record = scrubbed["scenarios"]["compress"]
        assert record["baseline_wall_s"] == 0
        assert record["fresh_wall_s"] == 0
        assert record["ratio"] == 0
        # non-volatile fields survive untouched
        assert scrubbed["target"] == "s27"
        assert record["regressed"] is False


# ----------------------------------------------------------------------
class TestPipelineInstrumentation:
    def test_encode_records_metrics_and_span(self):
        obs.enable()
        data = TernaryVector("00000000" + "11111111" + "0110X01X")
        encoding = NineCEncoder(8).encode(data)
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["encode.calls"] == 1
        assert counters["encode.bits_in"] == 24
        assert counters["encode.bits_out"] == encoding.compressed_size
        assert counters["encode.blocks.C1"] == 1
        assert counters["encode.blocks.C2"] == 1
        assert counters["encode.blocks.C9"] == 1
        hist = obs.get_registry().snapshot()["histograms"]
        assert hist["encode.codeword_length"]["count"] == 3
        assert "encode" in obs.get_tracer().tree()

    def test_decode_records_metrics(self):
        from repro.core.decoder import NineCDecoder

        obs.enable()
        data = TernaryVector("00000000" * 4)
        encoding = NineCEncoder(8).encode(data)
        obs.reset()
        decoded = NineCDecoder(8).decode_stream(encoding.stream, 32)
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["decode.calls"] == 1
        assert counters["decode.bits_out"] == len(decoded) == 32
        assert counters["decode.blocks"] == 4

    def test_disabled_records_nothing(self):
        NineCEncoder(8).encode(TernaryVector("01100110"))
        assert obs.get_registry().snapshot()["counters"] == {}
        assert obs.get_tracer().tree() == {}


# ----------------------------------------------------------------------
class TestProfileHarness:
    def test_s27_profile_all_scenarios(self, tmp_path):
        report = run_profile("s27", resilience_trials=2)
        assert set(report.scenarios) == set(SCENARIOS)
        compress = report.scenarios["compress"]
        assert compress.bits > 0 and compress.bits_per_s > 0
        assert "encode" in compress.spans
        assert compress.metrics["counters"]["encode.calls"] == 1
        session = report.scenarios["session"]
        assert "session.prepare" in session.spans
        assert "encode" in session.spans["session.prepare"]["children"]
        # fast-path comparison rides along and verifies equivalence
        assert report.encode_fastpath["identical_output"] is True
        path = report.write(tmp_path / "BENCH_obs.json")
        assert validate_baseline(
            __import__("json").loads(path.read_text()),
            required_scenarios=SCENARIOS,
        ) == []

    def test_profile_leaves_obs_disabled(self):
        assert not obs.enabled()
        run_profile("s27", scenarios=("compress",), fastpath_compare=False)
        assert not obs.enabled()
        assert obs.get_registry().snapshot()["counters"] == {}

    def test_two_runs_identical_modulo_walltime(self):
        kwargs = dict(scenarios=("compress", "decompress", "decode"),
                      fastpath_compare=False)
        first = run_profile("s27", **kwargs).to_dict()
        second = run_profile("s27", **kwargs).to_dict()
        assert first != second or first == second  # wall_s may coincide
        assert scrub_volatile(first) == scrub_volatile(second)

    def test_decode_scenario_records_fastpath_comparison(self):
        report = run_profile("s27", scenarios=("decode",),
                             fastpath_compare=False)
        decode = report.scenarios["decode"]
        assert decode.bits > 0
        assert "decode.stream" in decode.spans
        counters = decode.metrics["counters"]
        assert counters["decode.calls"] == 1
        assert counters["decode.fast_calls"] == 1
        extra = decode.extra
        assert extra["identical_output"] is True
        assert extra["speedup"] > 0
        assert extra["vectorized_wall_s"] > 0
        assert extra["reference_wall_s"] > 0

    def test_decompress_scenario_reference_path(self):
        report = run_profile("s27", scenarios=("decompress",),
                             fastpath_compare=False, decode_fast=False)
        counters = report.scenarios["decompress"].metrics["counters"]
        assert counters["decode.reference_calls"] == 1
        assert "decode.fast_calls" not in counters
        assert report.scenarios["decompress"].extra["fast"] is False

    def test_benchmark_target_uses_surrogate_session_circuit(self):
        report = run_profile("s5378", scenarios=("compress",),
                             fastpath_compare=False)
        assert report.target == "s5378"
        assert report.session_circuit == "g64"
        assert report.scenarios["compress"].bits == 23754  # |T_D| of s5378

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            run_profile("not-a-circuit")
        with pytest.raises(ValueError):
            run_profile("s27", scenarios=("compress", "nope"))

    def test_validate_baseline_flags_problems(self):
        assert validate_baseline({}) != []
        good = run_profile("s27", scenarios=("compress",),
                           fastpath_compare=False).to_dict()
        assert validate_baseline(good) == []
        assert validate_baseline(good, required_scenarios=("session",)) != []
        broken = scrub_volatile(good)
        del broken["scenarios"]["compress"]["metrics"]
        assert any("metrics" in p for p in validate_baseline(broken))


# ----------------------------------------------------------------------
class TestThreadSafety:
    """Concurrent recording must not lose updates or tear snapshots."""

    THREADS = 8
    PER_THREAD = 2_000

    def _hammer(self, work):
        import sys
        import threading

        errors = []

        def runner():
            try:
                work()
            except Exception as exc:  # propagated to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=runner)
                   for _ in range(self.THREADS)]
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent preemption
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(interval)
        assert errors == []

    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def work():
            counter = registry.counter("hammered")
            for _ in range(self.PER_THREAD):
                counter.inc()

        self._hammer(work)
        expected = self.THREADS * self.PER_THREAD
        assert registry.counter("hammered").value == expected

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()

        def work():
            hist = registry.histogram("hist", bounds=(1, 2, 4))
            for i in range(self.PER_THREAD):
                hist.observe(i % 6)

        self._hammer(work)
        hist = registry.histogram("hist")
        assert hist.count == self.THREADS * self.PER_THREAD
        assert sum(hist.counts) + hist.overflow == hist.count

    def test_snapshot_and_reset_race_safely(self):
        registry = MetricsRegistry()
        registry.counter("seed").inc()

        def work():
            for i in range(200):
                registry.counter("churn").inc()
                registry.gauge("level").set(i)
                snap = registry.snapshot()
                assert set(snap) == {"counters", "gauges", "histograms"}
                if i % 50 == 0:
                    registry.reset()

        self._hammer(work)

    def test_obs_reset_is_thread_safe(self):
        def work():
            for _ in range(200):
                obs.counter("reset.race").inc()
                obs.reset()

        self._hammer(work)
        obs.reset()
        assert obs.get_registry().snapshot()["counters"] == {}


# ----------------------------------------------------------------------
class TestDisabledOverheadGuard:
    def test_disabled_overhead_under_5_percent_on_1mbit_encode(self):
        """The ISSUE's acceptance bound: instrumented-but-disabled encode
        must stay within 5% of the hook-free control path on 1 Mbit.

        ``encode`` is the instrumented entry (one enabled() check plus a
        null span per call); ``_encode_fast`` is the identical hook-free
        control.  Timings take the min of interleaved repeats to shed
        scheduler noise, and the whole measurement retries a few times
        before failing so a transiently loaded machine cannot flake it.
        """
        rng = np.random.default_rng(99)
        data = TernaryVector(
            rng.choice([0, 1, 2], size=1_000_000,
                       p=[0.25, 0.15, 0.6]).astype(np.uint8)
        )
        encoder = NineCEncoder(8)
        encoder.encode(data)  # warm caches before timing
        assert not obs.enabled()

        def measure():
            hooked, control = [], []
            for _ in range(3):
                start = time.perf_counter()
                encoder.encode(data)
                hooked.append(time.perf_counter() - start)
                start = time.perf_counter()
                encoder._encode_fast(data)
                control.append(time.perf_counter() - start)
            return min(hooked), min(control)

        for _attempt in range(3):
            hooked_s, control_s = measure()
            if hooked_s <= control_s * 1.05:
                break
        else:
            pytest.fail(
                f"disabled-instrumentation overhead too high after 3 "
                f"measurement rounds: hooked={hooked_s:.4f}s "
                f"control={control_s:.4f}s"
            )
