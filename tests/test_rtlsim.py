"""Tests for the Verilog-subset interpreter and RTL equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    assign_lengths_by_frequency,
)
from repro.decompressor import (
    RTLSimulator,
    generate_decoder_verilog,
    parse_module,
    run_decoder_rtl,
)
from repro.decompressor.rtlsim import (
    Binary,
    Const,
    Ident,
    Ternary,
    Unary,
    _TokenStream,
    parse_expression,
    strip_comments,
    tokenize,
)

from .conftest import ternary_vectors


def expr(text):
    return parse_expression(_TokenStream(tokenize(text)))


class TestLexerParser:
    def test_tokenize(self):
        assert tokenize("a <= b + 1;") == ["a", "<=", "b", "+", "1", ";"]

    def test_sized_literal(self):
        assert tokenize("2'b10") == ["2'b10"]

    def test_strip_comments(self):
        assert strip_comments("a // hi\nb") == "a \nb"

    def test_expression_shapes(self):
        assert expr("5") == Const(5)
        assert expr("2'b10") == Const(2)
        assert expr("x") == Ident("x")
        assert expr("!x") == Unary("!", Ident("x"))
        assert expr("a == b") == Binary("==", Ident("a"), Ident("b"))
        parsed = expr("s ? a : b")
        assert isinstance(parsed, Ternary)

    def test_precedence(self):
        parsed = expr("a == 1 && b == 2")
        assert parsed.op == "&&"
        assert parsed.left.op == "=="

    def test_parentheses(self):
        parsed = expr("!(a && b)")
        assert isinstance(parsed, Unary)

    def test_bad_token_rejected(self):
        with pytest.raises(ValueError):
            tokenize('a <= "string"')

    def test_bad_expression_rejected(self):
        with pytest.raises(ValueError):
            expr(";")


class TestModuleParsing:
    def test_parses_generated_decoder(self):
        module = parse_module(generate_decoder_verilog(8))
        assert module.name == "ninec_decoder"
        assert module.ports["clk"].direction == "input"
        assert module.ports["ack"].is_reg
        assert module.localparams["K"] == 8
        assert "state" in module.regs
        assert "ready" in module.wires
        assert module.reset_body and module.clocked_body

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_module("not verilog at all")

    def test_rejects_module_without_always(self):
        with pytest.raises(ValueError):
            parse_module("module m (input wire a);\nendmodule\n")


class TestSimulatorBasics:
    def setup_method(self):
        self.sim = RTLSimulator(parse_module(generate_decoder_verilog(8)))

    def test_reset_state(self):
        assert self.sim.read("state") == \
            self.sim.module.localparams["ST_S0"]
        assert self.sim.read("case_valid") == 0

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            self.sim.set_inputs(bogus=1)

    def test_unknown_identifier_rejected(self):
        with pytest.raises(ValueError):
            self.sim.read("no_such_net")

    def test_c1_block_decodes(self):
        # codeword "0" -> case_valid, then 8 zero bits at one per cycle
        sim = self.sim
        sim.set_inputs(rst_n=1, dec_en=1, ate_tick=1, data_in=0)
        sim.step()
        sim.set_inputs(ate_tick=0)
        assert sim.read("case_valid") == 1
        bits = []
        for _ in range(8):
            assert sim.read("scan_en") == 1
            bits.append(sim.read("scan_out"))
            sim.step()
        assert bits == [0] * 8
        assert sim.read("case_valid") == 0
        assert sim.read("ack") == 1

    def test_ready_low_during_uniform_half(self):
        sim = self.sim
        sim.set_inputs(rst_n=1, dec_en=1, ate_tick=1, data_in=0)
        sim.step()
        sim.set_inputs(ate_tick=0)
        assert sim.read("ready") == 0  # driving zeros, no data needed


class TestRTLEquivalence:
    """The interpreted RTL must match the software decoder exactly."""

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_random_streams(self, k):
        rng = np.random.default_rng(k)
        rtl = generate_decoder_verilog(k)
        for _ in range(4):
            data = TernaryVector(rng.integers(0, 3, 48).astype(np.uint8))
            encoding = NineCEncoder(k).encode(data)
            bits = [0 if b == 2 else int(b) for b in encoding.stream]
            software = NineCDecoder(k).decode_stream(TernaryVector(bits))
            hardware = run_decoder_rtl(rtl, bits)
            assert hardware == [int(b) for b in software]

    @given(ternary_vectors(min_size=1, max_size=48))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, data):
        encoding = NineCEncoder(8).encode(data)
        bits = [0 if b == 2 else int(b) for b in encoding.stream]
        software = NineCDecoder(8).decode_stream(TernaryVector(bits))
        hardware = run_decoder_rtl(generate_decoder_verilog(8), bits)
        assert hardware == [int(b) for b in software]

    def test_reassigned_codebook_rtl(self):
        data = TernaryVector("X01X1111" * 6 + "00000000" * 2)
        base = NineCEncoder(8).encode(data)
        book = Codebook.from_lengths(
            assign_lengths_by_frequency(base.case_counts)
        )
        encoding = NineCEncoder(8, book).encode(data)
        bits = [0 if b == 2 else int(b) for b in encoding.stream]
        software = NineCDecoder(8, book).decode_stream(TernaryVector(bits))
        rtl = generate_decoder_verilog(8, book)
        assert run_decoder_rtl(rtl, bits) == [int(b) for b in software]

    def test_deadlock_detected(self):
        # A truncated stream leaves the decoder waiting for data bits.
        data = TernaryVector("01100110")  # C9 block: codeword + payload
        encoding = NineCEncoder(8).encode(data)
        bits = [int(b) for b in encoding.stream][:5]  # cut the payload
        with pytest.raises(RuntimeError):
            run_decoder_rtl(generate_decoder_verilog(8), bits,
                            max_cycles=200)
