"""repro.lint: seeded-defect corpus + clean-tree regression tests.

Every rule must fire on a minimal artifact seeded with exactly that
defect, and *nothing* may fire on the artifacts the repo generates —
so the linter is pinned from both sides.
"""

import json
import textwrap

import pytest

from repro.circuits.library import available_circuits, load_circuit
from repro.circuits.netlist import GateType
from repro.core.codewords import BlockCase, Codebook
from repro.decompressor.fsm import NineCDecoderFSM
from repro.decompressor.gates import decoder_netlist
from repro.decompressor.verilog import (
    generate_decoder_verilog,
    generate_multiscan_verilog,
)
from repro.lint import (
    LintFinding,
    RawGate,
    RawNetlist,
    Severity,
    errors,
    lint_bench_text,
    lint_fsm,
    lint_netlist,
    lint_python_source,
    lint_verilog,
    max_severity,
    run_lint,
    verify_transition_rows,
)
from repro.lint.runner import (
    DECODER_NETLIST_WAIVERS,
    LintReport,
    reassigned_codebook,
)


def rules(findings):
    return {f.rule for f in findings}


def only_rule(findings, rule):
    """Assert the findings are exactly one or more hits of one rule."""
    assert findings, f"expected {rule} to fire"
    assert rules(findings) == {rule}, findings
    return findings


# ---------------------------------------------------------------------------
# findings plumbing
# ---------------------------------------------------------------------------

class TestFindings:
    def test_severity_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_to_dict_stable_keys(self):
        f = LintFinding("NL001", Severity.ERROR, "netlist:x", "n1", "msg")
        assert list(f.to_dict()) == [
            "rule", "severity", "artifact", "location", "message", "line",
        ]

    def test_render_includes_line(self):
        f = LintFinding("RT001", Severity.ERROR, "rtl:m", "sig", "msg", line=7)
        assert "rtl:m:7" in f.render() and "RT001" in f.render()

    def test_errors_and_max_severity(self):
        fs = [
            LintFinding("A1", Severity.WARNING, "a", "", "w"),
            LintFinding("A2", Severity.ERROR, "a", "", "e"),
        ]
        assert [f.rule for f in errors(fs)] == ["A2"]
        assert max_severity(fs) is Severity.ERROR
        assert max_severity([]) is None


# ---------------------------------------------------------------------------
# netlist rules (NL001..NL008)
# ---------------------------------------------------------------------------

class TestNetlistRules:
    def test_nl001_undriven_fanin_and_output(self):
        raw = RawNetlist(
            "bad", inputs=["a"], outputs=["g1", "missing_po"],
            gates=[RawGate("g1", GateType.AND, ("a", "ghost"))],
        )
        findings = only_rule(lint_netlist(raw), "NL001")
        assert {f.location for f in findings} == {"ghost", "missing_po"}

    def test_nl002_multiple_drivers(self):
        raw = RawNetlist(
            "bad", inputs=["a", "b"], outputs=["n1"],
            gates=[
                RawGate("n1", GateType.AND, ("a", "b")),
                RawGate("n1", GateType.OR, ("a", "b")),
            ],
        )
        findings = [f for f in lint_netlist(raw) if f.rule == "NL002"]
        assert len(findings) == 1 and findings[0].location == "n1"

    def test_nl002_gate_shadows_primary_input(self):
        raw = RawNetlist(
            "bad", inputs=["a", "b"], outputs=["a"],
            gates=[RawGate("a", GateType.NOT, ("b",))],
        )
        assert "NL002" in rules(lint_netlist(raw))

    def test_nl003_combinational_loop(self):
        raw = RawNetlist(
            "bad", inputs=["x"], outputs=["u"],
            gates=[
                RawGate("u", GateType.AND, ("v", "x")),
                RawGate("v", GateType.OR, ("u", "x")),
            ],
        )
        findings = [f for f in lint_netlist(raw) if f.rule == "NL003"]
        assert len(findings) == 1
        assert "u" in findings[0].message and "v" in findings[0].message

    def test_nl003_loop_through_dff_is_fine(self):
        raw = RawNetlist(
            "ok", inputs=["x"], outputs=["q"],
            gates=[
                RawGate("d", GateType.XOR, ("q", "x")),
                RawGate("q", GateType.DFF, ("d",)),
            ],
        )
        assert "NL003" not in rules(lint_netlist(raw))

    def test_nl004_arity(self):
        raw = RawNetlist(
            "bad", inputs=["a", "b"], outputs=["g1", "g2"],
            gates=[
                RawGate("g1", GateType.AND, ("a",)),          # wants >= 2
                RawGate("g2", GateType.NOT, ("a", "b")),      # wants exactly 1
            ],
        )
        findings = only_rule(lint_netlist(raw), "NL004")
        assert {f.location for f in findings} == {"g1", "g2"}

    def test_nl005_floating_combinational_output(self):
        raw = RawNetlist(
            "bad", inputs=["a", "b"], outputs=["keep"],
            gates=[
                RawGate("keep", GateType.AND, ("a", "b")),
                RawGate("floater", GateType.OR, ("a", "b")),
            ],
        )
        findings = only_rule(lint_netlist(raw), "NL005")
        assert findings[0].location == "floater"
        assert findings[0].severity is Severity.WARNING

    def test_nl006_back_to_back_flops_and_self_loop(self):
        raw = RawNetlist(
            "bad", inputs=["x"], outputs=["q2", "q3"],
            gates=[
                RawGate("q1", GateType.DFF, ("x",)),
                RawGate("q2", GateType.DFF, ("q1",)),   # back-to-back
                RawGate("q3", GateType.DFF, ("q3",)),   # self-loop
            ],
        )
        findings = [f for f in lint_netlist(raw) if f.rule == "NL006"]
        assert {f.location for f in findings} == {"q2", "q3"}

    def test_nl006_waivable(self):
        raw = RawNetlist(
            "ok", inputs=["x"], outputs=["q2"],
            gates=[
                RawGate("q1", GateType.DFF, ("x",)),
                RawGate("q2", GateType.DFF, ("q1",)),
            ],
        )
        assert "NL006" in rules(lint_netlist(raw))
        assert "NL006" not in rules(lint_netlist(raw, waive=("NL006",)))

    def test_nl007_unused_primary_input(self):
        raw = RawNetlist(
            "bad", inputs=["a", "b", "unused"], outputs=["g"],
            gates=[RawGate("g", GateType.AND, ("a", "b"))],
        )
        findings = only_rule(lint_netlist(raw), "NL007")
        assert findings[0].location == "unused"

    def test_nl008_unobserved_flop(self):
        raw = RawNetlist(
            "bad", inputs=["a", "b"], outputs=["g"],
            gates=[
                RawGate("g", GateType.AND, ("a", "b")),
                RawGate("qdead", GateType.DFF, ("g",)),
            ],
        )
        findings = only_rule(lint_netlist(raw), "NL008")
        assert findings[0].location == "qdead"

    def test_bench_text_unparsable_line_and_unknown_type(self):
        text = textwrap.dedent("""
            INPUT(a)
            INPUT(b)
            OUTPUT(y)
            y = MAJ(a, b)
            this is not bench at all
        """)
        findings = lint_bench_text(text, name="corrupt")
        assert "NL004" in rules(findings)  # unknown gate type MAJ
        assert any("unparsable" in f.message for f in findings)

    def test_bench_text_clean_roundtrip(self):
        from repro.circuits.bench import write_bench

        text = write_bench(load_circuit("s27"))
        assert lint_bench_text(text, name="s27") == []


class TestNetlistCleanTree:
    """Satellite regression: everything the repo generates lints clean."""

    @pytest.mark.parametrize("name", sorted(available_circuits()))
    def test_library_circuit_lints_clean(self, name):
        assert lint_netlist(load_circuit(name)) == []

    @pytest.mark.parametrize("k", [2, 4, 8, 16, 32])
    def test_decoder_netlist_lints_clean(self, k):
        netlist = decoder_netlist(k)
        assert lint_netlist(netlist, waive=DECODER_NETLIST_WAIVERS) == []
        # and it is a valid, loop-free circuit for the simulator
        assert netlist.topological_order()

    def test_decoder_netlist_shifter_needs_the_waiver(self):
        # The serial shift register is flop-to-flop by design; without
        # the documented waiver NL006 fires on it, proving the waiver
        # is load-bearing rather than dead configuration.
        findings = lint_netlist(decoder_netlist(8))
        assert rules(findings) == {"NL006"}

    def test_decoder_netlist_reassigned_codebook(self):
        netlist = decoder_netlist(8, reassigned_codebook())
        assert lint_netlist(netlist, waive=DECODER_NETLIST_WAIVERS) == []

    def test_decoder_netlist_rejects_odd_k(self):
        with pytest.raises(ValueError):
            decoder_netlist(7)


# ---------------------------------------------------------------------------
# FSM rules (FS001..FS007)
# ---------------------------------------------------------------------------

def default_rows():
    fsm = NineCDecoderFSM()
    return list(fsm.transition_table()), fsm.codebook


class TestFsmRules:
    def test_default_fsm_verifies_clean(self):
        assert lint_fsm() == []

    def test_reassigned_fsm_verifies_clean(self):
        book = reassigned_codebook()
        assert lint_fsm(NineCDecoderFSM(book)) == []

    def test_fs001_nondeterminism(self):
        rows, book = default_rows()
        state, bit, _nxt, _case = rows[0]
        rows.append((state, bit, "S0_BOGUS", None))
        findings = verify_transition_rows(rows, book)
        assert any(
            f.rule == "FS001" and f.severity is Severity.ERROR
            for f in findings
        )

    def test_fs001_exact_duplicate_is_warning(self):
        rows, book = default_rows()
        rows.append(rows[0])
        findings = verify_transition_rows(rows, book)
        dups = [f for f in findings if f.rule == "FS001"]
        assert dups and all(f.severity is Severity.WARNING for f in dups)

    def test_fs002_missing_arc(self):
        rows, book = default_rows()
        removed = rows.pop()
        findings = verify_transition_rows(rows, book)
        locations = {f.location for f in findings if f.rule == "FS002"}
        assert f"{removed[0]}/{removed[1]}" in locations

    def test_fs003_unreachable_state(self):
        rows, book = default_rows()
        rows.append(("S_ORPHAN", 0, "S_ORPHAN", None))
        rows.append(("S_ORPHAN", 1, "S0", BlockCase.C1))
        findings = verify_transition_rows(rows, book)
        assert any(
            f.rule == "FS003" and f.location == "S_ORPHAN" for f in findings
        )

    def test_fs004_dead_state_pair(self):
        rows = [
            ("S0", 0, "S0", BlockCase.C1),
            ("S0", 1, "DEAD_A", None),
            ("DEAD_A", 0, "DEAD_B", None),
            ("DEAD_A", 1, "DEAD_B", None),
            ("DEAD_B", 0, "DEAD_A", None),
            ("DEAD_B", 1, "DEAD_A", None),
        ]
        findings = verify_transition_rows(rows, Codebook.default())
        dead = {f.location for f in findings if f.rule == "FS004"}
        assert {"DEAD_A", "DEAD_B"} <= dead

    def test_fs005_wrong_codeword(self):
        rows, book = default_rows()
        # swap the cases of two emitting arcs
        emitting = [i for i, row in enumerate(rows) if row[3] is not None]
        i, j = emitting[0], emitting[1]
        rows[i], rows[j] = (
            (*rows[i][:3], rows[j][3]),
            (*rows[j][:3], rows[i][3]),
        )
        findings = verify_transition_rows(rows, book)
        assert any(f.rule == "FS005" for f in findings)

    def test_fs005_case_never_emitted(self):
        rows, book = default_rows()
        # retarget one emitting arc to also emit a case already taken
        emitting = [i for i, row in enumerate(rows) if row[3] is not None]
        victim = rows[emitting[0]]
        other = rows[emitting[1]]
        rows[emitting[0]] = (*victim[:3], other[3])
        findings = verify_transition_rows(rows, book)
        messages = [f.message for f in findings if f.rule == "FS005"]
        assert any("never emits" in m for m in messages)
        assert any("distinct paths" in m for m in messages)

    def test_fs005_and_fs007_arc_not_returning_to_idle(self):
        rows = [
            ("S0", 0, "S_MORE", BlockCase.C1),   # emits but keeps going
            ("S0", 1, "S0", BlockCase.C2),
            ("S_MORE", 0, "S0", BlockCase.C3),
            ("S_MORE", 1, "S0", BlockCase.C4),
        ]
        findings = verify_transition_rows(rows, Codebook.default())
        found = rules(findings)
        assert "FS005" in found  # non-idle return + codebook mismatch
        assert "FS007" in found  # "0" is a prefix of "00" and "01"

    def test_fs006_kraft_deficit(self):
        # recognizes only {00, 01, 10}: deterministic and prefix-free
        # but Kraft sums to 0.75 (and (S_HI, 1) is missing -> FS002)
        rows = [
            ("S0", 0, "S_LO", None),
            ("S0", 1, "S_HI", None),
            ("S_LO", 0, "S0", BlockCase.C1),
            ("S_LO", 1, "S0", BlockCase.C2),
            ("S_HI", 0, "S0", BlockCase.C3),
        ]
        findings = verify_transition_rows(rows, Codebook.default())
        found = rules(findings)
        assert "FS006" in found and "FS002" in found

    def test_fs004_non_resolving_cycle_overflows(self):
        # 0 loops back to idle without ever emitting: infinite codewords
        rows = [
            ("S0", 0, "S0", None),
            ("S0", 1, "S0", BlockCase.C1),
        ]
        findings = verify_transition_rows(rows, Codebook.default())
        assert any(
            f.rule == "FS004" and "exceed" in f.message for f in findings
        )


# ---------------------------------------------------------------------------
# RTL rules (RT001..RT007)
# ---------------------------------------------------------------------------

def module(body):
    return "module m(input wire clk, output wire y);\n" + textwrap.dedent(
        body
    ) + "\nendmodule\n"


class TestRtlRules:
    def test_rt001_undeclared_identifier(self):
        findings = lint_verilog(module("    assign y = ghost;"))
        findings = only_rule(findings, "RT001")
        assert findings[0].location == "ghost"

    def test_rt002_use_before_declaration(self):
        text = module("""\
            assign y = late;
            wire late = clk;
        """)
        findings = only_rule(lint_verilog(text), "RT002")
        assert findings[0].location == "late"

    def test_rt003_oversized_literal(self):
        text = module("""\
            wire t = clk;
            assign y = t & 2'd7;
        """)
        findings = only_rule(lint_verilog(text), "RT003")
        assert "2'd7" in findings[0].message

    def test_rt003_constant_exceeds_declared_width(self):
        text = module("""\
            localparam BIG = 9;
            reg [2:0] r;
            always @(posedge clk or negedge clk) begin
                r <= BIG;
            end
            assign y = r[0];
        """)
        findings = [f for f in lint_verilog(text) if f.rule == "RT003"]
        assert findings and findings[0].location == "r"

    def test_rt004_unused_wire_warns_unused_param_informs(self):
        text = module("""\
            wire dead = clk;
            localparam UNUSED = 3;
            assign y = clk;
        """)
        findings = lint_verilog(text)
        by_rule = {f.location: f.severity for f in findings}
        assert by_rule["dead"] is Severity.WARNING
        assert by_rule["UNUSED"] is Severity.INFO
        assert rules(findings) == {"RT004"}

    def test_rt004_param_referenced_by_other_param_is_used(self):
        text = module("""\
            localparam K = 8;
            localparam HALF = K / 2;
            wire [3:0] c;
            assign c = HALF;
            assign y = c[0];
        """)
        assert "RT004" not in rules(lint_verilog(text))

    def test_rt005_unknown_and_unconnected_ports(self):
        text = textwrap.dedent("""\
            module leaf(input wire a, input wire b, output wire z);
                assign z = a & b;
            endmodule

            module top(input wire p, output wire q);
                leaf u0 (
                    .a(p),
                    .bogus(p)
                );
                assign q = p;
            endmodule
        """)
        findings = [f for f in lint_verilog(text) if f.rule == "RT005"]
        kinds = {(f.location, f.severity) for f in findings}
        assert ("u0.bogus", Severity.ERROR) in kinds
        assert ("u0.b", Severity.WARNING) in kinds
        assert ("u0.z", Severity.WARNING) in kinds

    def test_rt005_external_module_is_info(self):
        text = textwrap.dedent("""\
            module top(input wire p, output wire q);
                black_box u0 (
                    .a(p)
                );
                assign q = p;
            endmodule
        """)
        findings = [f for f in lint_verilog(text) if f.rule == "RT005"]
        assert findings and all(f.severity is Severity.INFO for f in findings)

    def test_rt006_duplicate_declaration(self):
        text = module("""\
            wire t = clk;
            wire t = clk;
            assign y = t;
        """)
        findings = [f for f in lint_verilog(text) if f.rule == "RT006"]
        assert findings and findings[0].location == "t"

    def test_rt007_no_module(self):
        findings = only_rule(lint_verilog("// nothing here\n"), "RT007")
        assert findings[0].severity is Severity.ERROR


class TestRtlCleanTree:
    @pytest.mark.parametrize("k", [2, 4, 8, 16, 32])
    def test_decoder_rtl_lints_clean(self, k):
        assert lint_verilog(generate_decoder_verilog(k)) == []

    @pytest.mark.parametrize("chains", [2, 4, 8])
    def test_multiscan_rtl_lints_clean(self, chains):
        assert lint_verilog(generate_multiscan_verilog(8, chains)) == []

    def test_decoder_rtl_reassigned_codebook(self):
        rtl = generate_decoder_verilog(8, reassigned_codebook())
        assert lint_verilog(rtl) == []


# ---------------------------------------------------------------------------
# Python rules (PY000..PY006)
# ---------------------------------------------------------------------------

def lint_py(source, path="core/encoder.py"):
    return lint_python_source(textwrap.dedent(source), path)


class TestPycheckRules:
    def test_py000_syntax_error(self):
        findings = only_rule(lint_py("def broken(:\n"), "PY000")
        assert findings[0].line == 1

    def test_py001_unguarded_recording_in_hot_module(self):
        source = """
        from repro import obs

        def encode():
            obs.counter("blocks", 1)
        """
        findings = [f for f in lint_py(source) if f.rule == "PY001"]
        assert findings and findings[0].location == "obs.counter"

    def test_py001_guarded_recording_is_fine(self):
        source = """
        from repro import obs

        def encode():
            if obs.enabled():
                obs.counter("blocks", 1)
        """
        assert not [f for f in lint_py(source) if f.rule == "PY001"]

    def test_py001_span_is_self_gating(self):
        source = """
        from repro import obs

        def encode():
            with obs.span("encode"):
                pass
        """
        assert not [f for f in lint_py(source) if f.rule == "PY001"]

    def test_py001_guard_does_not_cross_function_boundary(self):
        source = """
        from repro import obs

        def outer():
            if obs.enabled():
                def inner():
                    obs.counter("x", 1)
        """
        assert [f for f in lint_py(source) if f.rule == "PY001"]

    def test_py001_record_helper_bodies_exempt_but_callsites_guarded(self):
        source = """
        from repro import obs

        def _record_stats(n):
            obs.counter("n", n)

        def encode():
            _record_stats(3)
        """
        findings = [f for f in lint_py(source) if f.rule == "PY001"]
        assert findings and findings[0].location == "_record_stats"

    def test_py001_not_enforced_outside_hot_modules(self):
        source = """
        from repro import obs

        def report():
            obs.counter("x", 1)
        """
        assert not [
            f for f in lint_py(source, path="analysis/report.py")
            if f.rule == "PY001"
        ]

    def test_py002_off_contract_raise_in_core(self):
        source = """
        def f():
            raise RuntimeError("nope")
        """
        findings = [
            f for f in lint_py(source, path="core/io.py")
            if f.rule == "PY002"
        ]
        assert findings and findings[0].location == "RuntimeError"

    def test_py002_stream_errors_and_bare_reraise_allowed(self):
        source = """
        from .errors import TruncatedStreamError

        def f():
            try:
                raise TruncatedStreamError(0, 1)
            except ValueError:
                raise
        """
        assert not [
            f for f in lint_py(source, path="core/io.py")
            if f.rule == "PY002"
        ]

    def test_py002_not_enforced_outside_core(self):
        source = """
        def f():
            raise RuntimeError("fine here")
        """
        assert not [
            f for f in lint_py(source, path="robust/channel.py")
            if f.rule == "PY002"
        ]

    def test_py003_bare_except(self):
        source = """
        def f():
            try:
                pass
            except:
                pass
        """
        findings = [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY003"
        ]
        assert findings and findings[0].severity is Severity.ERROR

    def test_py004_mutable_defaults(self):
        source = """
        def f(a, b=[], c={}, d=set(), e=None):
            return a
        """
        findings = [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY004"
        ]
        assert len(findings) == 3

    def test_py005_unused_import(self):
        source = """
        import json
        import math

        def f():
            return math.pi
        """
        findings = [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY005"
        ]
        assert [f.location for f in findings] == ["json"]

    def test_py005_future_import_exempt(self):
        source = """
        from __future__ import annotations

        def f() -> "int":
            return 1
        """
        assert not [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY005"
        ]

    def test_py005_dunder_all_counts_as_use(self):
        source = """
        from json import dumps

        __all__ = ["dumps"]
        """
        assert not [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY005"
        ]

    def test_py005_skips_package_inits(self):
        source = "from json import dumps\n"
        assert not lint_python_source(source, "analysis/__init__.py")

    def test_py006_bare_assert(self):
        source = """
        def check(value):
            assert value > 0, "must be positive"
            return value
        """
        findings = [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY006"
        ]
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "python -O" in findings[0].message

    def test_py006_waiver_marker(self):
        source = """
        def check(value):
            assert value > 0  # lint: allow-assert
            return value
        """
        assert not [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY006"
        ]

    def test_py006_waiver_is_per_line(self):
        source = """
        def check(a, b):
            assert a  # lint: allow-assert
            assert b
        """
        findings = [
            f for f in lint_py(source, path="analysis/x.py")
            if f.rule == "PY006"
        ]
        assert len(findings) == 1


# ---------------------------------------------------------------------------
# Verilog constant evaluator (shared by RT rules and the rtl parser)
# ---------------------------------------------------------------------------

class TestConstEvaluator:
    def evaluate(self, text, **env):
        from repro.lint.rtl import _ConstEvaluator

        return _ConstEvaluator(dict(env)).resolve(text)

    def test_clog2_forms(self):
        assert self.evaluate("$clog2(8)") == 3
        assert self.evaluate("$clog2(M + 1)", M=3) == 2
        assert self.evaluate("$clog2(K / 2) + $clog2(M)", K=16, M=4) == 5

    def test_division_truncates_every_intermediate(self):
        assert self.evaluate("K / 2", K=8) == 4
        assert self.evaluate("(K / 2) - 1", K=8) == 3
        # 7/2 must truncate *before* the multiply (Verilog: 3*2 = 6)
        assert self.evaluate("(7 / 2) * 2") == 6
        assert self.evaluate("2 * (K - 2) / 4", K=8) == 3

    def test_negative_division_truncates_toward_zero(self):
        assert self.evaluate("-7 / 2") == -3

    def test_parenthesized_multi_operand(self):
        assert self.evaluate("((A + B) * 2) % 5", A=3, B=4) == 4

    def test_unresolvable_forms_return_none(self):
        assert self.evaluate("K / 0", K=4) is None
        assert self.evaluate("K + Q", K=4) is None
        assert self.evaluate("4'bxx") is None


# ---------------------------------------------------------------------------
# runner + CLI
# ---------------------------------------------------------------------------

class TestRunner:
    def test_full_tree_is_lint_clean(self):
        report = run_lint()
        assert report.findings == [], report.render()
        assert report.exit_code == 0
        assert len(report.artifacts) > 20

    def test_section_selection(self):
        report = run_lint(only=["fsm"])
        assert report.sections == ["fsm"]
        assert report.artifacts == ["fsm:default", "fsm:reassigned"]

    def test_equiv_section_artifacts(self):
        report = run_lint(only=["equiv"], ks=(4,))
        assert report.findings == [], report.render()
        assert report.artifacts == [
            "equiv:decoder_k4_default", "equiv:decoder_k4_reassigned",
        ]

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            run_lint(only=["netlist", "nosuch"])

    def test_reassigned_codebook_differs_from_default(self):
        book = reassigned_codebook()
        default = Codebook.default()
        assert any(
            book.codeword(c) != default.codeword(c) for c in BlockCase
        )

    def test_exit_code_reflects_errors(self):
        report = LintReport(findings=[
            LintFinding("NL001", Severity.WARNING, "a", "", "w"),
        ])
        assert report.exit_code == 0
        report.findings.append(
            LintFinding("NL001", Severity.ERROR, "a", "", "e")
        )
        assert report.exit_code == 1

    def test_report_dict_roundtrips_through_json(self):
        report = run_lint(only=["fsm"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["exit_code"] == 0
        assert payload["errors"] == 0


class TestCli:
    def test_lint_subcommand_clean_exit(self, capsys):
        from repro.cli import main

        assert main(["lint", "--only", "fsm"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_lint_subcommand_json(self, capsys):
        from repro.cli import main

        assert main(["lint", "--only", "fsm", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["sections"] == ["fsm"]

    def test_lint_subcommand_k_and_circuit_filters(self, capsys):
        from repro.cli import main

        assert main([
            "lint", "--only", "netlist", "--k", "8", "--circuit", "s27",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_lint_subcommand_equiv_section(self, capsys):
        from repro.cli import main

        assert main([
            "lint", "--only", "equiv", "--k", "4", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["artifacts"] == [
            "equiv:decoder_k4_default", "equiv:decoder_k4_reassigned",
        ]

    def test_import_rtl_subcommand_roundtrip(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "decoder.v"
        assert main([
            "rtl", "--k", "8", "--structural", "-o", str(path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "import-rtl", str(path), "--k", "8", "--lint", "--equiv",
            "--waive-shifter", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["top"] == "ninec_decoder_gates"
        assert payload["lint"]["errors"] == 0
        assert payload["equiv"]["ok"] is True

    def test_import_rtl_parse_error_contract(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "broken.v"
        path.write_text("module m (a;\n")
        assert main([
            "import-rtl", str(path), "--format", "json",
        ]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["stage"] == "parse"
        assert payload["error"]["command"] == "import-rtl"
        assert isinstance(payload["error"]["line"], int)

    def test_import_rtl_lint_errors_exit_nonzero(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "dup.v"
        path.write_text(
            "module m (a, y);\n input a;\n output y;\n"
            " buf (y, a);\n buf (y, a);\nendmodule\n"
        )
        assert main([
            "import-rtl", str(path), "--lint", "--format", "json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["lint"]["errors"] >= 1
