"""Unit + property tests for the 9C software decoder."""

import pytest
from hypothesis import given, settings

from repro.core import (
    BlockCase,
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    verify_roundtrip,
)
from repro.core.decoder import CodewordScanTable

from .conftest import even_block_sizes, ternary_vectors


class TestDecodeStream:
    def test_single_c1_block(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "00000000"

    def test_single_c2_block(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C2)])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "11111111"

    def test_c5_block_with_payload(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C5), 2, 0, 1, 2])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "0000X01X"

    def test_c9_block_with_payload(self):
        book = Codebook.default()
        payload = [0, 1, 1, 0, 1, 0, 0, 1]
        stream = TernaryVector([*book.codeword(BlockCase.C9), *payload])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "01101001"

    def test_truncation_to_output_length(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        out = NineCDecoder(8).decode_stream(stream, output_length=5)
        assert out.to_string() == "00000"

    def test_short_stream_raises(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        with pytest.raises(ValueError):
            NineCDecoder(8).decode_stream(stream, output_length=9)

    def test_truncated_payload_raises(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C9), 0, 1])
        with pytest.raises(EOFError):
            NineCDecoder(8).decode_stream(stream)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NineCDecoder(5)


class TestDecodeEncoding:
    def test_k_mismatch_rejected(self):
        enc = NineCEncoder(8).encode(TernaryVector.zeros(16))
        with pytest.raises(ValueError):
            NineCDecoder(4).decode(enc)

    def test_codebook_mismatch_rejected(self):
        from repro.core import PAPER_LENGTHS

        enc = NineCEncoder(8).encode(TernaryVector.zeros(16))
        other = Codebook.from_lengths(
            {**PAPER_LENGTHS, BlockCase.C1: 2, BlockCase.C2: 1}
        )
        with pytest.raises(ValueError):
            NineCDecoder(8, other).decode(enc)

    def test_exact_roundtrip_fully_specified(self):
        data = TernaryVector("0110100111001010")
        enc = NineCEncoder(4).encode(data)
        out = NineCDecoder(4).decode(enc)
        assert out == data  # no X anywhere: decode must be exact


class TestRoundTripProperties:
    @given(ternary_vectors(max_size=120), even_block_sizes(max_k=16))
    @settings(max_examples=150)
    def test_decoded_covers_original(self, data, k):
        enc = NineCEncoder(k).encode(data)
        assert verify_roundtrip(data, enc)

    @given(ternary_vectors(max_size=120, x_bias=0.75), even_block_sizes())
    @settings(max_examples=100)
    def test_decoded_covers_original_high_x(self, data, k):
        enc = NineCEncoder(k).encode(data)
        decoded = NineCDecoder(k).decode(enc)
        assert decoded.covers(data)

    @given(ternary_vectors(max_size=80), even_block_sizes(max_k=12))
    @settings(max_examples=80)
    def test_leftover_x_survive_decode(self, data, k):
        # Every X in the decoded output must be an X of the original:
        # decode never invents don't-cares.
        enc = NineCEncoder(k).encode(data)
        decoded = NineCDecoder(k).decode(enc)
        for got, want in zip(decoded.data, data.data):
            if got == 2:
                assert want == 2

    @given(ternary_vectors(max_size=80), even_block_sizes(max_k=12))
    @settings(max_examples=80)
    def test_roundtrip_with_reassigned_codebook(self, data, k):
        from repro.core import assign_lengths_by_frequency

        base = NineCEncoder(k).encode(data)
        book = Codebook.from_lengths(
            assign_lengths_by_frequency(base.case_counts)
        )
        enc = NineCEncoder(k, book).encode(data)
        decoded = NineCDecoder(k, book).decode(enc)
        assert decoded.covers(data)


class TestScanTable:
    def test_lut_resolves_every_codeword(self):
        book = Codebook.default()
        table = CodewordScanTable(book)
        assert table.max_len == book.max_length
        for col, case in enumerate(table.cases):
            bits = list(book.codeword(case))
            # every window starting with this codeword resolves to it
            pad = table.max_len - len(bits)
            value = 0
            for bit in bits + [0] * pad:
                value = value * 3 + bit
            assert table.lut[value] == col

    def test_windows_with_x_in_codeword_need_scalar(self):
        table = CodewordScanTable(Codebook.default())
        # window starting with X can never resolve inside a codeword
        value = 2 * 3 ** (table.max_len - 1)
        assert table.lut[value] == table.NEEDS_SCALAR

    def test_scan_table_is_lazy_and_cached(self):
        decoder = NineCDecoder(8)
        assert decoder._scan_table is None
        table = decoder.scan_table
        assert decoder.scan_table is table


class TestFastPathDifferential:
    """decode_stream (fast) vs decode_reference on clean encodings."""

    @given(ternary_vectors(max_size=120), even_block_sizes(max_k=16))
    @settings(max_examples=120)
    def test_bit_identical_on_roundtrips(self, data, k):
        enc = NineCEncoder(k).encode(data)
        decoder = NineCDecoder(k)
        fast = decoder.decode_stream(enc.stream, enc.original_length)
        fast_diag = decoder.last_diagnostics
        reference = decoder.decode_reference(enc.stream, enc.original_length)
        reference_diag = decoder.last_diagnostics
        assert fast == reference
        assert fast_diag.blocks_decoded == reference_diag.blocks_decoded
        assert fast_diag.blocks_lost == reference_diag.blocks_lost

    @given(ternary_vectors(max_size=100, x_bias=0.75),
           even_block_sizes(max_k=12))
    @settings(max_examples=60)
    def test_bit_identical_with_reassigned_codebook(self, data, k):
        from repro.core import assign_lengths_by_frequency

        base = NineCEncoder(k).encode(data)
        book = Codebook.from_lengths(
            assign_lengths_by_frequency(base.case_counts)
        )
        enc = NineCEncoder(k, book).encode(data)
        decoder = NineCDecoder(k, book)
        assert decoder.decode_stream(enc.stream, enc.original_length) == \
            decoder.decode_reference(enc.stream, enc.original_length)

    def test_fast_false_forces_reference(self):
        enc = NineCEncoder(8).encode(TernaryVector("01X0" * 8))
        decoder = NineCDecoder(8)
        out = decoder.decode_stream(enc.stream, enc.original_length,
                                    fast=False)
        assert out == decoder.decode_stream(enc.stream, enc.original_length)

    def test_unbounded_decode_matches(self):
        enc = NineCEncoder(8).encode(TernaryVector("0X11" * 10))
        decoder = NineCDecoder(8)
        assert decoder.decode_stream(enc.stream) == \
            decoder.decode_reference(enc.stream)

    def test_negative_output_length_rejected_on_both_paths(self):
        decoder = NineCDecoder(8)
        stream = TernaryVector([0])
        with pytest.raises(ValueError):
            decoder.decode_stream(stream, output_length=-1)
        with pytest.raises(ValueError):
            decoder.decode_reference(stream, output_length=-1)


class TestFastPathISCAS:
    """Acceptance: bit-identical fast decode across the ISCAS'89 suite."""

    def test_full_suite_bit_identical(self):
        from repro.testdata import ISCAS89_PROFILES, load_benchmark

        for name in ISCAS89_PROFILES:
            data = load_benchmark(name).to_stream()
            enc = NineCEncoder(8).encode(data)
            decoder = NineCDecoder(8)
            fast = decoder.decode_stream(enc.stream, enc.original_length)
            fast_diag = decoder.last_diagnostics
            reference = decoder.decode_reference(
                enc.stream, enc.original_length
            )
            reference_diag = decoder.last_diagnostics
            assert fast == reference, name
            assert fast.covers(data), name
            assert fast_diag.blocks_decoded == reference_diag.blocks_decoded
            assert fast_diag.blocks_lost == reference_diag.blocks_lost
