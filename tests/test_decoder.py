"""Unit + property tests for the 9C software decoder."""

import pytest
from hypothesis import given, settings

from repro.core import (
    BlockCase,
    Codebook,
    NineCDecoder,
    NineCEncoder,
    TernaryVector,
    verify_roundtrip,
)

from .conftest import even_block_sizes, ternary_vectors


class TestDecodeStream:
    def test_single_c1_block(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "00000000"

    def test_single_c2_block(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C2)])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "11111111"

    def test_c5_block_with_payload(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C5), 2, 0, 1, 2])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "0000X01X"

    def test_c9_block_with_payload(self):
        book = Codebook.default()
        payload = [0, 1, 1, 0, 1, 0, 0, 1]
        stream = TernaryVector([*book.codeword(BlockCase.C9), *payload])
        out = NineCDecoder(8).decode_stream(stream)
        assert out.to_string() == "01101001"

    def test_truncation_to_output_length(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        out = NineCDecoder(8).decode_stream(stream, output_length=5)
        assert out.to_string() == "00000"

    def test_short_stream_raises(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C1)])
        with pytest.raises(ValueError):
            NineCDecoder(8).decode_stream(stream, output_length=9)

    def test_truncated_payload_raises(self):
        book = Codebook.default()
        stream = TernaryVector([*book.codeword(BlockCase.C9), 0, 1])
        with pytest.raises(EOFError):
            NineCDecoder(8).decode_stream(stream)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NineCDecoder(5)


class TestDecodeEncoding:
    def test_k_mismatch_rejected(self):
        enc = NineCEncoder(8).encode(TernaryVector.zeros(16))
        with pytest.raises(ValueError):
            NineCDecoder(4).decode(enc)

    def test_codebook_mismatch_rejected(self):
        from repro.core import PAPER_LENGTHS

        enc = NineCEncoder(8).encode(TernaryVector.zeros(16))
        other = Codebook.from_lengths(
            {**PAPER_LENGTHS, BlockCase.C1: 2, BlockCase.C2: 1}
        )
        with pytest.raises(ValueError):
            NineCDecoder(8, other).decode(enc)

    def test_exact_roundtrip_fully_specified(self):
        data = TernaryVector("0110100111001010")
        enc = NineCEncoder(4).encode(data)
        out = NineCDecoder(4).decode(enc)
        assert out == data  # no X anywhere: decode must be exact


class TestRoundTripProperties:
    @given(ternary_vectors(max_size=120), even_block_sizes(max_k=16))
    @settings(max_examples=150)
    def test_decoded_covers_original(self, data, k):
        enc = NineCEncoder(k).encode(data)
        assert verify_roundtrip(data, enc)

    @given(ternary_vectors(max_size=120, x_bias=0.75), even_block_sizes())
    @settings(max_examples=100)
    def test_decoded_covers_original_high_x(self, data, k):
        enc = NineCEncoder(k).encode(data)
        decoded = NineCDecoder(k).decode(enc)
        assert decoded.covers(data)

    @given(ternary_vectors(max_size=80), even_block_sizes(max_k=12))
    @settings(max_examples=80)
    def test_leftover_x_survive_decode(self, data, k):
        # Every X in the decoded output must be an X of the original:
        # decode never invents don't-cares.
        enc = NineCEncoder(k).encode(data)
        decoded = NineCDecoder(k).decode(enc)
        for got, want in zip(decoded.data, data.data):
            if got == 2:
                assert want == 2

    @given(ternary_vectors(max_size=80), even_block_sizes(max_k=12))
    @settings(max_examples=80)
    def test_roundtrip_with_reassigned_codebook(self, data, k):
        from repro.core import assign_lengths_by_frequency

        base = NineCEncoder(k).encode(data)
        book = Codebook.from_lengths(
            assign_lengths_by_frequency(base.case_counts)
        )
        enc = NineCEncoder(k, book).encode(data)
        decoded = NineCDecoder(k, book).decode(enc)
        assert decoded.covers(data)
