"""Unit tests for the generalized segment-split coder (§II ablation)."""

import pytest
from hypothesis import given, settings

from repro.core import GeneralizedEncoder, NineCEncoder, TernaryVector
from repro.testdata import load_benchmark

from .conftest import ternary_vectors


class TestConstruction:
    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            GeneralizedEncoder(8, 0)

    def test_k_must_be_multiple(self):
        with pytest.raises(ValueError):
            GeneralizedEncoder(8, 3)
        with pytest.raises(ValueError):
            GeneralizedEncoder(2, 4)


class TestClassification:
    def test_two_segments_matches_ninec_kinds(self):
        enc = GeneralizedEncoder(8, 2)
        cases = enc.classify(TernaryVector("0000X01X"))
        assert cases == [("0", "U")]

    def test_four_segments(self):
        enc = GeneralizedEncoder(8, 4)
        cases = enc.classify(TernaryVector("0011XX01"))
        assert cases == [("0", "1", "0", "U")]

    def test_all_x_prefers_zero(self):
        enc = GeneralizedEncoder(4, 2)
        assert enc.classify(TernaryVector("XXXX")) == [("0", "0")]


class TestMeasurement:
    def test_empty(self):
        m = GeneralizedEncoder(4, 2).measure(TernaryVector(""))
        # one all-X pad block
        assert m.original_length == 0
        assert m.num_codewords == 1

    def test_single_case_costs_one_bit_each(self):
        m = GeneralizedEncoder(8, 2).measure(TernaryVector.zeros(80))
        assert m.num_codewords == 1
        assert m.compressed_size == 10  # 1-bit codeword per block

    def test_mismatch_payload_charged(self):
        data = TernaryVector("01100110" * 4 + "00000000" * 4)
        m = GeneralizedEncoder(8, 2).measure(data)
        counts = m.case_counts
        assert counts[("U", "U")] == 4
        assert counts[("0", "0")] == 4
        # sizes: 4 * (len_UU + 8) + 4 * len_00 with optimal 1-bit lengths
        assert m.compressed_size == 4 * (1 + 8) + 4 * 1

    @given(ternary_vectors(min_size=1, max_size=120))
    @settings(max_examples=60)
    def test_case_counts_sum_to_blocks(self, data):
        m = GeneralizedEncoder(8, 2).measure(data)
        blocks = (len(data) + 7) // 8
        assert sum(m.case_counts.values()) == max(blocks, 1)


class TestAblationShape:
    """The paper's §II trade-off claim, reproduced on a benchmark."""

    def test_two_segments_beats_one(self):
        stream = load_benchmark("s5378").to_stream()
        one = GeneralizedEncoder(8, 1).measure(stream)
        two = GeneralizedEncoder(8, 2).measure(stream)
        assert two.compression_ratio > one.compression_ratio

    def test_more_codewords_cost_decoder_complexity(self):
        stream = load_benchmark("s5378").to_stream()
        two = GeneralizedEncoder(16, 2).measure(stream)
        four = GeneralizedEncoder(16, 4).measure(stream)
        assert four.num_codewords > 5 * two.num_codewords
        # and the CR gain, if any, is slight (the paper's wording)
        assert four.compression_ratio - two.compression_ratio < 15.0

    def test_two_segment_optimal_lengths_close_to_ninec(self):
        # 9C's fixed lengths are near-optimal: the free-length version
        # beats them by only a small margin.
        stream = load_benchmark("s9234").to_stream()
        fixed = NineCEncoder(8).measure(stream)
        free = GeneralizedEncoder(8, 2).measure(stream)
        assert free.compression_ratio >= fixed.compression_ratio - 0.5
        assert free.compression_ratio - fixed.compression_ratio < 5.0
