"""Unit tests for the 9C codebook (Table I)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    PAPER_LENGTHS,
    BlockCase,
    Codebook,
    HalfKind,
    TernaryVector,
    canonical_codewords,
    classify_half,
    coding_table,
)


class TestBlockCase:
    def test_nine_cases(self):
        assert len(list(BlockCase)) == 9

    def test_half_kinds_match_table1(self):
        expected = {
            BlockCase.C1: (HalfKind.ZEROS, HalfKind.ZEROS),
            BlockCase.C2: (HalfKind.ONES, HalfKind.ONES),
            BlockCase.C3: (HalfKind.ZEROS, HalfKind.ONES),
            BlockCase.C4: (HalfKind.ONES, HalfKind.ZEROS),
            BlockCase.C5: (HalfKind.ZEROS, HalfKind.MISMATCH),
            BlockCase.C6: (HalfKind.MISMATCH, HalfKind.ZEROS),
            BlockCase.C7: (HalfKind.ONES, HalfKind.MISMATCH),
            BlockCase.C8: (HalfKind.MISMATCH, HalfKind.ONES),
            BlockCase.C9: (HalfKind.MISMATCH, HalfKind.MISMATCH),
        }
        for case, halves in expected.items():
            assert case.halves == halves

    def test_symbols(self):
        assert BlockCase.C1.symbol == "00"
        assert BlockCase.C5.symbol == "0U"
        assert BlockCase.C9.symbol == "UU"

    def test_mismatch_half_counts(self):
        assert BlockCase.C1.num_mismatch_halves == 0
        assert BlockCase.C6.num_mismatch_halves == 1
        assert BlockCase.C9.num_mismatch_halves == 2


class TestPaperLengths:
    def test_table1_lengths(self):
        assert PAPER_LENGTHS[BlockCase.C1] == 1
        assert PAPER_LENGTHS[BlockCase.C2] == 2
        assert PAPER_LENGTHS[BlockCase.C9] == 4
        for case in (BlockCase.C3, BlockCase.C4, BlockCase.C5,
                     BlockCase.C6, BlockCase.C7, BlockCase.C8):
            assert PAPER_LENGTHS[case] == 5

    def test_kraft_equality(self):
        assert sum(2.0 ** -l for l in PAPER_LENGTHS.values()) == pytest.approx(1.0)


class TestCanonicalCodewords:
    def test_lengths_respected(self):
        words = canonical_codewords(PAPER_LENGTHS)
        for case, bits in words.items():
            assert len(bits) == PAPER_LENGTHS[case]

    def test_default_assignment(self):
        words = canonical_codewords(PAPER_LENGTHS)
        assert words[BlockCase.C1] == (0,)
        assert words[BlockCase.C2] == (1, 0)
        assert words[BlockCase.C9] == (1, 1, 0, 0)

    def test_kraft_violation_rejected(self):
        bad = dict(PAPER_LENGTHS)
        bad[BlockCase.C9] = 1
        with pytest.raises(ValueError):
            canonical_codewords(bad)


class TestCodebook:
    def test_default_is_prefix_free(self):
        book = Codebook.default()
        words = [book.codeword(c) for c in BlockCase]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert a[: len(b)] != b, f"{a} prefixes {b}"

    def test_max_length_is_five(self):
        # Paper: "Maximum of five cycles are required for the longest codeword"
        assert Codebook.default().max_length == 5

    def test_decode_every_codeword(self):
        book = Codebook.default()
        for case in BlockCase:
            bits = iter(book.codeword(case))
            assert book.decode_case(lambda: next(bits)) is case

    def test_decode_rejects_x(self):
        book = Codebook.default()
        bits = iter([2])
        with pytest.raises(ValueError):
            book.decode_case(lambda: next(bits))

    def test_missing_case_rejected(self):
        words = canonical_codewords(PAPER_LENGTHS)
        del words[BlockCase.C9]
        with pytest.raises(ValueError):
            Codebook(words)

    def test_non_prefix_free_rejected(self):
        words = {case: bits for case, bits in Codebook.default().items()}
        words[BlockCase.C2] = (0, 0)  # C1=(0,) prefixes it... actually (0,) prefixes (0,0)
        with pytest.raises(ValueError):
            Codebook(words)

    def test_encoded_size(self):
        book = Codebook.default()
        k = 8
        assert book.encoded_size(BlockCase.C1, k) == 1
        assert book.encoded_size(BlockCase.C2, k) == 2
        assert book.encoded_size(BlockCase.C3, k) == 5
        assert book.encoded_size(BlockCase.C5, k) == 5 + 4
        assert book.encoded_size(BlockCase.C9, k) == 4 + 8

    def test_equality(self):
        assert Codebook.default() == Codebook.default()
        other = Codebook.from_lengths(
            {**PAPER_LENGTHS, BlockCase.C1: 2, BlockCase.C2: 1}
        )
        assert Codebook.default() != other

    def test_lengths_property(self):
        assert Codebook.default().lengths == PAPER_LENGTHS


class TestCodingTable:
    def test_k8_sizes_match_paper(self):
        # Table I, last column for K=8: 1, 2, 5, 5, 9, 9, 9, 9, 12
        rows = coding_table(8)
        sizes = [row.size_bits for row in rows]
        assert sizes == [1, 2, 5, 5, 9, 9, 9, 9, 12]

    def test_decoder_input_format(self):
        rows = coding_table(8)
        by_case = {row.case: row for row in rows}
        assert "+" not in by_case[BlockCase.C1].decoder_input
        assert by_case[BlockCase.C5].decoder_input.endswith("UUUU")
        assert by_case[BlockCase.C9].decoder_input.endswith("U" * 8)

    def test_input_block_rendering(self):
        rows = coding_table(4)
        by_case = {row.case: row for row in rows}
        assert by_case[BlockCase.C3].input_block == "00 11"
        assert by_case[BlockCase.C9].input_block == "UU UU"

    @pytest.mark.parametrize("k", [3, 0, -2, 7])
    def test_invalid_k_rejected(self, k):
        with pytest.raises(ValueError):
            coding_table(k)

    @given(st.integers(1, 32).map(lambda n: 2 * n))
    def test_size_column_general_k(self, k):
        rows = coding_table(k)
        by_case = {row.case: row for row in rows}
        assert by_case[BlockCase.C1].size_bits == 1
        assert by_case[BlockCase.C5].size_bits == 5 + k // 2
        assert by_case[BlockCase.C9].size_bits == 4 + k


class TestClassifyHalf:
    @pytest.mark.parametrize("text,expected", [
        ("0000", (True, False)),
        ("1111", (False, True)),
        ("XXXX", (True, True)),
        ("0X1X", (False, False)),
    ])
    def test_examples(self, text, expected):
        assert classify_half(TernaryVector(text)) == expected
