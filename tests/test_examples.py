"""Smoke tests: every example script runs green end-to-end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, env_extra=None, timeout=300):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "CR" in result.stdout
        assert "covers the original cubes: True" in result.stdout

    def test_rpct_flow(self):
        result = run_example("rpct_flow.py")
        assert result.returncode == 0, result.stderr
        assert "all architectures delivered the exact test patterns" \
            in result.stdout

    def test_code_comparison(self):
        result = run_example("code_comparison.py")
        assert result.returncode == 0, result.stderr
        assert "best average CR: 9c" in result.stdout

    def test_tradeoff_explorer(self):
        result = run_example("tradeoff_explorer.py", "s5378")
        assert result.returncode == 0, result.stderr
        assert "Pareto-optimal K values" in result.stdout

    def test_atpg_to_ate_fast_circuit(self):
        result = run_example(
            "atpg_to_ate.py", env_extra={"ATPG_CIRCUIT": "g64"}
        )
        assert result.returncode == 0, result.stderr
        assert "still detected" in result.stdout

    def test_full_system_fast_circuit(self):
        result = run_example(
            "full_system.py", env_extra={"ATPG_CIRCUIT": "g64"}
        )
        assert result.returncode == 0, result.stderr
        assert "golden signature" in result.stdout
        assert "caught by the" in result.stdout

    def test_generate_rtl(self, tmp_path):
        result = run_example("generate_rtl.py", str(tmp_path / "rtl"))
        assert result.returncode == 0, result.stderr
        generated = list((tmp_path / "rtl").glob("*.v"))
        assert len(generated) == 4
        text = (tmp_path / "rtl" / "ninec_decoder_k8.v").read_text()
        assert "module ninec_decoder" in text
