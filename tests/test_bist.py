"""Unit tests for the BIST substrate."""

import pytest

from repro.bist import (
    PseudoRandomTPG,
    random_pattern_resistant_faults,
    run_bist,
    weighted_random_patterns,
)
from repro.circuits import collapsed_faults, load_circuit


class TestTPG:
    def test_pattern_shape(self):
        tpg = PseudoRandomTPG(scan_length=7, seed=3)
        pattern = tpg.next_pattern()
        assert len(pattern) == 7
        assert pattern.is_fully_specified()

    def test_deterministic(self):
        a = PseudoRandomTPG(10, seed=5).test_set(8)
        b = PseudoRandomTPG(10, seed=5).test_set(8)
        assert a == b

    def test_seed_changes_patterns(self):
        a = PseudoRandomTPG(10, seed=5).test_set(8)
        b = PseudoRandomTPG(10, seed=6).test_set(8)
        assert a != b

    def test_invalid_scan_length(self):
        with pytest.raises(ValueError):
            PseudoRandomTPG(0)

    def test_patterns_look_random(self):
        ts = PseudoRandomTPG(64, seed=2).test_set(16)
        ones = sum(p.count(1) for p in ts)
        assert 0.35 < ones / ts.total_bits < 0.65

    def test_weighted_patterns(self):
        ts = weighted_random_patterns(100, 50, one_probability=0.8, seed=1)
        ones = sum(p.count(1) for p in ts)
        assert ones / ts.total_bits == pytest.approx(0.8, abs=0.05)

    def test_weighted_probability_validated(self):
        with pytest.raises(ValueError):
            weighted_random_patterns(8, 4, one_probability=1.0)


class TestBISTSession:
    def test_curve_monotone(self):
        result = run_bist(load_circuit("s27"), max_patterns=128,
                          batch_size=16)
        coverages = [c for _n, c in result.coverage_curve]
        assert coverages == sorted(coverages)
        assert result.patterns_applied <= 128

    def test_easy_circuit_saturates(self):
        # s27's faults are all easy: random patterns find them quickly.
        result = run_bist(load_circuit("s27"), max_patterns=256)
        assert result.fault_coverage == 100.0
        assert not result.resistant

    def test_explicit_fault_list(self):
        circuit = load_circuit("c17")
        faults = collapsed_faults(circuit)[:5]
        result = run_bist(circuit, max_patterns=64, faults=faults)
        assert result.total_faults == 5

    def test_patterns_to_reach(self):
        result = run_bist(load_circuit("s27"), max_patterns=256,
                          batch_size=32)
        needed = result.patterns_to_reach(100.0)
        assert needed is not None and needed <= 256
        assert result.patterns_to_reach(101.0) is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            run_bist(load_circuit("s27"), max_patterns=0)

    def test_resistant_faults_exist_on_real_logic(self):
        """The paper's motivation: random patterns leave escapes that a
        deterministic set covers."""
        from repro.atpg import generate_test_cubes

        circuit = load_circuit("g64")
        atpg = generate_test_cubes(circuit)
        resistant = random_pattern_resistant_faults(circuit, budget=256)
        # the ATPG flow detects some of BIST's escapes deterministically
        atpg_detected = set(atpg.detected)
        recovered = [f for f in resistant if f in atpg_detected]
        assert recovered, "deterministic test must beat 256 random patterns"

    def test_bist_needs_more_patterns_than_atpg(self):
        from repro.atpg import generate_test_cubes

        circuit = load_circuit("g64")
        atpg = generate_test_cubes(circuit)
        target = atpg.fault_coverage
        result = run_bist(circuit, max_patterns=2048, batch_size=128,
                          faults=collapsed_faults(circuit))
        needed = result.patterns_to_reach(target)
        if needed is not None:
            assert needed > len(atpg.test_set)
        else:
            assert result.fault_coverage < target
