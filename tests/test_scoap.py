"""Unit tests for SCOAP testability measures and PODEM guidance."""

import pytest

from repro.atpg.podem import Podem
from repro.circuits import (
    Gate,
    GateType,
    INFINITY,
    Netlist,
    collapsed_faults,
    compute_testability,
    load_circuit,
)


def chain_netlist():
    """a -> AND(a,b) -> NOT -> y (simple hand-checkable example)."""
    return Netlist(
        "chain", ["a", "b"], ["y"],
        [Gate("n1", GateType.AND, ("a", "b")),
         Gate("y", GateType.NOT, ("n1",))],
    )


class TestControllability:
    def test_inputs_cost_one(self):
        t = compute_testability(chain_netlist())
        assert t.cc0["a"] == 1 and t.cc1["a"] == 1

    def test_and_gate(self):
        t = compute_testability(chain_netlist())
        # AND: CC0 = min(CC0 inputs) + 1 = 2; CC1 = sum(CC1) + 1 = 3
        assert t.cc0["n1"] == 2
        assert t.cc1["n1"] == 3

    def test_not_gate_swaps(self):
        t = compute_testability(chain_netlist())
        assert t.cc0["y"] == t.cc1["n1"] + 1
        assert t.cc1["y"] == t.cc0["n1"] + 1

    def test_or_and_nor(self):
        n = Netlist(
            "or", ["a", "b"], ["o", "r"],
            [Gate("o", GateType.OR, ("a", "b")),
             Gate("r", GateType.NOR, ("a", "b"))],
        )
        t = compute_testability(n)
        assert t.cc1["o"] == 2  # min CC1 + 1
        assert t.cc0["o"] == 3  # sum CC0 + 1
        assert t.cc0["r"] == 2 and t.cc1["r"] == 3

    def test_xor(self):
        n = Netlist("x", ["a", "b"], ["y"],
                    [Gate("y", GateType.XOR, ("a", "b"))])
        t = compute_testability(n)
        assert t.cc0["y"] == 3  # equal inputs: 1+1 (+1)
        assert t.cc1["y"] == 3

    def test_controllability_accessor(self):
        t = compute_testability(chain_netlist())
        assert t.controllability("n1", 0) == t.cc0["n1"]
        assert t.controllability("n1", 1) == t.cc1["n1"]

    def test_deeper_nets_cost_more(self):
        t = compute_testability(load_circuit("g64"))
        levels = load_circuit("g64").levels()
        shallow = [n for n, l in levels.items() if l == 1]
        deep = [n for n, l in levels.items() if l == max(levels.values())]
        avg = lambda nets: sum(min(t.cc0[n], t.cc1[n]) for n in nets) / len(nets)
        assert avg(deep) > avg(shallow)


class TestObservability:
    def test_outputs_cost_zero(self):
        t = compute_testability(chain_netlist())
        assert t.co["y"] == 0

    def test_propagation_adds_cost(self):
        t = compute_testability(chain_netlist())
        assert t.co["n1"] == 1  # through the NOT
        # a through AND: side input b must be 1 (CC1=1) -> co = 1 + 1 + 1
        assert t.co["a"] == t.co["n1"] + 2

    def test_unobservable_net_marked(self):
        n = Netlist(
            "dangling", ["a"], ["y"],
            [Gate("y", GateType.BUF, ("a",)),
             Gate("dead", GateType.NOT, ("a",))],
        )
        t = compute_testability(n)
        assert t.co["dead"] >= INFINITY

    def test_hardest_nets(self):
        t = compute_testability(load_circuit("s27"))
        hardest = t.hardest_nets(3)
        assert len(hardest) == 3


class TestPodemGuidance:
    def test_guided_never_loses_coverage(self):
        circuit = load_circuit("g64")
        faults = collapsed_faults(circuit)
        unguided = Podem(circuit, guided=False)
        guided = Podem(circuit, guided=True)
        for fault in faults[:60]:
            a = unguided.generate(fault)
            b = guided.generate(fault)
            if a.status == "detected":
                assert b.status == "detected", fault

    def test_guided_reduces_backtracks(self):
        circuit = load_circuit("g256")
        faults = collapsed_faults(circuit)[:200]
        total = {True: 0, False: 0}
        for flag in (False, True):
            podem = Podem(circuit, backtrack_limit=200, guided=flag)
            for fault in faults:
                total[flag] += podem.generate(fault).backtracks
        assert total[True] <= total[False]

    def test_untestable_still_proven(self):
        n = Netlist(
            "red", ["a"], ["y"],
            [Gate("na", GateType.NOT, ("a",)),
             Gate("y", GateType.OR, ("a", "na"))],
        )
        from repro.circuits import Fault

        assert Podem(n, guided=True).generate(Fault("y", 1)).status == \
            "untestable"
