"""Unit tests for the calibrated benchmark test-set generator."""

import pytest

from repro.core import NineCEncoder
from repro.testdata import (
    ALL_PROFILES,
    IBM_PROFILES,
    ISCAS89_PROFILES,
    BenchmarkProfile,
    generate,
    generate_stream,
    load_benchmark,
)

#: Published MinTest |T_D| sizes the paper reports for these circuits.
PAPER_TD = {
    "s5378": 23754,
    "s9234": 39273,
    "s13207": 165200,
    "s15850": 76986,
    "s38417": 164736,
    "s38584": 199104,
}


class TestProfiles:
    def test_six_iscas_circuits(self):
        assert set(ISCAS89_PROFILES) == set(PAPER_TD)

    @pytest.mark.parametrize("name,td", sorted(PAPER_TD.items()))
    def test_td_matches_paper(self, name, td):
        assert ISCAS89_PROFILES[name].total_bits == td

    def test_ibm_profiles_are_mbit_scale(self):
        for profile in IBM_PROFILES.values():
            assert profile.total_bits >= 4_000_000
            assert profile.x_density > 0.95

    def test_scaled(self):
        p = ISCAS89_PROFILES["s5378"].scaled(0.1)
        assert p.num_patterns == round(111 * 0.1)
        assert p.num_cells == 214

    def test_scaled_minimum_one_pattern(self):
        assert ISCAS89_PROFILES["s5378"].scaled(0.0001).num_patterns == 1


class TestGeneration:
    def test_deterministic(self):
        p = ISCAS89_PROFILES["s5378"].scaled(0.2)
        assert generate(p) == generate(p)

    def test_seed_override_changes_data(self):
        p = ISCAS89_PROFILES["s5378"].scaled(0.2)
        assert generate(p, seed=1) != generate(p, seed=2)

    def test_dimensions(self):
        p = ISCAS89_PROFILES["s9234"].scaled(0.3)
        ts = generate(p)
        assert ts.num_cells == p.num_cells
        assert ts.num_patterns == p.num_patterns

    def test_x_density_close_to_target(self):
        p = ISCAS89_PROFILES["s13207"]
        ts = generate(p)
        assert ts.x_density == pytest.approx(p.x_density, abs=0.02)

    def test_zero_bias_respected(self):
        stream = generate_stream(ISCAS89_PROFILES["s5378"])
        zeros = stream.count(0)
        ones = stream.count(1)
        assert zeros / (zeros + ones) == pytest.approx(
            ISCAS89_PROFILES["s5378"].zero_bias, abs=0.06
        )

    def test_bad_x_density_rejected(self):
        with pytest.raises(ValueError):
            generate_stream(BenchmarkProfile("bad", 10, 10, 1.0))


class TestLoadBenchmark:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_benchmark("s9999")

    def test_cached(self):
        a = load_benchmark("s5378", fraction=0.1)
        b = load_benchmark("s5378", fraction=0.1)
        assert a is b

    def test_all_profiles_union(self):
        assert set(ALL_PROFILES) == set(ISCAS89_PROFILES) | set(IBM_PROFILES)


class TestCalibration:
    """The generated sets must reproduce the paper's qualitative shape."""

    @pytest.mark.parametrize("name", sorted(PAPER_TD))
    def test_cr_peaks_at_small_k_then_declines(self, name):
        stream = load_benchmark(name).to_stream()
        crs = {k: NineCEncoder(k).measure(stream).compression_ratio
               for k in (4, 8, 16, 32)}
        best = max(crs, key=crs.get)
        assert best in (8, 16)
        assert crs[32] < crs[best]

    @pytest.mark.parametrize("name", sorted(PAPER_TD))
    def test_leftover_x_grows_with_k(self, name):
        stream = load_benchmark(name).to_stream()
        lx = [NineCEncoder(k).measure(stream).leftover_x_percent
              for k in (4, 8, 16, 32)]
        assert lx == sorted(lx)
        assert lx[0] == pytest.approx(0.0, abs=0.5)  # K=4: halves of 2 bits

    def test_k8_wins_on_average(self):
        # Paper: "K=8 shows more average compression ratio compared to
        # other K's for these benchmarks".
        totals = {k: 0.0 for k in (4, 8, 16, 32)}
        for name in PAPER_TD:
            stream = load_benchmark(name).to_stream()
            for k in totals:
                totals[k] += NineCEncoder(k).measure(stream).compression_ratio
        assert max(totals, key=totals.get) == 8
