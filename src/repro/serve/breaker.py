"""Per-route circuit breaker: CLOSED -> OPEN -> HALF_OPEN -> CLOSED.

When a route — one (op, circuit, K) combination — keeps failing with
retryable errors, hammering it just burns workers and queue slots.
The breaker trips after ``failure_threshold`` consecutive failures,
fast-fails everything for ``recovery_s`` (callers get a retryable
:class:`~repro.core.errors.CircuitOpenError` without touching a
worker), then lets at most ``half_open_max`` concurrent probes
through.  A successful probe closes the breaker; a failed probe
reopens it for a fresh ``recovery_s`` window.

The clock is injected (any ``() -> float`` callable) so the state
machine is testable without sleeping, and every transition is counted
in the obs registry (``serve.breaker.opened`` etc.), emitted as a
structured ``serve.breaker`` log event, and kept in a local transition
log the chaos suite asserts against.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Tuple

from .. import obs as _obs
from ..obs import log as _log
from ..core.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One route's breaker; see the module docstring for the protocol.

    Usage::

        breaker.before_call()          # may raise CircuitOpenError
        try:    ... do the work ...
        except RetryableFailure: breaker.record_failure()
        else:   breaker.record_success()
    """

    def __init__(
        self,
        route: str = "",
        *,
        failure_threshold: int = 5,
        recovery_s: float = 5.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.route = route
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: ``(timestamp, from_state, to_state)`` log for chaos assertions.
        self.transitions: List[Tuple[float, str, str]] = []

    @property
    def state(self) -> str:
        """Current state, advancing OPEN -> HALF_OPEN when its window ends."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, to_state: str) -> None:
        from_state = self._state
        if from_state == to_state:
            return
        self._state = to_state
        self.transitions.append((self._clock(), from_state, to_state))
        if _obs.enabled():
            _obs.counter(f"serve.breaker.{to_state}").inc()
        _log.log(
            "warning" if to_state == OPEN else "info",
            "serve.breaker", route=str(self.route),
            from_state=from_state, to_state=to_state,
            failures=self._consecutive_failures,
        )

    def _maybe_half_open(self) -> None:
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.recovery_s):
            self._transition(HALF_OPEN)
            self._half_open_inflight = 0

    def before_call(self) -> None:
        """Admission check; raises :class:`CircuitOpenError` when tripped.

        In HALF_OPEN, admits up to ``half_open_max`` concurrent probes
        and rejects the rest (still as open-circuit failures).
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return
            state = self._state
            if state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max:
                    self._half_open_inflight += 1
                    return
                retry_in = None
            else:
                retry_in = max(
                    0.0, self.recovery_s - (self._clock() - self._opened_at)
                )
        context: dict = {"route": self.route, "state": state}
        if retry_in is not None:
            context["retry_in_s"] = round(retry_in, 3)
        raise CircuitOpenError("circuit breaker is open", **context)

    def record_success(self) -> None:
        """A call completed: reset the failure run, close from HALF_OPEN."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._half_open_inflight = max(
                    0, self._half_open_inflight - 1
                )
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A retryable failure: trip from CLOSED at threshold, reopen a probe."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._half_open_inflight = max(
                    0, self._half_open_inflight - 1
                )
                self._opened_at = self._clock()
                self._transition(OPEN)
            elif (self._state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def snapshot(self) -> dict:
        """JSON-ready state for ``health`` responses."""
        with self._lock:
            self._maybe_half_open()
            return {
                "route": self.route,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": len(self.transitions),
            }


class BreakerBoard:
    """Lazily-created :class:`CircuitBreaker` per route key."""

    def __init__(self, **breaker_kwargs):
        self._kwargs = breaker_kwargs
        self._lock = threading.Lock()
        self._breakers: Dict[Hashable, CircuitBreaker] = {}

    def breaker(self, route: Hashable) -> CircuitBreaker:
        with self._lock:
            if route not in self._breakers:
                self._breakers[route] = CircuitBreaker(
                    route=str(route), **self._kwargs
                )
            return self._breakers[route]

    def snapshot(self) -> dict:
        with self._lock:
            breakers = dict(self._breakers)
        return {str(route): breaker.snapshot()
                for route, breaker in breakers.items()}
