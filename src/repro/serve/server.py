"""Transport layer: asyncio TCP server and the two client flavors.

The server speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over TCP.  Per connection, every request
line becomes its own task, so a slow request does not head-of-line
block pipelined peers; responses carry the request ``id`` and may
arrive out of order.  Writes go through a per-connection lock and a
drain timeout — a client that stops reading (slow-loris on the
response side) is disconnected instead of wedging the writer task.

Two clients share one calling convention (``await call(op, params)``):

* :class:`Client` — in-process, wraps a :class:`CompressionService`
  directly.  Tests and the benchmark harness use it: the exact dicts
  of the wire path, none of the sockets.
* :class:`TCPClient` — one TCP connection, sequential request/response
  (the load generator opens one per concurrent worker).
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Optional

from ..core.errors import MalformedFrameError, ServeError
from ..obs import log as _log
from .protocol import MAX_FRAME_BYTES, encode_frame, error_response, parse_request
from .service import CompressionService, ServiceConfig

#: How long one response write may take before the client is dropped.
WRITE_TIMEOUT_S = 10.0


class ServeServer:
    """Owns the listening socket and the service behind it."""

    def __init__(self, service: CompressionService,
                 host: str = "127.0.0.1", port: int = 9127):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ServeServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_FRAME_BYTES + 2,
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]  # resolve port 0
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        if self._server is None:
            raise RuntimeError("server failed to start")
        async with self._server:
            await self._server.serve_forever()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks = set()
        peer = writer.get_extra_info("peername")
        _log.debug("serve.connection_open", peer=str(peer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # frame larger than the read limit: answer once, drop
                    await self._send(
                        writer, write_lock,
                        error_response("", MalformedFrameError(
                            "frame exceeds size limit",
                            limit=MAX_FRAME_BYTES,
                        )),
                    )
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            _log.debug("serve.connection_close", peer=str(peer),
                       inflight=len(tasks))
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        try:
            request = parse_request(line)
        except ServeError as exc:
            response = error_response(_best_effort_id(line), exc)
        else:
            response = await self.service.handle_request(request)
        await self._send(writer, write_lock, response)

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, response: dict) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(encode_frame(response))
            try:
                await asyncio.wait_for(writer.drain(), WRITE_TIMEOUT_S)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                writer.close()  # slow or gone client: cut it loose


def _best_effort_id(line: bytes) -> str:
    """Recover the request id from a frame that failed validation."""
    try:
        payload = json.loads(line.decode("utf-8"))
        if isinstance(payload, dict):
            return str(payload.get("id", ""))
    except (UnicodeDecodeError, json.JSONDecodeError):
        pass
    return ""


class Client:
    """In-process client over a :class:`CompressionService`."""

    def __init__(self, service: CompressionService):
        self.service = service
        self._ids = itertools.count(1)

    async def call(self, op: str, params: Optional[dict] = None,
                   deadline_ms: Optional[float] = None) -> dict:
        request = {"id": f"c{next(self._ids)}", "op": op,
                   "params": params or {}}
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return await self.service.handle_request(request)

    async def close(self) -> None:
        """Symmetry with :class:`TCPClient`; the service owns shutdown."""


class TCPClient:
    """One TCP connection; sequential ``call`` with matching by id."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9127):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()

    async def connect(self) -> "TCPClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES + 2
        )
        return self

    async def call(self, op: str, params: Optional[dict] = None,
                   deadline_ms: Optional[float] = None) -> dict:
        if self._reader is None or self._writer is None:
            await self.connect()
        if self._reader is None or self._writer is None:
            raise RuntimeError("client connection was not established")
        request_id = f"t{next(self._ids)}"
        frame: dict = {"id": request_id, "op": op, "params": params or {}}
        if deadline_ms is not None:
            frame["deadline_ms"] = deadline_ms
        async with self._lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = json.loads(line.decode("utf-8"))
                if response.get("id") == request_id:
                    return response
                # a response to a different (pipelined) request: with
                # the sequential lock this should not happen; skip it.

    async def send_raw(self, payload: bytes) -> dict:
        """Send raw bytes (chaos: malformed frames) and read one reply."""
        if self._reader is None or self._writer is None:
            await self.connect()
        if self._reader is None or self._writer is None:
            raise RuntimeError("client connection was not established")
        async with self._lock:
            self._writer.write(payload)
            await self._writer.drain()
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            return json.loads(line.decode("utf-8"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None


async def start_server(host: str = "127.0.0.1", port: int = 9127,
                       config: Optional[ServiceConfig] = None) -> ServeServer:
    """Convenience: build service + server, start both, return the server."""
    service = CompressionService(config)
    server = ServeServer(service, host, port)
    return await server.start()
