"""Closed-loop load generator with client-side verification.

``concurrency`` workers each run a request loop against a client
(in-process :class:`~repro.serve.server.Client` or one
:class:`~repro.serve.server.TCPClient` per worker) until the target
request count is reached — closed-loop, so offered load adapts to
service latency instead of overrunning it.  Every response is checked
against locally pre-computed expectations (the pipeline is
deterministic, so the generator *is* an end-to-end oracle): an
unflagged wrong answer, a lost request or an untyped failure is an
invariant violation, and the CLI exits nonzero on any.

Latency lands in a local :class:`~repro.obs.metrics.MetricsRegistry`
histogram whose bucket-interpolated ``quantile`` answers p50/p95/p99
in O(buckets) memory regardless of run length — a million-request soak
costs the same fixed footprint as a smoke run — and the result
serializes through the ``BENCH_obs.json`` schema
(:mod:`repro.obs.profile`) as a ``serve`` scenario — the same file
format, validator and trajectory the rest of the bench suite uses.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Optional

from ..core.decoder import NineCDecoder
from ..core.encoder import NineCEncoder
from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.profile import SCHEMA_VERSION
from .service import LATENCY_BOUNDS_MS

#: Client factory type: one fresh client per loadgen worker.
ClientFactory = Callable[[], Awaitable[object]]


@dataclass
class LoadReport:
    """Everything one loadgen run measured."""

    circuit: str
    k: int
    requests: int
    concurrency: int
    batch: int
    wall_s: float = 0.0
    bits: int = 0
    latency: Optional[Histogram] = None
    ok: int = 0
    degraded: int = 0
    errors: int = 0
    shed: int = 0
    violations: List[str] = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def stats(self) -> dict:
        hist = self.latency
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "batch": self.batch,
            "ok": self.ok,
            "degraded": self.degraded,
            "errors": self.errors,
            "shed": self.shed,
            "p50_ms": hist.quantile(0.50) if hist is not None else 0.0,
            "p95_ms": hist.quantile(0.95) if hist is not None else 0.0,
            "p99_ms": hist.quantile(0.99) if hist is not None else 0.0,
            "mean_ms": (hist.sum / hist.count
                        if hist is not None and hist.count else 0.0),
            "rps": self.requests / self.wall_s if self.wall_s > 0 else 0.0,
            "cache_hit_rate": self.cache.get("hit_rate", 0.0),
            "violations": len(self.violations),
        }

    def to_baseline_dict(self) -> dict:
        """Serialize through the ``BENCH_obs.json`` schema."""
        stats = self.stats()
        return {
            "schema_version": SCHEMA_VERSION,
            "target": self.circuit,
            "k": self.k,
            "session_circuit": self.circuit,
            "scenarios": {
                "serve": {
                    "wall_s": self.wall_s,
                    "bits": self.bits,
                    "bits_per_s": (self.bits / self.wall_s
                                   if self.wall_s > 0 else 0.0),
                    "spans": {},
                    "metrics": self.metrics,
                    "extra": stats,
                },
            },
        }


async def run_loadgen(
    client_factory: ClientFactory,
    *,
    circuit: str = "s27",
    k: int = 8,
    requests: int = 100,
    concurrency: int = 4,
    batch: int = 1,
    mix: str = "both",
    request_deadline_ms: float = 10_000.0,
    inject_worker_crashes: int = 0,
    verify: bool = True,
) -> LoadReport:
    """Run the closed loop; see the module docstring.

    ``mix`` is ``compress`` / ``decompress`` / ``both`` (alternating).
    ``batch > 1`` sends that many items per compress request (the
    ``items`` form), exercising the service's batch path end-to-end.
    ``inject_worker_crashes`` arms that many worker-kill faults via the
    server's ``chaos`` op partway through the run (the server must run
    with chaos enabled).
    """
    if mix not in ("compress", "decompress", "both"):
        raise ValueError(f"mix must be compress|decompress|both, got {mix!r}")
    if requests < 1 or concurrency < 1 or batch < 1:
        raise ValueError("requests, concurrency and batch must be >= 1")

    # local oracle: same deterministic pipeline the server runs
    from ..atpg.flow import generate_test_cubes
    from ..circuits.library import available_circuits, load_circuit

    if circuit not in available_circuits():
        raise ValueError(
            f"unknown circuit {circuit!r}; available: "
            f"{', '.join(available_circuits())}"
        )
    data = generate_test_cubes(load_circuit(circuit)).test_set.to_stream()
    data_str = data.to_string()
    encoder = NineCEncoder(k)
    encoding = encoder.encode(data)
    expected_stream = encoding.stream.to_string()
    expected_data = NineCDecoder(k).decode_stream(
        encoding.stream, encoding.original_length
    ).to_string()

    registry = MetricsRegistry()
    latency_hist = registry.histogram("loadgen.latency_ms",
                                      LATENCY_BOUNDS_MS)
    report = LoadReport(circuit=circuit, k=k, requests=requests,
                        concurrency=concurrency, batch=batch,
                        latency=latency_hist)
    counter = {"next": 0}
    crash_at = (set(range(requests // 3,
                          requests // 3 + inject_worker_crashes))
                if inject_worker_crashes else set())

    def claim() -> Optional[int]:
        index = counter["next"]
        if index >= requests:
            return None
        counter["next"] = index + 1
        return index

    def record(index: int, response: dict, latency_ms: float) -> None:
        latency_hist.observe(latency_ms)
        if not isinstance(response, dict) or "ok" not in response:
            report.violations.append(
                f"request {index}: malformed response {response!r}"
            )
            return
        if response["ok"]:
            report.ok += 1
            degraded = bool(response.get("degraded"))
            flags = response.get("flags", [])
            if degraded:
                report.degraded += 1
                if not flags:
                    report.violations.append(
                        f"request {index}: degraded response without flags"
                    )
            if verify:
                _verify(index, response, degraded)
        else:
            error = response.get("error")
            if not isinstance(error, dict) or "code" not in error:
                report.violations.append(
                    f"request {index}: error response without typed error"
                )
                return
            report.errors += 1
            if error["code"] == "overloaded":
                report.shed += 1

    def _verify(index: int, response: dict, degraded: bool) -> None:
        result = response.get("result", {})
        if "items" in result:
            streams = [item.get("stream") for item in result["items"]]
            wrong = [s for s in streams if s != expected_stream]
            if wrong and not degraded:
                report.violations.append(
                    f"request {index}: unflagged wrong compress batch item"
                )
        elif "stream" in result:
            if result["stream"] != expected_stream and not degraded:
                report.violations.append(
                    f"request {index}: unflagged wrong compress stream"
                )
        elif "data" in result:
            if result["data"] != expected_data and not degraded:
                report.violations.append(
                    f"request {index}: unflagged wrong decompress data"
                )

    async def worker() -> None:
        client = await client_factory()
        try:
            while True:
                index = claim()
                if index is None:
                    return
                if index in crash_at:
                    await client.call(
                        "chaos", {"fault": "worker_crash", "times": 1}
                    )
                op = ("compress" if mix == "compress"
                      or (mix == "both" and index % 2 == 0)
                      else "decompress")
                if op == "compress":
                    # batch == 1 uses the circuit form so the run also
                    # exercises the server's prepared-artifact cache
                    params = ({"circuit": circuit, "k": k} if batch == 1
                              else {"items": [data_str] * batch, "k": k})
                    bits = len(data) * batch
                else:
                    params = {"stream": expected_stream, "k": k,
                              "output_length": encoding.original_length}
                    bits = encoding.original_length
                started = time.perf_counter()
                try:
                    response = await client.call(
                        op, params, deadline_ms=request_deadline_ms
                    )
                except Exception as exc:  # noqa: BLE001 - a raised
                    # exception (vs typed response) is itself a finding
                    report.violations.append(
                        f"request {index}: client raised "
                        f"{type(exc).__name__}: {exc}"
                    )
                    continue
                record(index, response,
                       (time.perf_counter() - started) * 1e3)
                if isinstance(response, dict) and response.get("ok"):
                    report.bits += bits
        finally:
            close = getattr(client, "close", None)
            if close is not None:
                await close()

    started = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    report.wall_s = time.perf_counter() - started

    answered = report.ok + report.errors
    if answered != requests:
        report.violations.append(
            f"lost requests: {requests} sent, {answered} answered"
        )

    # pull server-side cache stats when the client can reach health
    probe = await client_factory()
    try:
        health = await probe.call("health", {})
        if isinstance(health, dict) and health.get("ok"):
            report.cache = health["result"].get("cache", {})
    except Exception:  # noqa: BLE001 - health probe is best-effort
        pass
    finally:
        close = getattr(probe, "close", None)
        if close is not None:
            await close()

    report.metrics = registry.snapshot()
    return report
