"""Bounded retry with exponential backoff and deterministic jitter.

Worker failures (a killed pool process, a broken executor) are
transient: the right response is to rebuild and try again, a bounded
number of times, waiting longer each attempt, with jitter so a fleet
of callers does not retry in lockstep.  Only :class:`ServeError`
subclasses whose ``retryable`` flag is set are retried — a malformed
stream fails identically every time and is surfaced immediately.

Jitter is drawn from a seeded :class:`random.Random`, so a test (or a
chaos campaign triage) can replay the exact backoff schedule.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, List, Optional, TypeVar

from ..core.errors import ServeError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    Backoff for attempt ``n`` (0-based) is
    ``min(base_s * multiplier**n, max_backoff_s)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_s: float = 0.02
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """The wait before retry number ``attempt`` (0-based)."""
        raw = min(self.base_s * self.multiplier ** attempt,
                  self.max_backoff_s)
        if self.jitter == 0.0:
            return raw
        return raw * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def schedule(self) -> List[float]:
        """The full deterministic backoff schedule (for docs and tests)."""
        rng = random.Random(self.seed)
        return [self.backoff_s(attempt, rng)
                for attempt in range(self.max_attempts - 1)]


async def run_with_retry(
    fn: Callable[[], Awaitable[T]],
    policy: RetryPolicy,
    *,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, ServeError], None]] = None,
) -> T:
    """Run ``fn`` up to ``policy.max_attempts`` times.

    Retries only on retryable :class:`ServeError`; any other exception
    (including non-retryable serve errors) propagates immediately.  The
    final retryable failure propagates with an ``attempts`` entry added
    to its context.  ``on_retry(attempt, error)`` is called before each
    backoff sleep — the service uses it to count retries.
    """
    rng = rng if rng is not None else random.Random(policy.seed)
    attempt = 0
    while True:
        try:
            return await fn()
        except ServeError as exc:
            if not exc.retryable or attempt >= policy.max_attempts - 1:
                exc.context.setdefault("attempts", attempt + 1)
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            await asyncio.sleep(policy.backoff_s(attempt, rng))
            attempt += 1
