"""LRU cache of prepared pipeline artifacts.

Every service call used to pay for its own setup: codebooks,
:class:`~repro.core.decoder.CodewordScanTable` LUTs, encoder/decoder
instances, ATPG-derived test streams and gate-level decoder netlists
were rebuilt per request.  :class:`PreparedArtifactCache` keeps them
hot: a thread-safe LRU keyed by structured tuples
(``("scan_table", 8, "default")``), with hit/miss/eviction counters
both local (for ``health`` snapshots) and mirrored into the
:mod:`repro.obs` registry when instrumentation is on.

The cache is deliberately generic — ``get_or_build(key, builder)`` —
so worker processes reuse the same class for their private per-process
caches, and tests can cache arbitrary sentinels.  Builders run outside
the lock (two threads may race to build the same artifact; the first
insert wins and the loser's build is discarded), so a slow build never
blocks unrelated lookups.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

from .. import obs as _obs

#: Default capacity: artifacts are small (tables, netlists, streams),
#: but unbounded growth across a (circuit, K, codebook) product is not.
DEFAULT_CAPACITY = 128


class PreparedArtifactCache:
    """Thread-safe LRU with hit/miss counters.

    ``name`` prefixes the obs counters (``serve.cache.hits`` for the
    default name), so the service cache and worker-local caches stay
    distinguishable in one registry.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 name: str = "serve.cache"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Tuple[bool, Optional[object]]:
        """``(found, value)`` — a found key moves to most-recently-used."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
                value = self._entries[key]
            else:
                self.misses += 1
                hit = False
                value = None
        if _obs.enabled():
            _obs.counter(f"{self.name}.hits" if hit
                         else f"{self.name}.misses").inc()
        return hit, value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        evicted = False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted and _obs.enabled():
            _obs.counter(f"{self.name}.evictions").inc()

    def get_or_build(self, key: Hashable,
                     builder: Callable[[], object]) -> object:
        """The cached value for ``key``, building it on a miss.

        The builder runs outside the cache lock; when two threads race,
        the first completed insert wins and the loser receives the
        winner's entry exactly as a late hit would — recency refreshed,
        hit counted — while its own build is discarded (artifacts are
        deterministic, so either is correct).
        """
        found, value = self.get(key)
        if found:
            return value
        built = builder()
        race_hit = False
        evicted = False
        with self._lock:
            if key in self._entries:
                # Lost the build race: behave exactly like a hit on the
                # winner's entry.
                self._entries.move_to_end(key)
                self.hits += 1
                race_hit = True
                value = self._entries[key]
            else:
                self._entries[key] = built
                value = built
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted = True
        if _obs.enabled():
            if race_hit:
                _obs.counter(f"{self.name}.hits").inc()
            if evicted:
                _obs.counter(f"{self.name}.evictions").inc()
        return value

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """hits / lookups over the cache's lifetime (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-ready snapshot for ``health`` responses and load reports."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
