"""repro.serve: a fault-tolerant, batching 9C compression service.

The paper's decompressor lives on-chip; everything upstream of it —
preparing codebooks, compressing test sets, validating streams — runs
off-chip in EDA/test infrastructure that must behave like a service:
many concurrent callers, bounded latency, partial failures.  This
package wraps the repro pipeline in exactly that shape:

* :mod:`~repro.serve.protocol` — newline-delimited JSON frames and the
  typed request/response contract;
* :mod:`~repro.serve.service` — the asyncio core: worker-pool
  dispatch, micro-batching, deadlines, backpressure with explicit
  load-shedding, retries, per-route circuit breakers, and the
  fast-path -> reference degradation ladder;
* :mod:`~repro.serve.server` — TCP transport plus the in-process
  :class:`Client` and socket :class:`TCPClient`;
* :mod:`~repro.serve.cache` — LRU :class:`PreparedArtifactCache` for
  codebooks, scan tables and circuit streams;
* :mod:`~repro.serve.breaker` / :mod:`~repro.serve.retry` — the
  resilience primitives, individually testable;
* :mod:`~repro.serve.chaos` — the fault-injection campaign that
  asserts the service's invariants (no lost requests, no silent
  corruption, typed errors only, breaker discipline);
* :mod:`~repro.serve.loadgen` — closed-loop load generator emitting
  ``BENCH_obs.json``-schema reports.

See ``docs/serving.md`` for the protocol and failure-mode reference.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from .cache import PreparedArtifactCache
from .chaos import ChaosReport, check_response_shape, run_chaos_campaign
from .loadgen import LoadReport, run_loadgen
from .protocol import (
    MAX_FRAME_BYTES,
    OPS,
    Request,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from .retry import RetryPolicy, run_with_retry
from .server import Client, ServeServer, TCPClient, start_server
from .service import CompressionService, ServiceConfig, ServiceFault

__all__ = [
    "BreakerBoard",
    "CLOSED",
    "ChaosReport",
    "CircuitBreaker",
    "Client",
    "CompressionService",
    "HALF_OPEN",
    "LoadReport",
    "MAX_FRAME_BYTES",
    "OPEN",
    "OPS",
    "PreparedArtifactCache",
    "Request",
    "RetryPolicy",
    "ServeServer",
    "ServiceConfig",
    "ServiceFault",
    "TCPClient",
    "check_response_shape",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "run_chaos_campaign",
    "run_loadgen",
    "run_with_retry",
    "start_server",
]
