"""Chaos harness: drive the service through faults, assert invariants.

A service is only production-grade once it degrades *gracefully*:
this module composes the PR-1 channel injectors
(:mod:`repro.robust.channel` — bit flips, bursts, drops over the
compressed stream) with service-level faults (worker kills, synthetic
worker failures, injected latency, fast-path corruption, malformed
frames, overload) and checks the contract every response must honor:

* **no request lost** — every sent request terminates with exactly one
  response inside the scenario deadline;
* **no silent corruption** — an ``ok`` response must carry the correct
  payload (checked against locally-computed expectations) *unless* it
  is flagged ``degraded``; corrupted-input requests must come back as
  typed errors or flagged recoveries, never clean lies;
* **typed errors only** — every failure is a protocol error object
  with a stable ``code``; and
* **breaker discipline** — sustained failures open the route's
  breaker, probes half-open it, and a success closes it (asserted on
  the transition log).

:func:`run_chaos_campaign` returns a :class:`ChaosReport`; an empty
``violations`` list is the pass criterion the chaos test suite and the
CI smoke job assert on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.bitvec import TernaryVector
from ..core.encoder import NineCEncoder
from ..robust.channel import Channel
from .server import Client
from .service import CompressionService, ServiceFault

#: Wall-clock bound on one whole chaos scenario; a hang is a failure,
#: not a longer wait.
DEFAULT_SCENARIO_DEADLINE_S = 60.0


@dataclass
class ChaosReport:
    """What a campaign sent, what came back, what broke."""

    requests_sent: int = 0
    responses: List[dict] = field(default_factory=list)
    ok: int = 0
    degraded: int = 0
    errors_by_code: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: Corrupted streams that decoded to wrong-but-valid output: the
    #: raw 9C code cannot detect these (PR 1's framing/signature layer
    #: exists for exactly this); measured, not a service violation.
    channel_silent_escapes: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def tally(self, response: dict) -> None:
        self.responses.append(response)
        if response.get("ok"):
            self.ok += 1
            if response.get("degraded"):
                self.degraded += 1
        else:
            code = response.get("error", {}).get("code", "<missing>")
            self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        errors = ", ".join(
            f"{code}:{count}"
            for code, count in sorted(self.errors_by_code.items())
        ) or "none"
        return (
            f"{status}: {self.requests_sent} requests -> {self.ok} ok "
            f"({self.degraded} degraded), errors [{errors}], "
            f"{len(self.violations)} violations"
        )


def check_response_shape(response: dict) -> Optional[str]:
    """The typed-outcome invariant for one response; None when it holds."""
    if not isinstance(response, dict):
        return f"response is not an object: {response!r}"
    if response.get("ok") is True:
        if "result" not in response:
            return f"ok response without result: {response!r}"
        return None
    if response.get("ok") is False:
        error = response.get("error")
        if not isinstance(error, dict) or "code" not in error \
                or "message" not in error or "retryable" not in error:
            return f"error response without a typed error object: {response!r}"
        return None
    return f"response is neither ok nor a typed error: {response!r}"


async def run_chaos_campaign(
    service: CompressionService,
    *,
    requests: int = 40,
    k: int = 8,
    data: str = "00000000" "11111111" "0110X01X" "0000X0X0" * 3,
    faults: Sequence[ServiceFault] = (),
    channel: Optional[Channel] = None,
    corrupt_every: int = 4,
    deadline_s: float = DEFAULT_SCENARIO_DEADLINE_S,
    request_deadline_ms: float = 5_000.0,
) -> ChaosReport:
    """Drive ``requests`` compress/decompress calls through the faults.

    Even requests compress ``data``; odd requests decompress the
    (locally pre-computed) compressed stream — every
    ``corrupt_every``-th of those first passes the stream through
    ``channel``, modeling the damaged ATE link.  ``faults`` are armed
    on the service's plan before traffic starts.  The whole campaign
    runs under ``deadline_s``; a hang is reported as a violation, not
    awaited forever.
    """
    encoder = NineCEncoder(k)
    encoding = encoder.encode(TernaryVector(data))
    expected_stream = encoding.stream.to_string()
    expected_data = _expected_roundtrip(encoder, encoding)
    client = Client(service)
    for fault in faults:
        service.fault_plan.arm(fault)

    report = ChaosReport()

    async def one_request(index: int) -> dict:
        if index % 2 == 0:
            return await client.call(
                "compress", {"data": data, "k": k},
                deadline_ms=request_deadline_ms,
            )
        stream = expected_stream
        corrupted = False
        if channel is not None and corrupt_every \
                and (index // 2) % corrupt_every == 0:
            result = channel.apply(encoding.stream)
            stream = result.stream.to_string()
            corrupted = result.corrupted
        response = await client.call(
            "decompress",
            {"stream": stream, "k": k,
             "output_length": encoding.original_length},
            deadline_ms=request_deadline_ms,
        )
        response["_corrupted_input"] = corrupted
        return response

    async def campaign() -> None:
        pending = [one_request(i) for i in range(requests)]
        report.requests_sent = len(pending)
        for response in await asyncio.gather(*pending,
                                             return_exceptions=True):
            if isinstance(response, BaseException):
                report.violations.append(
                    "request terminated with a raw exception instead of "
                    f"a typed response: {type(response).__name__}: {response}"
                )
                continue
            corrupted_input = response.pop("_corrupted_input", False)
            report.tally(response)
            shape_problem = check_response_shape(response)
            if shape_problem:
                report.violations.append(shape_problem)
                continue
            _check_content(response, corrupted_input)

    def _check_content(response: dict, corrupted_input: bool) -> None:
        if not response.get("ok"):
            return  # typed error: a legitimate terminal outcome
        result = response["result"]
        degraded = bool(response.get("degraded"))
        flags = response.get("flags", [])
        if degraded and not flags:
            report.violations.append(
                f"degraded response carries no flags: {response!r}"
            )
        if "stream" in result:  # compress result
            if not degraded and result["stream"] != expected_stream:
                report.violations.append(
                    "silent corruption: unflagged compress result "
                    "differs from the expected stream"
                )
        elif "data" in result:  # decompress result
            if corrupted_input:
                # a corrupted stream may decode to valid-but-wrong
                # output the raw code cannot detect; that is the
                # channel layer's silent-escape rate, not a service
                # contract breach — the framed container and MISR
                # signature (PR 1) are the defense at that layer.
                if not degraded and result["data"] != expected_data:
                    report.channel_silent_escapes += 1
            elif not degraded and result["data"] != expected_data:
                report.violations.append(
                    "silent corruption: unflagged decompress result "
                    "differs from the expected data"
                )

    try:
        await asyncio.wait_for(campaign(), timeout=deadline_s)
    except asyncio.TimeoutError:
        report.violations.append(
            f"campaign did not terminate within {deadline_s}s "
            f"({len(report.responses)}/{report.requests_sent} responses)"
        )
    return report


def _expected_roundtrip(encoder: NineCEncoder, encoding) -> str:
    """The exact string a clean decompress of ``encoding`` must return."""
    from ..core.decoder import NineCDecoder

    decoder = NineCDecoder(encoder.k, encoder.codebook)
    return decoder.decode_stream(
        encoding.stream, encoding.original_length
    ).to_string()
