"""Wire protocol of the compression service: newline-delimited JSON.

One request per line, one response per line, UTF-8, no framing beyond
the newline — trivially scriptable (``nc``, a five-line client) and
trivially fuzzable, which the chaos harness exploits.  The same request
and response dict shapes flow through the in-process
:class:`~repro.serve.server.Client`, so tests exercise the exact
objects the socket path serializes.

Request::

    {"id": "r1", "op": "compress", "params": {...}, "deadline_ms": 500}

``id`` is echoed back verbatim (clients may pipeline), ``op`` names a
service handler, ``params`` is handler-specific, ``deadline_ms`` is an
optional relative deadline.  Response, exactly one of::

    {"id": "r1", "ok": true,  "result": {...},
     "degraded": false, "flags": []}
    {"id": "r1", "ok": false, "error": {"code": ..., "message": ...,
     "retryable": ...}}

``degraded`` is the no-silent-corruption contract: whenever the
service fell off a fast path (reference fallback, partial recovery)
the response says so, and ``flags`` names each degradation.  Every
parse failure raises :class:`~repro.core.errors.MalformedFrameError`
with context, never a bare ``json`` exception.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.errors import MalformedFrameError, ServeError

#: Known operation names; the service rejects anything else up front.
OPS = ("compress", "decompress", "profile", "resilience", "health",
       "metrics", "chaos", "trace")

#: Hard per-frame byte ceiling: a slow-loris / runaway client sending an
#: endless line is cut off instead of growing the read buffer forever.
MAX_FRAME_BYTES = 8 * 1024 * 1024


@dataclass
class Request:
    """One parsed request frame."""

    id: str
    op: str
    params: dict = field(default_factory=dict)
    deadline_ms: Optional[float] = None


def parse_request(line: bytes) -> Request:
    """Parse one wire line into a :class:`Request`.

    Raises :class:`MalformedFrameError` (a typed, non-retryable
    :class:`ServeError`) on oversized frames, broken JSON, non-object
    payloads, missing/unknown ``op`` or a bad ``deadline_ms`` — the
    caller turns that into an error response, so a garbage frame never
    kills the connection silently.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise MalformedFrameError(
            "frame exceeds size limit", size=len(line), limit=MAX_FRAME_BYTES
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedFrameError(f"frame is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise MalformedFrameError(
            "frame must be a JSON object", got=type(payload).__name__
        )
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise MalformedFrameError(
            "unknown or missing op", op=repr(op), known=", ".join(OPS)
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise MalformedFrameError(
            "params must be an object", got=type(params).__name__
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise MalformedFrameError(
                "deadline_ms must be a positive number", got=repr(deadline_ms)
            )
        deadline_ms = float(deadline_ms)
    return Request(
        id=str(payload.get("id", "")),
        op=op,
        params=params,
        deadline_ms=deadline_ms,
    )


def ok_response(request_id: str, result: dict, *,
                degraded: bool = False,
                flags: Iterable[str] = ()) -> dict:
    """A success response; ``degraded`` + ``flags`` mark fallbacks."""
    flag_list = list(flags)
    return {
        "id": request_id,
        "ok": True,
        "result": result,
        "degraded": bool(degraded) or bool(flag_list),
        "flags": flag_list,
    }


def error_response(request_id: str, error: ServeError) -> dict:
    """A typed failure response built from a :class:`ServeError`."""
    return {"id": request_id, "ok": False, "error": error.to_wire()}


def encode_frame(payload: dict) -> bytes:
    """Serialize one request/response dict to its wire line."""
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
