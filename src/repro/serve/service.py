"""The compression service: handlers, worker pool, robustness ladder.

:class:`CompressionService` answers the public operations
(``compress`` / ``decompress`` / ``profile`` / ``resilience`` /
``health``, plus the ``metrics`` / ``trace`` control plane and the
opt-in ``chaos`` arm) defined by :mod:`repro.serve.protocol`.  CPU-bound encode/decode runs in an
executor (``process`` by default; ``thread`` and ``inline`` exist for
tests and chaos experiments), through a robustness ladder applied in
order on every request:

1. **admission** — a semaphore bounds in-flight work; when the wait
   queue is full the request is shed *explicitly* with a retryable
   :class:`~repro.core.errors.ServiceOverloadedError` (429-style, never
   a silent drop).  ``health`` and ``metrics`` bypass admission so the
   service stays observable under overload.
2. **deadline** — every request runs under ``asyncio.wait_for`` with
   its ``deadline_ms`` (or the configured default); expiry cancels the
   waiter and returns a typed ``deadline_exceeded`` error.
3. **circuit breaker** — one :class:`~repro.serve.breaker.CircuitBreaker`
   per (op, circuit, K) route fast-fails while a route is known-bad.
4. **bounded retry** — worker crashes (a killed pool process surfaces
   as ``BrokenProcessPool``; the pool is rebuilt) are retried with
   exponential backoff + deterministic jitter, never more than
   ``retry.max_attempts`` times.
5. **degradation** — decompress normally runs the vectorized fast
   path; every ``differential_every``-th request re-verifies it
   against the per-bit reference, and a mismatch permanently degrades
   that route to the reference implementation.  Degraded responses are
   always flagged (``degraded: true`` + a named flag) — the
   no-silent-corruption contract the chaos suite enforces.

Compress requests are micro-batched: single-item requests on the same
(K, codebook) route coalesce for ``batch_window_ms`` (or until
``max_batch``) and run as one worker call, amortizing dispatch and
letting the worker-local :class:`PreparedArtifactCache` stay hot.

Every data-plane request is traced end to end when observability is on
(``enable_obs`` + ``trace_requests``): a :class:`RequestTrace` mints a
trace id, opens a ``request.<op>`` root span, and collects
``admission.wait`` / ``batch.wait`` / ``worker.<op>`` service spans;
workers capture the library's own spans (``encode``,
``decode.stream``) behind the ``capture`` flag and ship them back with
results, where they are grafted into the request's tree — one merged
trace per request even though the work crossed a process boundary.
The last ``trace_capacity`` traces are served by the ``trace`` op and
exported as Chrome trace-event JSON by ``repro-9c trace``.  Structured
log events (:mod:`repro.obs.log`) fire at every ladder decision —
shed, deadline, retry, breaker transition, degradation — correlated by
the bound ``request_id``/``trace_id``.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import os
import random
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import obs as _obs
from ..obs import log as _log
from ..obs import tracing as _tracing
from ..core.decoder import NineCDecoder
from ..core.encoder import NineCEncoder
from ..core.errors import (
    BadRequestError,
    DeadlineExceededError,
    ServeError,
    ServiceOverloadedError,
    StreamError,
    WorkerCrashError,
)
from .breaker import BreakerBoard
from .cache import PreparedArtifactCache
from .protocol import Request, error_response, ok_response, parse_request
from .retry import RetryPolicy, run_with_retry

#: serve.latency_ms histogram bucket upper edges.
LATENCY_BOUNDS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: Ceiling on per-request resilience campaign size; the op is a shared
#: diagnostic, not a batch computing facility.
MAX_RESILIENCE_TRIALS = 100


# ----------------------------------------------------------------------
# worker-side functions (module-level: picklable for the process pool)
# ----------------------------------------------------------------------
#: Per-process artifact cache; each pool worker builds its own copy.
_WORKER_CACHE = PreparedArtifactCache(name="serve.worker_cache")


def _cached_encoder(k: int) -> NineCEncoder:
    return _WORKER_CACHE.get_or_build(
        ("encoder", k), lambda: NineCEncoder(k)
    )


def _cached_decoder(k: int) -> NineCDecoder:
    def build() -> NineCDecoder:
        decoder = NineCDecoder(k)
        decoder.scan_table  # materialize the LUT once, up front
        return decoder

    return _WORKER_CACHE.get_or_build(("decoder", k), build)


@contextlib.contextmanager
def _capture_scope(capture: bool):
    """Record this call's library spans when the caller asked for them.

    Yields the capturing tracer (or ``None``).  Runs in the pool worker:
    instrumentation is force-enabled for the duration and the spans go
    into a thread-local tracer, so a thread-pool worker never pollutes
    the service process's own aggregate tree.
    """
    if not capture:
        yield None
        return
    with _obs.enabled_scope(True), _tracing.capture_events() as tracer:
        yield tracer


def _worker_compress_batch(k: int, items: Sequence[str],
                           capture: bool = False) -> dict:
    """Encode every ternary string in ``items`` with one cached encoder.

    Per-item failures come back as ``{"error": ...}`` entries instead
    of exceptions so one bad item cannot poison its batch peers (and so
    nothing exotic has to cross the pickle boundary).  Returns
    ``{"items": [...], "trace": events-or-None}``; with ``capture`` the
    batch's span events (one ``encode`` per item) ride back for the
    service to graft into the requesting traces.
    """
    from ..core.bitvec import TernaryVector

    encoder = _cached_encoder(k)
    results: List[dict] = []
    with _capture_scope(capture) as tracer:
        for item in items:
            try:
                encoding = encoder.encode(TernaryVector(item))
                results.append({
                    "stream": encoding.stream.to_string(),
                    "td_bits": encoding.original_length,
                    "te_bits": encoding.compressed_size,
                    "cr_percent": encoding.compression_ratio,
                    "leftover_x": encoding.leftover_x,
                })
            except ValueError as exc:
                results.append({"error": {
                    "type": type(exc).__name__, "message": str(exc),
                }})
    return {"items": results,
            "trace": tracer.events() if tracer is not None else None}


def _worker_decompress(k: int, stream: str,
                       output_length: Optional[int],
                       mode: str, recover: bool,
                       corrupt_fast: bool = False,
                       capture: bool = False) -> dict:
    """Decode one stream; ``mode`` picks fast/reference/verify.

    ``verify`` runs both paths and reports a mismatch instead of
    trusting the fast path — the runtime differential contract.
    ``corrupt_fast`` is the chaos hook: it deliberately damages the
    fast path's output so the contract visibly trips.  Stream errors
    are returned as data (see :func:`_worker_compress_batch`).  With
    ``capture`` the result carries the worker's span events under
    ``"trace"`` (also on the stream-error path — a failing decode's
    spans are exactly the ones worth seeing).
    """
    from ..core.bitvec import TernaryVector

    decoder = _cached_decoder(k)
    vector = TernaryVector(stream)
    with _capture_scope(capture) as tracer:
        try:
            if mode == "reference":
                decoded = decoder.decode_reference(
                    vector, output_length, recover=recover
                )
                used = "reference"
                mismatch = False
            else:
                decoded = decoder.decode_stream(
                    vector, output_length, recover=recover
                )
                used = "fast"
                mismatch = False
                if corrupt_fast and len(decoded) > 0:
                    damaged = decoded.data.copy()
                    damaged[0] ^= 1
                    decoded = TernaryVector(damaged)
                if mode == "verify":
                    reference = decoder.decode_reference(
                        vector, output_length, recover=recover
                    )
                    if decoded != reference:
                        decoded = reference
                        used = "reference"
                        mismatch = True
        except StreamError as exc:
            return {
                "stream_error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "bit_offset": exc.bit_offset,
                    "block_index": exc.block_index,
                },
                "trace": tracer.events() if tracer is not None else None,
            }
    diagnostics = decoder.last_diagnostics
    return {
        "data": decoded.to_string(),
        "bits": len(decoded),
        "path": used,
        "mismatch": mismatch,
        "recovered_errors": len(diagnostics.errors) if diagnostics else 0,
        "blocks_lost": diagnostics.blocks_lost if diagnostics else 0,
        "trace": tracer.events() if tracer is not None else None,
    }


def _worker_compress_parallel(k: int, data: str, workers: int,
                              executor: str,
                              capture: bool = False) -> dict:
    """Sharded encode of one large stream (the ``workers=`` knob).

    Runs the :mod:`repro.parallel` coordinator inside this pool worker;
    shard traces graft into the capture tracer, so the request's trace
    tree shows ``worker.compress`` → ``parallel.encode`` →
    ``worker.encode`` per shard.  Output is bit-identical to the
    batch path's single-core encode, so every response invariant holds
    unchanged.
    """
    from ..core.bitvec import TernaryVector
    from ..parallel import parallel_encode

    with _capture_scope(capture) as tracer:
        try:
            encoding = parallel_encode(
                TernaryVector(data), k, workers=workers,
                executor=executor,
            )
        except ValueError as exc:
            return {
                "error": {
                    "type": type(exc).__name__, "message": str(exc),
                },
                "trace": tracer.events() if tracer is not None else None,
            }
    return {
        "stream": encoding.stream.to_string(),
        "td_bits": encoding.original_length,
        "te_bits": encoding.compressed_size,
        "cr_percent": encoding.compression_ratio,
        "leftover_x": encoding.leftover_x,
        "workers": workers,
        "trace": tracer.events() if tracer is not None else None,
    }


def _worker_decompress_parallel(k: int, stream: str,
                                output_length: Optional[int],
                                recover: bool, workers: int,
                                executor: str,
                                capture: bool = False) -> dict:
    """Sharded decode of one stream (fast path only).

    The sharded decoder's strict errors and diagnostics are identical
    to the single-core fast path's, so the stream-error payload shape
    and the degradation flags behave exactly as in
    :func:`_worker_decompress`.
    """
    from ..core.bitvec import TernaryVector
    from ..parallel import ShardedDecoder

    decoder = ShardedDecoder(k, workers=workers, executor=executor)
    with _capture_scope(capture) as tracer:
        try:
            decoded = decoder.decode_stream(
                TernaryVector(stream), output_length, recover=recover
            )
        except StreamError as exc:
            return {
                "stream_error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "bit_offset": exc.bit_offset,
                    "block_index": exc.block_index,
                },
                "trace": tracer.events() if tracer is not None else None,
            }
    diagnostics = decoder.last_diagnostics
    return {
        "data": decoded.to_string(),
        "bits": len(decoded),
        "path": "fast",
        "mismatch": False,
        "recovered_errors": len(diagnostics.errors) if diagnostics else 0,
        "blocks_lost": diagnostics.blocks_lost if diagnostics else 0,
        "workers": workers,
        "trace": tracer.events() if tracer is not None else None,
    }


def _worker_profile(k: int, data: str, capture: bool = False) -> dict:
    """Size/statistics-only measurement of one stream (no encode)."""
    from ..core.bitvec import TernaryVector

    with _capture_scope(capture) as tracer:
        measurement = _cached_encoder(k).measure(TernaryVector(data))
    return {
        "k": k,
        "td_bits": measurement.original_length,
        "te_bits": measurement.compressed_size,
        "cr_percent": measurement.compression_ratio,
        "leftover_x": measurement.leftover_x,
        "leftover_x_percent": measurement.leftover_x_percent,
        "case_counts": {
            case.name: count
            for case, count in sorted(
                measurement.case_counts.items(), key=lambda kv: kv[0].name
            ) if count
        },
        "trace": tracer.events() if tracer is not None else None,
    }


def _worker_resilience(circuit: str, k: int, error_rate: float,
                       trials: int, channel: str, seed: int,
                       capture: bool = False) -> dict:
    """One small channel-fault campaign (loaded via the worker cache)."""
    from ..circuits.library import load_circuit
    from ..robust.campaign import run_campaign

    netlist = _WORKER_CACHE.get_or_build(
        ("netlist", circuit), lambda: load_circuit(circuit)
    )
    with _capture_scope(capture) as tracer:
        report = run_campaign(
            netlist, k=k, error_rates=(error_rate,), trials=trials,
            channel=channel, seed=seed, circuit_name=circuit,
        )
    return {
        "circuit": circuit,
        "k": k,
        "stream_bits": report.stream_bits,
        "detection_rate": report.overall_detection_rate,
        "silent_escape_rate": report.overall_silent_escape_rate,
        "trace": tracer.events() if tracer is not None else None,
    }


def _worker_crash() -> None:
    """Chaos payload: kill this pool worker outright (no cleanup)."""
    os._exit(2)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class ServiceConfig:
    """Tunable knobs of one :class:`CompressionService`."""

    k: int = 8
    executor: str = "process"          # process | thread | inline
    workers: int = 2
    max_inflight: int = 8
    max_queue: int = 16
    default_deadline_ms: float = 10_000.0
    batch_window_ms: float = 2.0
    max_batch: int = 8
    differential_every: int = 64       # 0 disables runtime verification
    allow_chaos: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 5
    breaker_recovery_s: float = 2.0
    breaker_half_open_max: int = 1
    cache_capacity: int = 128
    enable_obs: bool = True            # a service wants its metrics on
    trace_requests: bool = True        # per-request trace trees (needs obs)
    trace_capacity: int = 64           # recent traces kept for the trace op
    max_parallel_workers: int = 1      # cap for a request's workers= knob
    parallel_executor: str = "process"  # process | serial shard scheduling

    def __post_init__(self):
        if self.executor not in ("process", "thread", "inline"):
            raise ValueError(
                f"executor must be process|thread|inline, got {self.executor!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.max_parallel_workers < 1:
            raise ValueError("max_parallel_workers must be >= 1")
        if self.parallel_executor not in ("process", "serial"):
            raise ValueError(
                f"parallel_executor must be process|serial, "
                f"got {self.parallel_executor!r}"
            )


# ----------------------------------------------------------------------
# chaos hooks (consumed here, armed via repro.serve.chaos)
# ----------------------------------------------------------------------
@dataclass
class ServiceFault:
    """One armed service-level fault, consumed ``times`` times.

    ``kind`` is one of ``worker_crash`` (kill/fail the worker call),
    ``fail`` (synthetic retryable failure without killing a process),
    ``latency`` (sleep ``seconds`` before dispatch) or ``corrupt_fast``
    (damage the decompress fast path's output so the differential
    contract trips).  ``op`` limits the fault to one operation.
    """

    kind: str
    times: int = 1
    seconds: float = 0.0
    op: Optional[str] = None

    KINDS = ("worker_crash", "fail", "latency", "corrupt_fast")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {self.KINDS}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")


class FaultPlan:
    """Thread-safe bag of armed :class:`ServiceFault` entries."""

    def __init__(self, faults: Sequence[ServiceFault] = ()):
        self._lock = threading.Lock()
        self._faults: List[ServiceFault] = list(faults)
        self.consumed: List[str] = []

    def arm(self, fault: ServiceFault) -> None:
        with self._lock:
            self._faults.append(fault)

    def take(self, op: str, kind: Optional[str] = None) -> Optional[ServiceFault]:
        """Consume (decrement) the first matching armed fault."""
        with self._lock:
            for fault in self._faults:
                if fault.op is not None and fault.op != op:
                    continue
                if kind is not None and fault.kind != kind:
                    continue
                fault.times -= 1
                if fault.times <= 0:
                    self._faults.remove(fault)
                self.consumed.append(fault.kind)
                return fault
            return None

    def pending(self) -> List[dict]:
        with self._lock:
            return [{"kind": f.kind, "times": f.times, "op": f.op}
                    for f in self._faults]


# ----------------------------------------------------------------------
# per-request tracing
# ----------------------------------------------------------------------
#: The request trace active in the current asyncio context, if any.
#: Contextvars follow tasks, so everything awaited on behalf of one
#: request — admission, batching, executor round-trips — sees its trace.
_request_trace: contextvars.ContextVar[Optional["RequestTrace"]] = \
    contextvars.ContextVar("repro_request_trace", default=None)


class RequestTrace:
    """One request's trace: a minted id plus an event-recording tracer."""

    __slots__ = ("trace_id", "request_id", "op", "tracer", "started")

    def __init__(self, request_id: str, op: str):
        self.trace_id = _tracing.mint_trace_id()
        self.request_id = request_id
        self.op = op
        self.tracer = _tracing.Tracer(record_events=True)
        self.started = time.time()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "op": self.op,
            "started": self.started,
            "events": self.tracer.events(),
            "tree": self.tracer.tree(),
        }


class TraceStore:
    """Bounded ring of recently completed request traces."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._traces: deque = deque(maxlen=max(1, capacity))
        self.recorded = 0

    def add(self, trace: RequestTrace) -> None:
        self._traces.append(trace)
        self.recorded += 1

    def snapshot(self, limit: Optional[int] = None,
                 trace_id: Optional[str] = None) -> List[dict]:
        """Most-recent-first trace dicts, optionally filtered by id."""
        traces = [t for t in reversed(self._traces)
                  if trace_id is None or t.trace_id == trace_id]
        if limit is not None:
            traces = traces[:limit]
        return [t.to_dict() for t in traces]


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class _Batch:
    """One pending compress micro-batch on a route."""

    __slots__ = ("items", "futures", "traces", "handle")

    def __init__(self):
        self.items: List[str] = []
        self.futures: List[asyncio.Future] = []
        self.traces: List[Optional[RequestTrace]] = []
        self.handle: Optional[asyncio.TimerHandle] = None


class CompressionService:
    """Async request broker over the 9C pipeline; see module docstring."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.cache = PreparedArtifactCache(self.config.cache_capacity)
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
            half_open_max=self.config.breaker_half_open_max,
        )
        self.fault_plan = FaultPlan()
        self._executor: Optional[Any] = None
        self._executor_lock = asyncio.Lock()
        self._executor_generation = 0
        self._semaphore = asyncio.Semaphore(self.config.max_inflight)
        self._waiting = 0
        self._inflight = 0
        self._degraded_routes: Set[Tuple] = set()
        self._route_counts: Dict[Tuple, int] = {}
        self._batches: Dict[Tuple, _Batch] = {}
        self._retry_rng = random.Random(self.config.retry.seed)
        self.traces = TraceStore(self.config.trace_capacity)
        self._started = False
        self.totals = {
            "requests": 0, "ok": 0, "errors": 0, "degraded": 0,
            "shed": 0, "retries": 0, "worker_crashes": 0,
        }

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "CompressionService":
        """Create the executor, switch instrumentation on; idempotent."""
        if not self._started:
            if self.config.enable_obs:
                _obs.enable()
            self._executor = self._new_executor()
            self._started = True
            _log.info("serve.start", executor=self.config.executor,
                      workers=self.config.workers, k=self.config.k,
                      tracing=self._tracing_active())
        return self

    async def close(self) -> None:
        """Flush batches, stop the executor."""
        for route in list(self._batches):
            self._flush_batch(route)
        await asyncio.sleep(0)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._started = False
        _log.info("serve.close", totals=dict(self.totals))

    def _new_executor(self) -> Optional[Any]:
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=self.config.workers)
        if self.config.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.config.workers)
        return None  # inline

    # -- executor dispatch with crash recovery --------------------------
    async def _run_in_executor(self, fn: Callable, *args) -> Any:
        """One executor call; a dead pool becomes a retryable crash error."""
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()
        generation = self._executor_generation
        try:
            if self._executor is None:
                return fn(*args)  # inline mode
            return await loop.run_in_executor(
                self._executor, partial(fn, *args)
            )
        except BrokenProcessPool:
            self.totals["worker_crashes"] += 1
            if _obs.enabled():
                _obs.counter("serve.worker_crashes").inc()
            _log.error("serve.worker_crash", generation=generation)
            await self._rebuild_executor(generation)
            raise WorkerCrashError(
                "worker process pool broke during the call"
            ) from None

    async def _rebuild_executor(self, seen_generation: int) -> None:
        """Replace a broken pool exactly once per breakage."""
        async with self._executor_lock:
            if self._executor_generation != seen_generation:
                return  # someone else already rebuilt it
            broken, self._executor = self._executor, self._new_executor()
            self._executor_generation += 1
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)

    def _tracing_active(self) -> bool:
        """Whether per-request trace trees are being recorded."""
        return self.config.trace_requests and _obs.enabled()

    def _req_span(self, name: str):
        """A span on the current request's trace, or the shared no-op."""
        trace = _request_trace.get()
        if trace is None:
            return _tracing.NULL_SPAN
        return trace.tracer.span(name)

    async def _run_job(self, route: Tuple, fn: Callable, *args,
                       on_trace: Optional[Callable] = None) -> Any:
        """breaker -> bounded retry -> executor, for one worker job.

        Dict results may carry a ``"trace"`` event list from the worker
        (see :func:`_capture_scope`); it is popped here — never leaked
        into a response — and grafted into the current request's trace
        under this job's ``worker.<op>`` span, or handed to ``on_trace``
        when the caller routes it elsewhere (the batch seam, where one
        worker call serves several requests).
        """
        breaker = self.breakers.breaker(route)
        breaker.before_call()

        async def attempt() -> Any:
            fault = self.fault_plan.take(route[0], kind="worker_crash")
            if fault is not None:
                if (self.config.executor == "process"
                        and self._executor is not None):
                    await self._run_in_executor(_worker_crash)
                    raise WorkerCrashError("worker did not crash as asked")
                raise WorkerCrashError("worker killed by chaos plan")
            if self.fault_plan.take(route[0], kind="fail") is not None:
                raise WorkerCrashError("synthetic worker failure (chaos)")
            return await self._run_in_executor(fn, *args)

        def count_retry(attempt_index: int, exc: ServeError) -> None:
            self.totals["retries"] += 1
            if _obs.enabled():
                _obs.counter("serve.retries").inc()
            _log.warning("serve.retry", route=list(route),
                         attempt=attempt_index, error=exc.code)

        trace = _request_trace.get()
        with (trace.tracer.span(f"worker.{route[0]}")
              if trace is not None else _tracing.NULL_SPAN):
            try:
                result = await run_with_retry(
                    attempt, self.config.retry,
                    rng=self._retry_rng, on_retry=count_retry,
                )
            except ServeError as exc:
                if exc.retryable:
                    breaker.record_failure()
                raise
            breaker.record_success()
            if isinstance(result, dict):
                events = result.pop("trace", None)
                if events:
                    if on_trace is not None:
                        on_trace(events)
                    elif trace is not None:
                        # anchored at the still-open worker span's start
                        trace.tracer.graft_events(events)
        return result

    # -- admission + deadline wrapper -----------------------------------
    async def handle_request(self, payload) -> dict:
        """The single entry point: bytes/dict/Request in, response dict out."""
        started = time.perf_counter()
        try:
            request = self._coerce_request(payload)
        except ServeError as exc:
            self._count_response(ok=False, code=exc.code)
            return error_response("", exc)
        self.totals["requests"] += 1
        if _obs.enabled():
            _obs.counter("serve.requests").inc()
            _obs.counter(f"serve.requests.{request.op}").inc()
        trace: Optional[RequestTrace] = None
        if (self._tracing_active()
                and request.op not in ("health", "metrics", "chaos", "trace")):
            trace = RequestTrace(request.id, request.op)
        bound = {"request_id": request.id, "op": request.op}
        if trace is not None:
            bound["trace_id"] = trace.trace_id
        with _log.bind(**bound):
            try:
                response = await self._dispatch_traced(request, trace)
            except ServeError as exc:
                self._count_response(ok=False, code=exc.code)
                _log.warning("serve.request_error", code=exc.code,
                             message=str(exc))
                response = error_response(request.id, exc)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - the contract boundary:
                # no request may die without a typed response.
                error = ServeError(
                    f"internal error: {type(exc).__name__}: {exc}"
                )
                self._count_response(ok=False, code=error.code)
                _log.error("serve.internal_error",
                           type=type(exc).__name__, message=str(exc))
                response = error_response(request.id, error)
            else:
                self._count_response(
                    ok=True, degraded=bool(response.get("degraded"))
                )
        if _obs.enabled():
            _obs.histogram("serve.latency_ms", LATENCY_BOUNDS_MS).observe(
                (time.perf_counter() - started) * 1e3
            )
        return response

    async def _dispatch_traced(self, request: Request,
                               trace: Optional[RequestTrace]) -> dict:
        """Run one request under its trace's root span (when traced)."""
        if trace is None:
            return await self._admit_and_dispatch(request)
        token = _request_trace.set(trace)
        try:
            with trace.tracer.span(f"request.{request.op}"):
                return await self._admit_and_dispatch(request)
        finally:
            _request_trace.reset(token)
            self.traces.add(trace)

    def _coerce_request(self, payload) -> Request:
        if isinstance(payload, Request):
            return payload
        if isinstance(payload, (bytes, bytearray)):
            return parse_request(bytes(payload))
        if isinstance(payload, dict):
            import json

            return parse_request(json.dumps(payload).encode())
        raise BadRequestError(
            "unsupported request payload", got=type(payload).__name__
        )

    async def _admit_and_dispatch(self, request: Request) -> dict:
        deadline_ms = request.deadline_ms or self.config.default_deadline_ms
        if request.op in ("health", "metrics", "chaos", "trace"):
            # the control plane must answer even under full load-shed
            return await asyncio.wait_for(
                self._dispatch(request), timeout=deadline_ms / 1e3
            )
        if self._waiting >= self.config.max_queue:
            self.totals["shed"] += 1
            if _obs.enabled():
                _obs.counter("serve.shed").inc()
            _log.warning("serve.shed", inflight=self._inflight,
                         waiting=self._waiting,
                         max_queue=self.config.max_queue)
            raise ServiceOverloadedError(
                "request shed: admission queue full",
                inflight=self._inflight,
                waiting=self._waiting,
                max_queue=self.config.max_queue,
            )
        self._waiting += 1
        dequeued = False

        async def admitted() -> dict:
            nonlocal dequeued
            with self._req_span("admission.wait"):
                await self._semaphore.acquire()
            try:
                self._waiting -= 1
                dequeued = True
                self._inflight += 1
                try:
                    return await self._dispatch(request)
                finally:
                    self._inflight -= 1
            finally:
                self._semaphore.release()

        try:
            # the deadline covers queue wait *and* execution: a request
            # stuck behind a full semaphore still terminates on time
            return await asyncio.wait_for(
                admitted(), timeout=deadline_ms / 1e3
            )
        except asyncio.TimeoutError:
            _log.warning("serve.deadline", deadline_ms=deadline_ms)
            raise DeadlineExceededError(
                "deadline elapsed", deadline_ms=deadline_ms, op=request.op
            ) from None
        finally:
            if not dequeued:
                self._waiting -= 1  # cancelled while still queued

    async def _dispatch(self, request: Request) -> dict:
        fault = self.fault_plan.take(request.op, kind="latency")
        if fault is not None:
            await asyncio.sleep(fault.seconds)
        handler = getattr(self, f"_op_{request.op}", None)
        if handler is None:
            raise BadRequestError("unknown op", op=request.op)
        result, degraded, flags = await handler(request.params)
        return ok_response(request.id, result, degraded=degraded, flags=flags)

    def _count_response(self, *, ok: bool, code: str = "",
                        degraded: bool = False) -> None:
        key = "ok" if ok else "errors"
        self.totals[key] += 1
        if degraded:
            self.totals["degraded"] += 1
        if _obs.enabled():
            _obs.counter(f"serve.{key}").inc()
            if code:
                _obs.counter(f"serve.errors.{code}").inc()
            if degraded:
                _obs.counter("serve.degraded").inc()

    # -- shared param plumbing ------------------------------------------
    def _param_k(self, params: dict) -> int:
        k = params.get("k", self.config.k)
        if not isinstance(k, int) or k < 2 or k % 2:
            raise BadRequestError(
                "k must be an even integer >= 2", k=repr(k)
            )
        return k

    def _param_workers(self, params: dict) -> int:
        """The request's ``workers`` knob, validated against the cap."""
        workers = params.get("workers", 1)
        if (not isinstance(workers, int) or isinstance(workers, bool)
                or workers < 1):
            raise BadRequestError(
                "workers must be a positive integer", got=repr(workers)
            )
        cap = self.config.max_parallel_workers
        if workers > cap:
            raise BadRequestError(
                "workers exceeds the service's parallel cap",
                workers=workers, max_parallel_workers=cap,
            )
        return workers

    def _circuit_stream(self, name: str) -> str:
        """The circuit's ATPG test stream as a ternary string (cached)."""
        def build() -> str:
            from ..atpg.flow import generate_test_cubes
            from ..circuits.library import available_circuits, load_circuit

            if name not in available_circuits():
                raise BadRequestError(
                    "unknown circuit", circuit=name,
                    available=", ".join(available_circuits()),
                )
            cubes = generate_test_cubes(load_circuit(name))
            return cubes.test_set.to_stream().to_string()

        return self.cache.get_or_build(("circuit_stream", name), build)

    # -- op: compress ---------------------------------------------------
    async def _op_compress(self, params: dict):
        k = self._param_k(params)
        workers = self._param_workers(params)
        items = params.get("items")
        data = params.get("data")
        circuit = params.get("circuit")
        if sum(x is not None for x in (items, data, circuit)) != 1:
            raise BadRequestError(
                "provide exactly one of items, data, circuit"
            )
        if circuit is not None:
            data = self._circuit_stream(str(circuit))
        if workers > 1:
            # one large request fanned across cores: bypass the
            # micro-batch (its whole point is amortizing *small* calls)
            # and let the sharded coordinator own the parallelism
            if data is None:
                raise BadRequestError(
                    "workers > 1 requires a single-stream compress "
                    "(data or circuit, not items)"
                )
            result = await self._run_job(
                ("compress", k), _worker_compress_parallel, k,
                str(data), workers, self.config.parallel_executor,
                _request_trace.get() is not None,
            )
            if "error" in result:
                raise BadRequestError(
                    f"encode failed: {result['error']['message']}",
                    type=result["error"]["type"],
                )
            payload = dict(result)
            payload["k"] = k
            return payload, False, ()
        if data is not None:
            results = [await self._enqueue_compress(k, str(data))]
            single = True
        else:
            if not isinstance(items, list) or not items:
                raise BadRequestError("items must be a non-empty list")
            results = list(await asyncio.gather(*[
                self._enqueue_compress(k, str(item)) for item in items
            ]))
            single = False
        for result in results:
            if "error" in result:
                raise BadRequestError(
                    f"encode failed: {result['error']['message']}",
                    type=result["error"]["type"],
                )
        payload = results[0] if single else {"items": results}
        payload = dict(payload) if single else payload
        payload["k"] = k
        return payload, False, ()

    async def _enqueue_compress(self, k: int, data: str) -> dict:
        """Join the route's micro-batch; resolves to this item's result.

        A traced request registers its :class:`RequestTrace` with the
        batch; when the shared worker call returns, the batch's span
        events are grafted under this request's ``batch.wait`` span (a
        member of a batch sees the whole batch's ``encode`` spans —
        that *is* its latency story).
        """
        route = ("compress", k)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        batch = self._batches.get(route)
        if batch is None:
            batch = self._batches[route] = _Batch()
        batch.items.append(data)
        batch.futures.append(future)
        batch.traces.append(_request_trace.get())
        if len(batch.items) >= self.config.max_batch:
            self._flush_batch(route)
        elif batch.handle is None:
            batch.handle = loop.call_later(
                self.config.batch_window_ms / 1e3,
                self._flush_batch, route,
            )
        with self._req_span("batch.wait"):
            result, events = await future
            trace = _request_trace.get()
            if trace is not None and events:
                trace.tracer.graft_events(events)
        return result

    def _flush_batch(self, route: Tuple) -> None:
        batch = self._batches.pop(route, None)
        if batch is None or not batch.items:
            return
        if batch.handle is not None:
            batch.handle.cancel()
        if _obs.enabled():
            _obs.histogram(
                "serve.batch_size", (1, 2, 4, 8, 16, 32)
            ).observe(len(batch.items))
        _log.debug("serve.batch", route=list(route), size=len(batch.items))
        asyncio.ensure_future(self._run_batch(route, batch))

    async def _run_batch(self, route: Tuple, batch: _Batch) -> None:
        # This task inherits the context of whichever member triggered
        # the flush; the batch belongs to all members equally, so drop
        # the request trace — members graft the captured events under
        # their own ``batch.wait`` spans instead.
        _request_trace.set(None)
        capture = any(trace is not None for trace in batch.traces)
        captured: List[Optional[list]] = [None]
        try:
            payload = await self._run_job(
                route, _worker_compress_batch, route[1], batch.items,
                capture,
                on_trace=lambda events: captured.__setitem__(0, events),
            )
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            # to every waiter; the batch seam must not swallow errors.
            for future in batch.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(batch.futures, payload["items"]):
            if not future.done():
                future.set_result((result, captured[0]))

    # -- op: decompress -------------------------------------------------
    async def _op_decompress(self, params: dict):
        k = self._param_k(params)
        stream = params.get("stream")
        if not isinstance(stream, str):
            raise BadRequestError("stream must be a ternary string")
        output_length = params.get("output_length")
        if output_length is not None and (
                not isinstance(output_length, int) or output_length < 0):
            raise BadRequestError(
                "output_length must be a non-negative integer",
                got=repr(output_length),
            )
        recover = bool(params.get("recover", False))
        workers = self._param_workers(params)
        route = ("decompress", k)
        flags: List[str] = []
        degraded = False

        if route in self._degraded_routes:
            mode = "reference"
            flags.append("fastpath_degraded")
            degraded = True
        else:
            count = self._route_counts.get(route, 0) + 1
            self._route_counts[route] = count
            every = self.config.differential_every
            mode = "verify" if every and count % every == 0 else "fast"
        if mode == "verify":
            _log.debug("serve.differential", route=list(route))
        corrupt = self.fault_plan.take(
            "decompress", kind="corrupt_fast"
        ) is not None

        if workers > 1 and mode == "fast" and not corrupt:
            # sharded decode only replaces the plain fast path: verify
            # cadence, degraded routes and chaos corruption keep their
            # single-core semantics untouched
            result = await self._run_job(
                route, _worker_decompress_parallel, k, stream,
                output_length, recover, workers,
                self.config.parallel_executor,
                _request_trace.get() is not None,
            )
        else:
            result = await self._run_job(
                route, _worker_decompress, k, stream, output_length,
                mode, recover, corrupt, _request_trace.get() is not None,
            )
        if "stream_error" in result:
            info = result["stream_error"]
            _log.warning("serve.stream_error", type=info["type"],
                         bit_offset=info["bit_offset"],
                         block_index=info["block_index"])
            raise BadRequestError(
                f"stream error: {info['message']}",
                stream_error=info["type"],
                bit_offset=info["bit_offset"],
                block_index=info["block_index"],
            )
        if result.pop("mismatch", False):
            # the differential contract tripped: serve the reference
            # result, flag it, and pin the route to the reference path.
            self._degraded_routes.add(route)
            flags.append("fastpath_mismatch")
            degraded = True
            if _obs.enabled():
                _obs.counter("serve.fastpath_mismatches").inc()
            _log.error("serve.fastpath_mismatch", route=list(route),
                       action="route pinned to reference path")
        if result.get("recovered_errors") or result.get("blocks_lost"):
            flags.append("recovered_with_loss")
            degraded = True
        result["k"] = k
        return result, degraded, flags

    # -- op: profile ----------------------------------------------------
    async def _op_profile(self, params: dict):
        k = self._param_k(params)
        circuit = params.get("circuit")
        data = params.get("data")
        if (circuit is None) == (data is None):
            raise BadRequestError("provide exactly one of circuit, data")
        if circuit is not None:
            data = self._circuit_stream(str(circuit))
        route = ("profile", k)
        result = await self._run_job(
            route, _worker_profile, k, str(data),
            _request_trace.get() is not None,
        )
        return result, False, ()

    # -- op: resilience -------------------------------------------------
    async def _op_resilience(self, params: dict):
        k = self._param_k(params)
        circuit = str(params.get("circuit", "s27"))
        error_rate = params.get("error_rate", 1e-3)
        if not isinstance(error_rate, (int, float)) or not 0 <= error_rate <= 1:
            raise BadRequestError(
                "error_rate must be in [0, 1]", got=repr(error_rate)
            )
        trials = params.get("trials", 5)
        if not isinstance(trials, int) or trials < 1:
            raise BadRequestError("trials must be a positive integer")
        if trials > MAX_RESILIENCE_TRIALS:
            raise BadRequestError(
                "trials above per-request ceiling",
                trials=trials, ceiling=MAX_RESILIENCE_TRIALS,
            )
        channel = str(params.get("channel", "flip"))
        seed = int(params.get("seed", 0))
        from ..circuits.library import available_circuits

        if circuit not in available_circuits():
            raise BadRequestError(
                "unknown circuit", circuit=circuit,
                available=", ".join(available_circuits()),
            )
        from ..robust.channel import CHANNEL_KINDS

        if channel not in CHANNEL_KINDS:
            raise BadRequestError(
                "unknown channel", channel=channel,
                available=", ".join(sorted(CHANNEL_KINDS)),
            )
        route = ("resilience", circuit, k)
        result = await self._run_job(
            route, _worker_resilience, circuit, k,
            float(error_rate), trials, channel, seed,
            _request_trace.get() is not None,
        )
        return result, False, ()

    # -- op: health / metrics / chaos -----------------------------------
    async def _op_health(self, params: dict):
        result = {
            "status": "ok",
            "executor": self.config.executor,
            "workers": self.config.workers,
            "inflight": self._inflight,
            "waiting": self._waiting,
            "totals": dict(self.totals),
            "cache": self.cache.stats(),
            "breakers": self.breakers.snapshot(),
            "degraded_routes": sorted(
                "/".join(str(part) for part in route)
                for route in self._degraded_routes
            ),
            "chaos_pending": self.fault_plan.pending(),
            "traces_recorded": self.traces.recorded,
        }
        return result, False, ()

    async def _op_metrics(self, params: dict):
        from ..obs.metrics import render_prometheus_text

        return {"text": render_prometheus_text()}, False, ()

    async def _op_trace(self, params: dict):
        """Recent request traces (control plane, bypasses admission).

        ``limit`` bounds how many most-recent traces come back;
        ``trace_id`` filters to one.  Each trace carries both the raw
        span events (Chrome-trace-ready via
        :func:`repro.obs.tracing.chrome_trace`) and the aggregated tree.
        """
        limit = params.get("limit", 16)
        if not isinstance(limit, int) or limit < 1:
            raise BadRequestError("limit must be a positive integer",
                                  got=repr(limit))
        trace_id = params.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise BadRequestError("trace_id must be a string")
        result = {
            "traces": self.traces.snapshot(limit=limit, trace_id=trace_id),
            "recorded": self.traces.recorded,
            "capacity": self.traces.capacity,
            "tracing": self._tracing_active(),
        }
        return result, False, ()

    async def _op_chaos(self, params: dict):
        if not self.config.allow_chaos:
            raise BadRequestError(
                "chaos ops are disabled; start the service with "
                "allow_chaos=True (serve --chaos)"
            )
        try:
            fault = ServiceFault(
                kind=str(params.get("fault", "")),
                times=int(params.get("times", 1)),
                seconds=float(params.get("ms", 0.0)) / 1e3,
                op=params.get("op"),
            )
        except ValueError as exc:
            raise BadRequestError(f"bad fault spec: {exc}") from None
        self.fault_plan.arm(fault)
        return {"armed": self.fault_plan.pending()}, False, ()
