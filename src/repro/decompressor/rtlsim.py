"""Interpreter for the Verilog dialect emitted by this package.

A small, honest RTL simulator: it parses the *text* of the generated
decoder module (not a Python re-statement of it) and executes it with
Verilog semantics — two-phase nonblocking updates on the clock edge,
asynchronous active-low reset, continuous assignments settled on demand.
The equivalence tests drive the interpreted RTL bit-for-bit against the
software decoder, which is the strongest correctness statement we can
make about the hardware without an external simulator.

Supported subset (exactly what ``generate_decoder_verilog`` emits):

* ``module``/``endmodule`` with ``input/output wire|reg [w:0] name``;
* ``localparam NAME = <int expr>;`` (integer arithmetic over earlier
  localparams);
* ``reg [w:0] name;`` declarations;
* ``wire name = expr;`` and ``assign name = expr;`` continuous assigns;
* one ``always @(posedge clk or negedge rst_n)`` block containing
  ``begin/end``, ``if/else``, ``case/endcase`` and nonblocking ``<=``;
* expressions over identifiers, decimal and sized binary literals,
  ``()``, unary ``!``, binary ``== != && || + -`` and the ternary
  operator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<sized>\d+'b[01xz]+)"
    r"|(?P<num>\d+)"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<op><=|==|!=|&&|\|\||[-+!~?:;,()\[\]{}=<>@.*])"
    r")"
)


def tokenize(text: str) -> List[str]:
    """Split Verilog source (comments pre-stripped) into tokens."""
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position : position + 20]
            if remainder.strip():
                raise ValueError(f"cannot tokenize near {remainder!r}")
            break
        token = match.group("sized") or match.group("num") \
            or match.group("id") or match.group("op")
        tokens.append(token)
        position = match.end()
    return tokens


def strip_comments(text: str) -> str:
    """Remove // line comments."""
    return re.sub(r"//[^\n]*", "", text)


# ----------------------------------------------------------------------
# expression AST + evaluation
# ----------------------------------------------------------------------

Expr = Union["Const", "Ident", "Unary", "Binary", "Ternary"]


@dataclass(frozen=True)
class Const:
    value: int


@dataclass(frozen=True)
class Ident:
    name: str


@dataclass(frozen=True)
class Unary:
    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary:
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary:
    condition: Expr
    if_true: Expr
    if_false: Expr


class _TokenStream:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ValueError(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.position += 1
            return True
        return False


def _parse_literal(token: str) -> int:
    if "'" in token:
        _width, _b, bits = token.partition("'b")
        return int(bits, 2)
    return int(token)


def parse_expression(stream: _TokenStream) -> Expr:
    """Parse with precedence: ?: < || < && < ==/!= < +- < unary."""
    return _parse_ternary(stream)


def _parse_ternary(stream: _TokenStream) -> Expr:
    condition = _parse_or(stream)
    if stream.accept("?"):
        if_true = _parse_ternary(stream)
        stream.expect(":")
        if_false = _parse_ternary(stream)
        return Ternary(condition, if_true, if_false)
    return condition


def _parse_or(stream: _TokenStream) -> Expr:
    left = _parse_and(stream)
    while stream.accept("||"):
        left = Binary("||", left, _parse_and(stream))
    return left


def _parse_and(stream: _TokenStream) -> Expr:
    left = _parse_equality(stream)
    while stream.accept("&&"):
        left = Binary("&&", left, _parse_equality(stream))
    return left


def _parse_equality(stream: _TokenStream) -> Expr:
    left = _parse_additive(stream)
    while stream.peek() in ("==", "!="):
        op = stream.next()
        left = Binary(op, left, _parse_additive(stream))
    return left


def _parse_additive(stream: _TokenStream) -> Expr:
    left = _parse_unary(stream)
    while stream.peek() in ("+", "-"):
        op = stream.next()
        left = Binary(op, left, _parse_unary(stream))
    return left


def _parse_unary(stream: _TokenStream) -> Expr:
    if stream.accept("!"):
        return Unary("!", _parse_unary(stream))
    return _parse_primary(stream)


def _parse_primary(stream: _TokenStream) -> Expr:
    token = stream.next()
    if token == "(":
        inner = parse_expression(stream)
        stream.expect(")")
        return inner
    if re.fullmatch(r"\d+'b[01]+", token) or token.isdigit():
        return Const(_parse_literal(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", token):
        return Ident(token)
    raise ValueError(f"unexpected token in expression: {token!r}")


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

@dataclass
class NonBlocking:
    target: str
    expr: Expr


@dataclass
class If:
    condition: Expr
    then_body: List
    else_body: List = field(default_factory=list)


@dataclass
class Case:
    subject: Expr
    arms: List[Tuple[Optional[Expr], List]]  # (label or None=default, body)


Statement = Union[NonBlocking, If, Case]


def _parse_statement(stream: _TokenStream) -> Statement:
    if stream.peek() == "if":
        stream.next()
        stream.expect("(")
        condition = parse_expression(stream)
        stream.expect(")")
        then_body = _parse_body(stream)
        else_body: List[Statement] = []
        if stream.accept("else"):
            else_body = _parse_body(stream)
        return If(condition, then_body, else_body)
    if stream.peek() == "case":
        stream.next()
        stream.expect("(")
        subject = parse_expression(stream)
        stream.expect(")")
        arms: List[Tuple[Optional[Expr], List]] = []
        while stream.peek() != "endcase":
            if stream.accept("default"):
                label: Optional[Expr] = None
            else:
                label = parse_expression(stream)
            stream.expect(":")
            arms.append((label, _parse_body(stream)))
        stream.expect("endcase")
        return Case(subject, arms)
    # nonblocking assignment: target <= expr ;
    target = stream.next()
    stream.expect("<=")
    expr = parse_expression(stream)
    stream.expect(";")
    return NonBlocking(target, expr)


def _parse_body(stream: _TokenStream) -> List[Statement]:
    if stream.accept("begin"):
        body: List[Statement] = []
        while not stream.accept("end"):
            body.append(_parse_statement(stream))
        return body
    return [_parse_statement(stream)]


# ----------------------------------------------------------------------
# module
# ----------------------------------------------------------------------

@dataclass
class Port:
    name: str
    direction: str  # "input" | "output"
    width: int
    is_reg: bool


@dataclass
class ModuleDef:
    name: str
    ports: Dict[str, Port]
    localparams: Dict[str, int]
    regs: Dict[str, int]            # name -> width
    wires: Dict[str, Expr]          # continuous assignments
    reset_body: List[Statement]
    clocked_body: List[Statement]


_PORT_RE = re.compile(
    r"(input|output)\s+(wire|reg)?\s*(\[(\d+):0\])?\s*([A-Za-z_]\w*)"
)
_LOCALPARAM_RE = re.compile(r"localparam\s+(\w+)\s*=\s*([^;]+);")
_REG_RE = re.compile(r"^\s*reg\s*(\[(\d+):0\])?\s*([A-Za-z_]\w*)\s*;",
                     re.MULTILINE)
_WIRE_RE = re.compile(
    r"^\s*wire\s*(\[(\d+):0\])?\s*([A-Za-z_]\w*)\s*=\s*([^;]+);",
    re.MULTILINE,
)
_ASSIGN_RE = re.compile(r"^\s*assign\s+([A-Za-z_]\w*)\s*=\s*([^;]+);",
                        re.MULTILINE)
_ALWAYS_RE = re.compile(
    r"always\s*@\s*\(\s*posedge\s+(\w+)\s+or\s+negedge\s+(\w+)\s*\)",
)


def _resolve_localparam(name: str, expr: str, known: Dict[str, int]) -> int:
    """Evaluate a localparam's integer expression.

    Earlier localparams may be referenced (``localparam HALF = K / 2;``);
    only integer arithmetic over ``+ - * / ( )`` is accepted, with ``/``
    truncating like Verilog integer division.
    """
    text = expr.strip()
    for other, value in known.items():
        text = re.sub(rf"\b{other}\b", str(value), text)
    if not re.fullmatch(r"[\d\s+\-*/()]+", text):
        raise ValueError(
            f"unsupported localparam expression: {name} = {expr.strip()}"
        )
    return int(eval(text.replace("/", "//"), {"__builtins__": {}}, {}))


def parse_module(source: str) -> ModuleDef:
    """Parse one module of the restricted dialect."""
    text = strip_comments(source)
    name_match = re.search(r"module\s+(\w+)", text)
    if not name_match:
        raise ValueError("no module declaration found")
    header_end = text.index(");", name_match.end())
    header = text[name_match.end() : header_end]
    ports: Dict[str, Port] = {}
    for direction, kind, _vec, msb, port_name in _PORT_RE.findall(header):
        width = int(msb) + 1 if msb else 1
        ports[port_name] = Port(port_name, direction, width,
                                is_reg=(kind == "reg"))
    body = text[header_end + 2 : text.rindex("endmodule")]

    localparams: Dict[str, int] = {}
    for param_name, param_expr in _LOCALPARAM_RE.findall(body):
        localparams[param_name] = _resolve_localparam(
            param_name, param_expr, localparams
        )
    regs = {m[2]: (int(m[1]) + 1 if m[1] else 1)
            for m in _REG_RE.findall(body)}
    for port in ports.values():
        if port.is_reg:
            regs.setdefault(port.name, port.width)

    wires: Dict[str, Expr] = {}
    for _vec, _msb, wire_name, expr_text in _WIRE_RE.findall(body):
        wires[wire_name] = parse_expression(
            _TokenStream(tokenize(expr_text))
        )
    for target, expr_text in _ASSIGN_RE.findall(body):
        wires[target] = parse_expression(_TokenStream(tokenize(expr_text)))

    always_match = _ALWAYS_RE.search(body)
    if not always_match:
        raise ValueError("no clocked always block found")
    stream = _TokenStream(tokenize(body[always_match.end():]))
    block = _parse_body(stream)
    # expected shape: begin if (!rst_n) <reset> else <clocked> end
    if len(block) != 1 or not isinstance(block[0], If):
        raise ValueError("always block must be a single if (!rst_n) ...")
    top = block[0]
    return ModuleDef(
        name=name_match.group(1),
        ports=ports,
        localparams=localparams,
        regs=regs,
        wires=wires,
        reset_body=top.then_body,
        clocked_body=top.else_body,
    )


# ----------------------------------------------------------------------
# simulation
# ----------------------------------------------------------------------

class RTLSimulator:
    """Execute a parsed module: Verilog edge semantics, two-phase NBA."""

    def __init__(self, module: ModuleDef):
        self.module = module
        self.regs: Dict[str, int] = {name: 0 for name in module.regs}
        self.inputs: Dict[str, int] = {
            p.name: 0 for p in module.ports.values()
            if p.direction == "input"
        }
        self.reset()

    # -- value resolution ------------------------------------------------
    def _lookup(self, name: str, visiting: frozenset) -> int:
        if name in self.inputs:
            return self.inputs[name]
        if name in self.regs:
            return self.regs[name]
        if name in self.module.localparams:
            return self.module.localparams[name]
        if name in self.module.wires:
            if name in visiting:
                raise ValueError(f"combinational loop through {name}")
            return self._eval(self.module.wires[name],
                              visiting | {name})
        raise ValueError(f"undefined identifier {name!r}")

    def _eval(self, expr: Expr, visiting: frozenset = frozenset()) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Ident):
            return self._lookup(expr.name, visiting)
        if isinstance(expr, Unary):
            value = self._eval(expr.operand, visiting)
            if expr.op == "!":
                return 0 if value else 1
            raise ValueError(f"unsupported unary {expr.op}")
        if isinstance(expr, Binary):
            left = self._eval(expr.left, visiting)
            right = self._eval(expr.right, visiting)
            if expr.op == "==":
                return 1 if left == right else 0
            if expr.op == "!=":
                return 1 if left != right else 0
            if expr.op == "&&":
                return 1 if left and right else 0
            if expr.op == "||":
                return 1 if left or right else 0
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            raise ValueError(f"unsupported binary {expr.op}")
        if isinstance(expr, Ternary):
            if self._eval(expr.condition, visiting):
                return self._eval(expr.if_true, visiting)
            return self._eval(expr.if_false, visiting)
        raise TypeError(f"bad expression node {expr!r}")

    # -- statement execution ---------------------------------------------
    def _execute(self, body: List[Statement],
                 updates: Dict[str, int]) -> None:
        for statement in body:
            if isinstance(statement, NonBlocking):
                value = self._eval(statement.expr)
                width = self.module.regs.get(statement.target)
                if width is None:
                    raise ValueError(
                        f"nonblocking assign to non-reg "
                        f"{statement.target!r}"
                    )
                updates[statement.target] = value & ((1 << width) - 1)
            elif isinstance(statement, If):
                branch = statement.then_body \
                    if self._eval(statement.condition) \
                    else statement.else_body
                self._execute(branch, updates)
            elif isinstance(statement, Case):
                subject = self._eval(statement.subject)
                default_body: List[Statement] = []
                for label, arm_body in statement.arms:
                    if label is None:
                        default_body = arm_body
                        continue
                    if self._eval(label) == subject:
                        self._execute(arm_body, updates)
                        break
                else:
                    self._execute(default_body, updates)
            else:
                raise TypeError(f"bad statement {statement!r}")

    # -- public API --------------------------------------------------------
    def reset(self) -> None:
        """Apply the asynchronous reset branch."""
        updates: Dict[str, int] = {}
        self._execute(self.module.reset_body, updates)
        self.regs.update(updates)

    def set_inputs(self, **values: int) -> None:
        """Drive input ports (persist until changed)."""
        for name, value in values.items():
            if name not in self.inputs:
                raise ValueError(f"not an input port: {name!r}")
            self.inputs[name] = int(value)

    def read(self, name: str) -> int:
        """Read any port, reg or wire after combinational settling."""
        return self._lookup(name, frozenset())

    def step(self) -> None:
        """One posedge clk: evaluate, then commit nonblocking updates."""
        if self.inputs.get("rst_n", 1) == 0:
            self.reset()
            return
        updates: Dict[str, int] = {}
        self._execute(self.module.clocked_body, updates)
        self.regs.update(updates)


def run_decoder_rtl(
    rtl_source: str,
    stream_bits: List[int],
    max_cycles: Optional[int] = None,
) -> List[int]:
    """Drive the generated decoder RTL with a compressed bit stream.

    Plays the ATE side of the handshake (present a bit + ``ate_tick``
    whenever ``ready``), samples ``scan_out`` on every ``scan_en``
    strobe, and returns the decoded bit sequence.  Raises on deadlock
    (cycle budget exhausted with work remaining).
    """
    simulator = RTLSimulator(parse_module(rtl_source))
    simulator.set_inputs(rst_n=0, dec_en=0, ate_tick=0, data_in=0)
    simulator.step()
    simulator.set_inputs(rst_n=1, dec_en=1)

    budget = max_cycles if max_cycles is not None \
        else 64 * (len(stream_bits) + 16)
    decoded: List[int] = []
    index = 0
    for _cycle in range(budget):
        busy = simulator.read("case_valid")
        if index >= len(stream_bits) and not busy:
            return decoded
        ticking = bool(simulator.read("ready")) and index < len(stream_bits)
        simulator.set_inputs(
            ate_tick=1 if ticking else 0,
            data_in=stream_bits[index] if ticking else 0,
        )
        if simulator.read("scan_en"):
            decoded.append(simulator.read("scan_out"))
        simulator.step()
        if ticking:
            index += 1
    raise RuntimeError(
        f"decoder RTL did not finish within {budget} cycles "
        f"({index}/{len(stream_bits)} bits consumed)"
    )
