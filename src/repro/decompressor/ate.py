"""ATE channel / clocking model.

The paper's timing analysis (Section III-C) uses exactly two parameters:
the ATE clock ``f_ate`` and the SoC scan clock ``f_scan = p * f_ate``.
:class:`ATEChannel` converts the cycle counts produced by the
cycle-accurate decompressor models into seconds, and supplies the
uncompressed-baseline time ``t_nocomp = |T_D| / f_ate`` (raw test data is
streamed at ATE speed).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ATEChannel:
    """One ATE pin driving a device whose scan clock is ``p`` x faster."""

    f_ate_hz: float = 50e6
    p: int = 8

    def __post_init__(self):
        if self.f_ate_hz <= 0:
            raise ValueError("f_ate_hz must be positive")
        if self.p < 1:
            raise ValueError("p must be >= 1")

    @property
    def f_scan_hz(self) -> float:
        """SoC scan clock frequency."""
        return self.f_ate_hz * self.p

    @property
    def soc_period_s(self) -> float:
        """One SoC cycle in seconds."""
        return 1.0 / self.f_scan_hz

    def seconds_from_soc_cycles(self, soc_cycles: int) -> float:
        """Convert decompressor SoC-cycle counts to wall-clock seconds."""
        return soc_cycles * self.soc_period_s

    def seconds_from_ate_cycles(self, ate_cycles: int) -> float:
        """Convert ATE-cycle counts to seconds."""
        return ate_cycles / self.f_ate_hz

    def uncompressed_time_s(self, td_bits: int) -> float:
        """t_nocomp = |T_D| / f_ate (raw data limited by the ATE pin)."""
        return td_bits / self.f_ate_hz
