"""The 9C decoder control FSM (paper Figure 2).

The FSM walks the prefix-free codeword trie one ``Data_in`` bit per ATE
clock (at most five cycles for the longest codeword), then emits one
*half directive* per block half telling the datapath what to drive into
the scan chain: constant 0s, constant 1s, or pass-through data from the
ATE.  Crucially the machine is **independent of K and of the test set**:
K only sizes the external ``log2(K/2)`` counter, never the FSM — the
property the paper's Section IV argues makes 9C cheap to reuse.

The FSM is modelled as an explicit state-transition table (states =
codeword-trie nodes plus one drive state per half kind), which doubles as
the input to :mod:`repro.decompressor.gates` for the synthesis-cost
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.codewords import BlockCase, Codebook, HalfKind


@dataclass(frozen=True)
class HalfDirective:
    """What the datapath must drive for one K/2-bit half."""

    kind: HalfKind

    @property
    def sel(self) -> str:
        """MUX select: ``"zero"``, ``"one"`` or ``"data"`` (Figure 1)."""
        if self.kind is HalfKind.ZEROS:
            return "zero"
        if self.kind is HalfKind.ONES:
            return "one"
        return "data"

    @property
    def from_ate(self) -> bool:
        """True when the half's bits are streamed from the ATE."""
        return self.kind is HalfKind.MISMATCH


class NineCDecoderFSM:
    """Cycle-accurate codeword recognizer + half sequencer."""

    IDLE = "S0"

    def __init__(self, codebook: Optional[Codebook] = None):
        self.codebook = codebook or Codebook.default()
        # Trie states are named by the bit prefix consumed so far.
        self._transitions: Dict[Tuple[str, int], str] = {}
        self._accepting: Dict[str, BlockCase] = {}
        for case, bits in self.codebook.items():
            state = self.IDLE
            prefix = ""
            for bit in bits[:-1]:
                prefix += str(bit)
                nxt = f"S0_{prefix}"
                self._transitions[(state, bit)] = nxt
                state = nxt
            prefix += str(bits[-1])
            final = f"ACC_{case.name}"
            self._transitions[(state, bits[-1])] = final
            self._accepting[final] = case
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the idle state (power-on / after Ack)."""
        self.state = self.IDLE
        self.pending: List[HalfDirective] = []

    @property
    def busy(self) -> bool:
        """True while a codeword is partially received or halves pend."""
        return self.state != self.IDLE or bool(self.pending)

    def on_data_bit(self, bit: int) -> Optional[BlockCase]:
        """Consume one ATE bit; returns the case when a codeword resolves."""
        if bit not in (0, 1):
            raise ValueError(f"FSM received non-binary codeword bit: {bit!r}")
        if self.pending:
            raise RuntimeError("codeword bit arrived while halves pending")
        key = (self.state, bit)
        if key not in self._transitions:
            raise ValueError(
                f"invalid codeword bit {bit} in state {self.state}"
            )
        nxt = self._transitions[key]
        if nxt in self._accepting:
            case = self._accepting[nxt]
            self.state = self.IDLE
            self.pending = [HalfDirective(kind) for kind in case.halves]
            return case
        self.state = nxt
        return None

    def next_half(self) -> HalfDirective:
        """Pop the next half directive (Sel + Cnt_en for one half)."""
        if not self.pending:
            raise RuntimeError("no pending halves (Done before codeword?)")
        return self.pending.pop(0)

    @property
    def halves_remaining(self) -> int:
        """Halves still to be driven for the current block."""
        return len(self.pending)

    # ------------------------------------------------------------------
    # synthesis view (consumed by repro.decompressor.gates)
    # ------------------------------------------------------------------
    def states(self) -> List[str]:
        """All control states: idle + internal trie nodes (K-independent)."""
        names = {self.IDLE}
        for (src, _bit), dst in self._transitions.items():
            names.add(src)
            if dst not in self._accepting:
                names.add(dst)
        return sorted(names)

    def transition_table(self) -> List[Tuple[str, int, str, Optional[BlockCase]]]:
        """(state, input bit, next state, resolved case or None) rows.

        Accepting transitions return to idle with the case as a Moore-ish
        output, matching Figure 2 where every recognized codeword path
        loops back to S0.
        """
        rows = []
        for (src, bit), dst in sorted(self._transitions.items()):
            if dst in self._accepting:
                rows.append((src, bit, self.IDLE, self._accepting[dst]))
            else:
                rows.append((src, bit, dst, None))
        return rows

    @property
    def max_codeword_cycles(self) -> int:
        """ATE cycles needed for the longest codeword (paper: five)."""
        return self.codebook.max_length
