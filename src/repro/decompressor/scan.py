"""Scan-chain models.

:class:`ScanChain` is a shift register that records, besides its contents,
the number of shift operations and the weighted transition count of what
was shifted through it (the standard scan-in power proxy used by
:mod:`repro.analysis.power`).  :class:`ScanFanout` groups ``m`` chains
behind the m-bit parallel-load shifter of the multiple-scan architectures
(Figures 3 and 4).
"""

from __future__ import annotations

from typing import List

from ..core.bitvec import TernaryVector


class ScanChain:
    """A single scan chain of ``length`` cells."""

    def __init__(self, length: int):
        if length < 1:
            raise ValueError("scan chain length must be >= 1")
        self.length = length
        self.cells: List[int] = [0] * length
        self.shift_count = 0
        self.weighted_transitions = 0
        self.captured: List[TernaryVector] = []

    def shift_in(self, bit: int) -> int:
        """Shift one bit in at position 0; returns the bit shifted out.

        The weighted transition metric (WTM) charges a transition between
        consecutive scan-in bits by the number of cells it will traverse —
        accumulated incrementally here.
        """
        if bit not in (0, 1, 2):
            raise ValueError(f"invalid scan bit: {bit!r}")
        if self.shift_count % self.length:
            previous = self.cells[0]
            if previous != bit:
                position = self.shift_count % self.length
                self.weighted_transitions += self.length - position
        out = self.cells.pop()
        self.cells.insert(0, bit)
        self.shift_count += 1
        return out

    def load_parallel(self, bits: List[int]) -> None:
        """Broadside load (used when this chain hangs off an m-bit shifter)."""
        if len(bits) != self.length:
            raise ValueError("parallel load width mismatch")
        self.cells = list(bits)

    def capture(self) -> TernaryVector:
        """Snapshot the chain as one applied test pattern.

        ``cells[0]`` is the most recently shifted bit, so a pattern whose
        first bit entered first sits reversed in the register; the capture
        un-reverses it to pattern order.
        """
        pattern = TernaryVector(list(reversed(self.cells)))
        self.captured.append(pattern)
        return pattern

    def contents(self) -> TernaryVector:
        """Raw register contents, cell 0 first."""
        return TernaryVector(self.cells)


class ScanFanout:
    """``m`` scan chains fed in parallel from an m-bit shifter (Fig. 3)."""

    def __init__(self, num_chains: int, chain_length: int):
        if num_chains < 1:
            raise ValueError("need at least one chain")
        self.num_chains = num_chains
        self.chain_length = chain_length
        self.chains = [ScanChain(chain_length) for _ in range(num_chains)]
        self.shifter: List[int] = []
        self.loads = 0

    def shift_into_buffer(self, bit: int) -> bool:
        """Shift one decoded bit into the m-bit shifter.

        When the shifter fills, its content is broadside-shifted into all
        chains simultaneously (one scan clock for all m chains) and True
        is returned.
        """
        self.shifter.append(bit)
        if len(self.shifter) == self.num_chains:
            for chain, value in zip(self.chains, self.shifter):
                chain.shift_in(value)
            self.shifter = []
            self.loads += 1
            return True
        return False

    def capture_pattern(self) -> TernaryVector:
        """Reassemble the applied pattern across all chains.

        Bit ``row * m + i`` of the original pattern was the i-th bit of
        the row-th shifter load, i.e. it sits in chain i; interleaving the
        captured chains reconstructs the pattern.
        """
        captures = [chain.capture() for chain in self.chains]
        interleaved: List[int] = []
        for row in range(self.chain_length):
            for chain_capture in captures:
                interleaved.append(chain_capture[row])
        return TernaryVector(interleaved)
