"""Cycle-accurate on-chip decompression architectures (Figures 1-4)."""

from .ate import ATEChannel
from .fsm import HalfDirective, NineCDecoderFSM
from .gates import (
    DecoderCost,
    LogicCost,
    decoder_cost,
    fsm_cost,
    minimize_function,
    minimum_cover,
    prime_implicants,
)
from .misr import (
    LFSR,
    MISR,
    AliasingEstimate,
    default_taps,
    find_primitive_taps,
    is_primitive,
    signature_of,
)
from .multi_scan import MultiScanDecompressor, MultiScanTrace
from .parallel import ParallelDecompressor, ParallelTrace
from .rtlsim import RTLSimulator, parse_module, run_decoder_rtl
from .scan import ScanChain, ScanFanout
from .single_scan import DecompressionTrace, SingleScanDecompressor
from .testbench import TestbenchBundle, generate_testbench
from .verilog import generate_decoder_verilog, generate_multiscan_verilog

__all__ = [
    "NineCDecoderFSM",
    "HalfDirective",
    "ScanChain",
    "ScanFanout",
    "SingleScanDecompressor",
    "DecompressionTrace",
    "MultiScanDecompressor",
    "MultiScanTrace",
    "ParallelDecompressor",
    "ParallelTrace",
    "ATEChannel",
    "decoder_cost",
    "fsm_cost",
    "DecoderCost",
    "LogicCost",
    "minimize_function",
    "minimum_cover",
    "prime_implicants",
    "generate_decoder_verilog",
    "generate_multiscan_verilog",
    "LFSR",
    "MISR",
    "AliasingEstimate",
    "default_taps",
    "find_primitive_taps",
    "is_primitive",
    "signature_of",
    "TestbenchBundle",
    "generate_testbench",
    "RTLSimulator",
    "parse_module",
    "run_decoder_rtl",
]
