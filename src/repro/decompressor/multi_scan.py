"""Multiple-scan-chain, single-pin decompression (paper Figures 3 / 4b).

One decoder and one ATE input pin feed an m-bit shifter; every m decoded
bits are broadside-loaded into the m scan chains at once.  The paper's
claim — verified by the bench for Figure 3/4b — is that this cuts the
required test *pins* to one while leaving the test application time of
the single-scan architecture unchanged (the decoder produces bits at the
same rate; only their destination changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import obs as _obs
from ..core.bitstream import TernaryStreamReader
from ..core.bitvec import ONE, X, ZERO, TernaryVector
from ..core.codewords import BlockCase, Codebook
from ..core.encoder import Encoding
from .fsm import NineCDecoderFSM
from .scan import ScanFanout
from .single_scan import DecompressionTrace, record_trace


@dataclass
class MultiScanTrace(DecompressionTrace):
    """Single-pin multi-scan run results (adds chain-level views)."""

    num_chains: int = 1
    chain_length: int = 0
    loads: int = 0


class MultiScanDecompressor:
    """Cycle-accurate model of Figure 3: one pin, ``m`` chains."""

    def __init__(
        self,
        k: int,
        num_chains: int,
        chain_length: int,
        codebook: Optional[Codebook] = None,
        p: int = 1,
    ):
        if k < 2 or k % 2:
            raise ValueError("K must be an even integer >= 2")
        if num_chains < 1 or chain_length < 1:
            raise ValueError("need m >= 1 chains of length >= 1")
        if p < 1:
            raise ValueError("p = f_scan/f_ate must be >= 1")
        self.k = k
        self.num_chains = num_chains
        self.chain_length = chain_length
        self.codebook = codebook or Codebook.default()
        self.p = p
        self.fsm = NineCDecoderFSM(self.codebook)

    @property
    def pattern_bits(self) -> int:
        """Bits per reassembled test pattern (m * l)."""
        return self.num_chains * self.chain_length

    def run(
        self,
        stream: TernaryVector,
        output_length: Optional[int] = None,
        x_fill: Optional[int] = 0,
    ) -> MultiScanTrace:
        """Decompress; leftover X from the ATE default-fills to 0.

        The m-bit shifter is physical hardware, so by default X bits are
        materialized (``x_fill=0``); pass None to keep them symbolic.
        """
        with _obs.span("decompress.multi_scan"):
            trace = self._run_impl(stream, output_length, x_fill)
        if _obs.enabled():
            record_trace("decompress.multi_scan", trace)
            registry = _obs.get_registry()
            registry.counter("decompress.multi_scan.loads").inc(trace.loads)
        return trace

    def _run_impl(
        self,
        stream: TernaryVector,
        output_length: Optional[int],
        x_fill: Optional[int],
    ) -> MultiScanTrace:
        half = self.k // 2
        reader = TernaryStreamReader(stream)
        self.fsm.reset()
        fanout = ScanFanout(self.num_chains, self.chain_length)

        emitted = 0
        patterns: List[TernaryVector] = []
        out_bits: List[int] = []
        soc = 0
        codeword_ate = 0
        data_ate = 0
        uniform_soc = 0
        blocks = 0
        case_counts: Dict[BlockCase, int] = {case: 0 for case in BlockCase}

        def emit(bit: int) -> None:
            nonlocal emitted
            if bit == X and x_fill is not None:
                bit = x_fill
            out_bits.append(bit)
            fanout.shift_into_buffer(bit)
            emitted += 1
            if emitted % self.pattern_bits == 0:
                patterns.append(fanout.capture_pattern())

        while not reader.at_end():
            if output_length is not None and emitted >= output_length:
                break
            case = None
            while case is None:
                bit = reader.read_bit()
                codeword_ate += 1
                soc += self.p
                case = self.fsm.on_data_bit(bit)
            case_counts[case] += 1
            blocks += 1
            while self.fsm.halves_remaining:
                directive = self.fsm.next_half()
                if directive.from_ate:
                    for _ in range(half):
                        bit = reader.read_bit()
                        data_ate += 1
                        soc += self.p
                        emit(bit)
                else:
                    value = ZERO if directive.sel == "zero" else ONE
                    for _ in range(half):
                        uniform_soc += 1
                        soc += 1
                        emit(value)

        output = TernaryVector(out_bits)
        if output_length is not None:
            output = output[:output_length]
        return MultiScanTrace(
            output=output,
            soc_cycles=soc,
            ate_cycles=codeword_ate + data_ate,
            codeword_ate_cycles=codeword_ate,
            data_ate_cycles=data_ate,
            uniform_soc_cycles=uniform_soc,
            blocks=blocks,
            case_counts=case_counts,
            patterns=patterns,
            weighted_transitions=sum(
                c.weighted_transitions for c in fanout.chains
            ),
            num_chains=self.num_chains,
            chain_length=self.chain_length,
            loads=fanout.loads,
        )

    def run_encoding(self, encoding: Encoding,
                     x_fill: Optional[int] = 0) -> MultiScanTrace:
        """Decompress an :class:`Encoding` produced by the 9C encoder."""
        if encoding.k != self.k:
            raise ValueError(f"encoding K={encoding.k} != decoder K={self.k}")
        if encoding.codebook != self.codebook:
            raise ValueError("codebook mismatch between encoder and decoder")
        return self.run(encoding.stream, encoding.original_length, x_fill)

    def expand(self, encoding: Encoding,
               x_fill: Optional[int] = 0) -> MultiScanTrace:
        """Trace-free decompression: vectorized decode + analytic cycles.

        Same output, cycle totals and ``loads`` as :meth:`run_encoding`
        (cross-checked in the tests) without stepping the shifter:
        output from the vectorized decoder fast path, SoC cycles from
        :func:`repro.analysis.tat.compressed_time_soc_cycles`, and
        ``loads`` from the emitted bit count (one broadside load per
        ``num_chains`` decoded bits).  ``patterns`` and
        ``weighted_transitions`` are not tracked — those need the
        per-cycle scan-chain simulation.
        """
        if encoding.k != self.k:
            raise ValueError(f"encoding K={encoding.k} != decoder K={self.k}")
        if encoding.codebook != self.codebook:
            raise ValueError("codebook mismatch between encoder and decoder")
        with _obs.span("decompress.multi_scan.expand"):
            trace = self._expand_impl(encoding, x_fill)
        if _obs.enabled():
            record_trace("decompress.multi_scan", trace)
            _obs.get_registry().counter(
                "decompress.multi_scan.loads"
            ).inc(trace.loads)
        return trace

    def _expand_impl(self, encoding: Encoding,
                     x_fill: Optional[int]) -> MultiScanTrace:
        from ..analysis.tat import compressed_time_soc_cycles
        from ..core.decoder import NineCDecoder

        half = self.k // 2
        decoder = NineCDecoder(self.k, self.codebook)
        output = decoder.decode_stream(encoding.stream,
                                       encoding.original_length)
        if x_fill is not None and x_fill != X and output.num_x:
            output = output.filled(x_fill)
        counts = encoding.case_counts
        blocks = len(encoding.blocks)
        loads = encoding.padded_length // self.num_chains
        if encoding.original_length == 0:
            # run() stops before consuming any block when output_length
            # is 0, even though the encoder pads empty input to one block.
            counts = {case: 0 for case in counts}
            blocks = 0
            loads = 0
        codeword_ate = sum(self.codebook.length(case) * count
                           for case, count in counts.items())
        data_ate = sum(count * half * case.num_mismatch_halves
                       for case, count in counts.items())
        uniform_soc = sum(count * half * (2 - case.num_mismatch_halves)
                          for case, count in counts.items())
        return MultiScanTrace(
            output=output,
            soc_cycles=compressed_time_soc_cycles(
                counts, self.k, self.p, self.codebook
            ),
            ate_cycles=codeword_ate + data_ate,
            codeword_ate_cycles=codeword_ate,
            data_ate_cycles=data_ate,
            uniform_soc_cycles=uniform_soc,
            blocks=blocks,
            case_counts=dict(counts),
            num_chains=self.num_chains,
            chain_length=self.chain_length,
            loads=loads,
        )
