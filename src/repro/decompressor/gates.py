"""Decoder hardware-cost estimation.

The paper reports the 9C decoder FSM as a small, K-independent block
(synthesized with Design Compiler).  With no synthesis tool available we
estimate cost from first principles (DESIGN.md §4): encode the FSM's
states in binary, build the next-state and output truth tables, minimize
each output with Quine-McCluskey + greedy prime-implicant cover, and
count literals / equivalent two-input gates.  The reproduced claims:

* the control FSM's cost does not depend on K (only the external counter
  grows, by log2(K/2) flops);
* the whole decoder is tens of gates, not hundreds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.codewords import Codebook
from .fsm import NineCDecoderFSM

Implicant = Tuple[int, int]  # (value bits, care mask) over n variables


def _covers(implicant: Implicant, minterm: int) -> bool:
    value, mask = implicant
    return (minterm & mask) == (value & mask)


def _try_merge(a: Implicant, b: Implicant) -> Optional[Implicant]:
    if a[1] != b[1]:
        return None
    difference = (a[0] ^ b[0]) & a[1]
    if difference and not (difference & (difference - 1)):
        return (a[0] & ~difference, a[1] & ~difference)
    return None


def prime_implicants(minterms: Sequence[int], dont_cares: Sequence[int],
                     num_vars: int) -> List[Implicant]:
    """Quine-McCluskey prime implicant generation."""
    mask = (1 << num_vars) - 1
    current = {(m & mask, mask) for m in list(minterms) + list(dont_cares)}
    primes: set = set()
    while current:
        merged: set = set()
        used: set = set()
        current_list = sorted(current)
        for a, b in combinations(current_list, 2):
            candidate = _try_merge(a, b)
            if candidate is not None:
                merged.add(candidate)
                used.add(a)
                used.add(b)
        primes |= current - used
        current = merged
    return sorted(primes)


def minimum_cover(minterms: Sequence[int],
                  primes: Sequence[Implicant]) -> List[Implicant]:
    """Greedy essential-first cover of the ON-set by prime implicants."""
    remaining = set(minterms)
    cover: List[Implicant] = []
    # essential primes first
    for minterm in list(remaining):
        covering = [p for p in primes if _covers(p, minterm)]
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for p in cover:
        remaining -= {m for m in remaining if _covers(p, m)}
    # then greedy by coverage
    while remaining:
        best = max(primes,
                   key=lambda p: sum(1 for m in remaining if _covers(p, m)))
        gained = {m for m in remaining if _covers(best, m)}
        if not gained:
            raise ValueError("ON-set minterm not covered by any prime")
        cover.append(best)
        remaining -= gained
    return cover


def implicant_literals(implicant: Implicant, num_vars: int) -> int:
    """Number of literals in one product term."""
    return bin(implicant[1] & ((1 << num_vars) - 1)).count("1")


@dataclass(frozen=True)
class LogicCost:
    """Two-level cost of one minimized output function."""

    terms: int
    literals: int

    @property
    def gate_equivalents(self) -> float:
        """Rough 2-input-NAND equivalents: literals plus OR-tree merges."""
        return self.literals + max(0, self.terms - 1)


def minimize_function(minterms: Sequence[int], num_vars: int,
                      dont_cares: Sequence[int] = ()) -> LogicCost:
    """QM-minimize one single-output function and report its cost."""
    if not minterms:
        return LogicCost(0, 0)
    primes = prime_implicants(minterms, dont_cares, num_vars)
    cover = minimum_cover(minterms, primes)
    return LogicCost(
        terms=len(cover),
        literals=sum(implicant_literals(p, num_vars) for p in cover),
    )


@dataclass(frozen=True)
class DecoderCost:
    """Estimated hardware cost of the full 9C decoder."""

    fsm_states: int
    fsm_flops: int
    fsm_terms: int
    fsm_literals: int
    counter_flops: int
    shifter_flops: int
    k: int

    @property
    def fsm_gate_equivalents(self) -> float:
        """FSM combinational logic in 2-input gate equivalents."""
        return self.fsm_literals + max(0, self.fsm_terms - 1)

    @property
    def total_flops(self) -> int:
        """State + counter + shifter flip-flops."""
        return self.fsm_flops + self.counter_flops + self.shifter_flops


def fsm_cost(fsm: Optional[NineCDecoderFSM] = None) -> Tuple[int, int, int, int]:
    """(states, state flops, minimized terms, literals) of the control FSM.

    Inputs to the next-state logic: state bits + Data_in.  Output
    functions: next-state bits plus a resolved-case strobe per half kind
    (the Sel lines).  Unreachable input combinations are don't-cares.
    """
    fsm = fsm or NineCDecoderFSM()
    states = fsm.states()
    index = {name: i for i, name in enumerate(states)}
    state_bits = max(1, math.ceil(math.log2(len(states))))
    num_vars = state_bits + 1  # + Data_in

    # next-state bit functions + 2 Sel bits (zero/one/data per resolved case)
    next_state_minterms: Dict[int, List[int]] = {b: [] for b in range(state_bits)}
    sel_minterms: Dict[int, List[int]] = {0: [], 1: []}
    specified: List[int] = []
    for src, bit, dst, case in fsm.transition_table():
        input_word = (index[src] << 1) | bit
        specified.append(input_word)
        dst_code = index[dst]
        for b in range(state_bits):
            if (dst_code >> b) & 1:
                next_state_minterms[b].append(input_word)
        if case is not None:
            # Sel encoding: 00 drive-0, 01 drive-1, 1x pass data (per half;
            # the half sequencing reuses the same lines under Done).
            left, right = case.halves
            code = {"0": 0, "1": 1, "U": 2}[left.value]
            for b in range(2):
                if (code >> b) & 1:
                    sel_minterms[b].append(input_word)
    all_words = set(range(1 << num_vars))
    dont_cares = sorted(all_words - set(specified))

    terms = 0
    literals = 0
    for minterms in list(next_state_minterms.values()) + list(sel_minterms.values()):
        cost = minimize_function(minterms, num_vars, dont_cares)
        terms += cost.terms
        literals += cost.literals
    return len(states), state_bits, terms, literals


def decoder_cost(k: int, codebook: Optional[Codebook] = None) -> DecoderCost:
    """Full decoder cost for block size ``k`` (Figure 1 datapath + FSM)."""
    if k < 2 or k % 2:
        raise ValueError("K must be an even integer >= 2")
    fsm = NineCDecoderFSM(codebook or Codebook.default())
    states, flops, terms, literals = fsm_cost(fsm)
    return DecoderCost(
        fsm_states=states,
        fsm_flops=flops,
        fsm_terms=terms,
        fsm_literals=literals,
        counter_flops=max(1, math.ceil(math.log2(k // 2))),
        shifter_flops=k // 2,
        k=k,
    )
