"""Decoder hardware-cost estimation.

The paper reports the 9C decoder FSM as a small, K-independent block
(synthesized with Design Compiler).  With no synthesis tool available we
estimate cost from first principles (DESIGN.md §4): encode the FSM's
states in binary, build the next-state and output truth tables, minimize
each output with Quine-McCluskey + greedy prime-implicant cover, and
count literals / equivalent two-input gates.  The reproduced claims:

* the control FSM's cost does not depend on K (only the external counter
  grows, by log2(K/2) flops);
* the whole decoder is tens of gates, not hundreds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.netlist import Gate, GateType, Netlist
from ..core.codewords import Codebook
from .fsm import NineCDecoderFSM

Implicant = Tuple[int, int]  # (value bits, care mask) over n variables


def _covers(implicant: Implicant, minterm: int) -> bool:
    value, mask = implicant
    return (minterm & mask) == (value & mask)


def _try_merge(a: Implicant, b: Implicant) -> Optional[Implicant]:
    if a[1] != b[1]:
        return None
    difference = (a[0] ^ b[0]) & a[1]
    if difference and not (difference & (difference - 1)):
        return (a[0] & ~difference, a[1] & ~difference)
    return None


def prime_implicants(minterms: Sequence[int], dont_cares: Sequence[int],
                     num_vars: int) -> List[Implicant]:
    """Quine-McCluskey prime implicant generation."""
    mask = (1 << num_vars) - 1
    current = {(m & mask, mask) for m in list(minterms) + list(dont_cares)}
    primes: set = set()
    while current:
        merged: set = set()
        used: set = set()
        current_list = sorted(current)
        for a, b in combinations(current_list, 2):
            candidate = _try_merge(a, b)
            if candidate is not None:
                merged.add(candidate)
                used.add(a)
                used.add(b)
        primes |= current - used
        current = merged
    return sorted(primes)


def minimum_cover(minterms: Sequence[int],
                  primes: Sequence[Implicant]) -> List[Implicant]:
    """Greedy essential-first cover of the ON-set by prime implicants."""
    remaining = set(minterms)
    cover: List[Implicant] = []
    # essential primes first
    for minterm in list(remaining):
        covering = [p for p in primes if _covers(p, minterm)]
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for p in cover:
        remaining -= {m for m in remaining if _covers(p, m)}
    # then greedy by coverage
    while remaining:
        best = max(primes,
                   key=lambda p: sum(1 for m in remaining if _covers(p, m)))
        gained = {m for m in remaining if _covers(best, m)}
        if not gained:
            raise ValueError("ON-set minterm not covered by any prime")
        cover.append(best)
        remaining -= gained
    return cover


def implicant_literals(implicant: Implicant, num_vars: int) -> int:
    """Number of literals in one product term."""
    return bin(implicant[1] & ((1 << num_vars) - 1)).count("1")


@dataclass(frozen=True)
class LogicCost:
    """Two-level cost of one minimized output function."""

    terms: int
    literals: int

    @property
    def gate_equivalents(self) -> float:
        """Rough 2-input-NAND equivalents: literals plus OR-tree merges."""
        return self.literals + max(0, self.terms - 1)


def minimize_function(minterms: Sequence[int], num_vars: int,
                      dont_cares: Sequence[int] = ()) -> LogicCost:
    """QM-minimize one single-output function and report its cost."""
    if not minterms:
        return LogicCost(0, 0)
    primes = prime_implicants(minterms, dont_cares, num_vars)
    cover = minimum_cover(minterms, primes)
    return LogicCost(
        terms=len(cover),
        literals=sum(implicant_literals(p, num_vars) for p in cover),
    )


@dataclass(frozen=True)
class DecoderCost:
    """Estimated hardware cost of the full 9C decoder."""

    fsm_states: int
    fsm_flops: int
    fsm_terms: int
    fsm_literals: int
    counter_flops: int
    shifter_flops: int
    k: int

    @property
    def fsm_gate_equivalents(self) -> float:
        """FSM combinational logic in 2-input gate equivalents."""
        return self.fsm_literals + max(0, self.fsm_terms - 1)

    @property
    def total_flops(self) -> int:
        """State + counter + shifter flip-flops."""
        return self.fsm_flops + self.counter_flops + self.shifter_flops


@dataclass(frozen=True)
class FSMLogic:
    """Truth-table view of the control FSM's combinational logic.

    The input word packs the current state code in the high bits and
    ``Data_in`` in bit 0.  ``next_state`` maps each state-register bit to
    its ON-set minterms; ``sel`` maps the two Sel-line bits (00 drive-0,
    01 drive-1, 1x pass data) to theirs.  Input words that no transition
    specifies are shared don't-cares.
    """

    states: Tuple[str, ...]
    state_bits: int
    num_vars: int
    next_state: Dict[int, Tuple[int, ...]]
    sel: Dict[int, Tuple[int, ...]]
    dont_cares: Tuple[int, ...]


def fsm_logic(fsm: Optional[NineCDecoderFSM] = None) -> FSMLogic:
    """Extract the FSM's next-state and Sel output functions.

    Shared by the synthesis-cost estimate (:func:`fsm_cost`) and the
    gate-level netlist builder (:func:`decoder_netlist`) so both views
    minimize exactly the same logic.
    """
    fsm = fsm or NineCDecoderFSM()
    states = fsm.states()
    index = {name: i for i, name in enumerate(states)}
    state_bits = max(1, math.ceil(math.log2(len(states))))
    num_vars = state_bits + 1  # + Data_in

    next_state_minterms: Dict[int, List[int]] = {b: [] for b in range(state_bits)}
    sel_minterms: Dict[int, List[int]] = {0: [], 1: []}
    specified: List[int] = []
    for src, bit, dst, case in fsm.transition_table():
        input_word = (index[src] << 1) | bit
        specified.append(input_word)
        dst_code = index[dst]
        for b in range(state_bits):
            if (dst_code >> b) & 1:
                next_state_minterms[b].append(input_word)
        if case is not None:
            # Sel encoding: 00 drive-0, 01 drive-1, 1x pass data (per half;
            # the half sequencing reuses the same lines under Done).
            left = case.halves[0]
            code = {"0": 0, "1": 1, "U": 2}[left.value]
            for b in range(2):
                if (code >> b) & 1:
                    sel_minterms[b].append(input_word)
    all_words = set(range(1 << num_vars))
    dont_cares = tuple(sorted(all_words - set(specified)))
    return FSMLogic(
        states=tuple(states),
        state_bits=state_bits,
        num_vars=num_vars,
        next_state={b: tuple(m) for b, m in next_state_minterms.items()},
        sel={b: tuple(m) for b, m in sel_minterms.items()},
        dont_cares=dont_cares,
    )


def fsm_cost(fsm: Optional[NineCDecoderFSM] = None) -> Tuple[int, int, int, int]:
    """(states, state flops, minimized terms, literals) of the control FSM.

    Inputs to the next-state logic: state bits + Data_in.  Output
    functions: next-state bits plus a resolved-case strobe per half kind
    (the Sel lines).  Unreachable input combinations are don't-cares.
    """
    logic = fsm_logic(fsm)
    terms = 0
    literals = 0
    functions = list(logic.next_state.values()) + list(logic.sel.values())
    for minterms in functions:
        cost = minimize_function(minterms, logic.num_vars, logic.dont_cares)
        terms += cost.terms
        literals += cost.literals
    return len(logic.states), logic.state_bits, terms, literals


class _NetlistBuilder:
    """Accumulates gates with lazily shared inverters and constants."""

    def __init__(self) -> None:
        self.gates: List[Gate] = []
        self._inverters: Dict[str, str] = {}
        self._const0: Optional[str] = None
        self._const1: Optional[str] = None

    def add(self, name: str, gate_type: GateType, *fanins: str) -> str:
        self.gates.append(Gate(name, gate_type, tuple(fanins)))
        return name

    def invert(self, net: str) -> str:
        """Shared complement of ``net`` (one NOT gate per polarity)."""
        if net not in self._inverters:
            self._inverters[net] = self.add(f"{net}_n", GateType.NOT, net)
        return self._inverters[net]

    def const0(self, reference: str) -> str:
        """A constant-0 net built from ``reference`` and its complement."""
        if self._const0 is None:
            self._const0 = self.add(
                "const0", GateType.AND, reference, self.invert(reference)
            )
        return self._const0

    def const1(self, reference: str) -> str:
        """A constant-1 net built from ``reference`` and its complement."""
        if self._const1 is None:
            self._const1 = self.add(
                "const1", GateType.OR, reference, self.invert(reference)
            )
        return self._const1

    def sum_of_products(
        self,
        out: str,
        cover: Sequence[Implicant],
        num_vars: int,
        var_net: Callable[[int], str],
    ) -> str:
        """Realize a two-level cover as AND/OR gates named after ``out``.

        ``var_net(j)`` maps variable index ``j`` (bit position in the
        minterm word) to its true-polarity net name.
        """
        terms: List[str] = []
        for term_index, (value, mask) in enumerate(cover):
            literals: List[str] = []
            for j in range(num_vars):
                if not (mask >> j) & 1:
                    continue
                net = var_net(j)
                literals.append(
                    net if (value >> j) & 1 else self.invert(net)
                )
            if not literals:  # tautological term
                return self.add(out, GateType.BUF, self.const1(var_net(0)))
            if len(literals) == 1:
                terms.append(literals[0])
            else:
                terms.append(self.add(
                    f"{out}_t{term_index}", GateType.AND, *literals
                ))
        if not terms:  # empty ON-set
            return self.add(out, GateType.BUF, self.const0(var_net(0)))
        if len(terms) == 1:
            return self.add(out, GateType.BUF, terms[0])
        return self.add(out, GateType.OR, *terms)


def decoder_netlist(
    k: int,
    codebook: Optional[Codebook] = None,
    name: str = "ninec_decoder_gates",
) -> Netlist:
    """Build the decoder as a gate-level :class:`Netlist` (Figure 1).

    The three blocks of the paper's decompressor become real gates:

    * **FSM** — state flops ``q*`` plus two-level next-state / Sel logic
      synthesized from the same Quine-McCluskey covers :func:`fsm_cost`
      prices (so the estimate and the structure cannot drift apart);
    * **counter** — the external log2(K/2) ripple counter with its
      ``done`` (count == K/2 - 1) detector, enabled by ``advance``;
    * **shifter** — the K/2-bit serial shift register of the
      multi-scan datapath, fed by ``serial_in``.

    The result is structurally lintable by :mod:`repro.lint.netlist`
    and simulatable by the circuit engines.  Note the shift register is
    intentionally flop-to-flop; netlist lint rule NL006 flags such paths
    as scan-shift hazards, so lint runs over decoder netlists waive it.
    """
    if k < 2 or k % 2:
        raise ValueError("K must be an even integer >= 2")
    fsm = NineCDecoderFSM(codebook or Codebook.default())
    logic = fsm_logic(fsm)
    builder = _NetlistBuilder()

    def var_net(j: int) -> str:
        return "data_in" if j == 0 else f"q{j - 1}"

    # FSM combinational logic from the minimized covers
    for bit, minterms in logic.next_state.items():
        out = f"ns{bit}"
        if not minterms:
            builder.sum_of_products(out, [], logic.num_vars, var_net)
            continue
        primes = prime_implicants(minterms, logic.dont_cares, logic.num_vars)
        cover = minimum_cover(minterms, primes)
        builder.sum_of_products(out, cover, logic.num_vars, var_net)
    for bit, minterms in logic.sel.items():
        out = f"sel{bit}"
        if not minterms:
            builder.sum_of_products(out, [], logic.num_vars, var_net)
            continue
        primes = prime_implicants(minterms, logic.dont_cares, logic.num_vars)
        cover = minimum_cover(minterms, primes)
        builder.sum_of_products(out, cover, logic.num_vars, var_net)
    for bit in range(logic.state_bits):
        builder.add(f"q{bit}", GateType.DFF, f"ns{bit}")

    # counter: ripple increment under `advance`, done at HALF - 1
    half = k // 2
    count_width = max(1, math.ceil(math.log2(half))) if half > 1 else 1
    target = half - 1
    done_literals = [
        f"c{bit}" if (target >> bit) & 1 else builder.invert(f"c{bit}")
        for bit in range(count_width)
    ]
    if len(done_literals) == 1:
        builder.add("done", GateType.BUF, done_literals[0])
    else:
        builder.add("done", GateType.AND, *done_literals)
    # The advance that completes a half clears the counter (the RTL's
    # ``count <= done ? 0 : count + 1``).  For power-of-two halves the
    # ripple increment wraps to zero on its own, but the explicit clear
    # keeps the netlist correct for every even K.
    clear = builder.add("count_clear", GateType.AND, "advance", "done")
    clear_n = builder.invert(clear)
    carry = "advance"
    for bit in range(count_width):
        increment = builder.add(f"cinc{bit}", GateType.XOR, f"c{bit}", carry)
        builder.add(f"cn{bit}", GateType.AND, increment, clear_n)
        if bit + 1 < count_width:
            carry = builder.add(
                f"carry{bit + 1}", GateType.AND, carry, f"c{bit}"
            )
    for bit in range(count_width):
        builder.add(f"c{bit}", GateType.DFF, f"cn{bit}")

    # shifter: K/2-bit serial-in shift register
    previous = "serial_in"
    for bit in range(half):
        previous = builder.add(f"sh{bit}", GateType.DFF, previous)

    return Netlist(
        name=name,
        inputs=["data_in", "advance", "serial_in"],
        outputs=["sel0", "sel1", "done", f"sh{half - 1}"],
        gates=builder.gates,
    )


def decoder_cost(k: int, codebook: Optional[Codebook] = None) -> DecoderCost:
    """Full decoder cost for block size ``k`` (Figure 1 datapath + FSM)."""
    if k < 2 or k % 2:
        raise ValueError("K must be an even integer >= 2")
    fsm = NineCDecoderFSM(codebook or Codebook.default())
    states, flops, terms, literals = fsm_cost(fsm)
    return DecoderCost(
        fsm_states=states,
        fsm_flops=flops,
        fsm_terms=terms,
        fsm_literals=literals,
        counter_flops=max(1, math.ceil(math.log2(k // 2))),
        shifter_flops=k // 2,
        k=k,
    )
