"""Single-scan-chain decompression architecture (paper Figure 1).

FSM + log2(K/2) counter + K/2-bit shifter + MUX, feeding one scan chain.
The model is cycle-accurate in both clock domains:

* every codeword bit costs one ATE cycle (Data_in is serial);
* a *uniform* half is generated on-chip: K/2 SoC (scan) cycles;
* a *mismatch* half streams its K/2 bits from the ATE: K/2 ATE cycles
  (the scan clock is at least as fast, so the shift overlaps reception).

With f_scan = p * f_ate, one ATE cycle is ``p`` SoC cycles; all times are
accounted in SoC cycles and converted by :mod:`repro.analysis.tat`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs as _obs
from ..core.bitstream import TernaryStreamReader
from ..core.bitvec import ONE, X, ZERO, TernaryVector
from ..core.codewords import BlockCase, Codebook
from ..core.encoder import Encoding
from .fsm import NineCDecoderFSM
from .scan import ScanChain


@dataclass
class DecompressionTrace:
    """What happened during one decompression run."""

    output: TernaryVector
    soc_cycles: int
    ate_cycles: int
    codeword_ate_cycles: int
    data_ate_cycles: int
    uniform_soc_cycles: int
    blocks: int
    case_counts: Dict[BlockCase, int] = field(default_factory=dict)
    patterns: List[TernaryVector] = field(default_factory=list)
    weighted_transitions: int = 0


def record_trace(prefix: str, trace: "DecompressionTrace") -> None:
    """Fold one finished decompressor run into the metrics registry.

    Shared by the single-scan and multi-scan models; called post-hoc
    from already-computed trace fields, so the cycle-accurate loop
    itself carries no hooks.
    """
    registry = _obs.get_registry()
    registry.counter(f"{prefix}.runs").inc()
    registry.counter(f"{prefix}.bits_out").inc(len(trace.output))
    registry.counter(f"{prefix}.blocks").inc(trace.blocks)
    registry.counter(f"{prefix}.soc_cycles").inc(trace.soc_cycles)
    registry.counter(f"{prefix}.ate_cycles").inc(trace.ate_cycles)
    registry.counter(f"{prefix}.uniform_soc_cycles").inc(
        trace.uniform_soc_cycles
    )
    registry.count_cases(f"{prefix}.blocks_by_case", trace.case_counts)


class SingleScanDecompressor:
    """Cycle-accurate model of Figure 1."""

    def __init__(
        self,
        k: int,
        codebook: Optional[Codebook] = None,
        p: int = 1,
        scan_length: Optional[int] = None,
    ):
        if k < 2 or k % 2:
            raise ValueError("K must be an even integer >= 2")
        if p < 1:
            raise ValueError("p = f_scan/f_ate must be >= 1")
        self.k = k
        self.codebook = codebook or Codebook.default()
        self.p = p
        self.scan_length = scan_length
        self.fsm = NineCDecoderFSM(self.codebook)

    def run(
        self,
        stream: TernaryVector,
        output_length: Optional[int] = None,
        x_fill: Optional[int] = None,
    ) -> DecompressionTrace:
        """Decompress a 9C stream through the architecture.

        ``x_fill`` optionally replaces leftover X bits arriving from the
        ATE (the tester would have filled them); None keeps them X, which
        the scan chain model tolerates for verification purposes.
        """
        with _obs.span("decompress.single_scan"):
            trace = self._run_impl(stream, output_length, x_fill)
        if _obs.enabled():
            record_trace("decompress.single_scan", trace)
        return trace

    def _run_impl(
        self,
        stream: TernaryVector,
        output_length: Optional[int],
        x_fill: Optional[int],
    ) -> DecompressionTrace:
        half = self.k // 2
        reader = TernaryStreamReader(stream)
        self.fsm.reset()
        chain = ScanChain(self.scan_length) if self.scan_length else None

        out_bits: List[int] = []
        patterns: List[TernaryVector] = []
        soc = 0
        codeword_ate = 0
        data_ate = 0
        uniform_soc = 0
        blocks = 0
        case_counts: Dict[BlockCase, int] = {case: 0 for case in BlockCase}

        def emit(bit: int) -> None:
            out_bits.append(bit)
            if chain is not None:
                chain.shift_in(bit)
                if len(out_bits) % self.scan_length == 0:
                    patterns.append(chain.capture())

        while not reader.at_end():
            if output_length is not None and len(out_bits) >= output_length:
                break
            # --- receive one codeword, one ATE cycle per bit -----------
            case = None
            while case is None:
                bit = reader.read_bit()
                codeword_ate += 1
                soc += self.p
                case = self.fsm.on_data_bit(bit)
            case_counts[case] += 1
            blocks += 1
            # --- drive the two halves ----------------------------------
            while self.fsm.halves_remaining:
                directive = self.fsm.next_half()
                if directive.from_ate:
                    for _ in range(half):
                        bit = reader.read_bit()
                        if bit == X and x_fill is not None:
                            bit = x_fill
                        data_ate += 1
                        soc += self.p
                        emit(bit)
                else:
                    value = ZERO if directive.sel == "zero" else ONE
                    for _ in range(half):
                        uniform_soc += 1
                        soc += 1
                        emit(value)

        output = TernaryVector(out_bits)
        if output_length is not None:
            output = output[:output_length]
        return DecompressionTrace(
            output=output,
            soc_cycles=soc,
            ate_cycles=codeword_ate + data_ate,
            codeword_ate_cycles=codeword_ate,
            data_ate_cycles=data_ate,
            uniform_soc_cycles=uniform_soc,
            blocks=blocks,
            case_counts=case_counts,
            patterns=patterns,
            weighted_transitions=chain.weighted_transitions if chain else 0,
        )

    def run_encoding(self, encoding: Encoding,
                     x_fill: Optional[int] = None) -> DecompressionTrace:
        """Decompress an :class:`Encoding` produced by the 9C encoder."""
        if encoding.k != self.k:
            raise ValueError(f"encoding K={encoding.k} != decoder K={self.k}")
        if encoding.codebook != self.codebook:
            raise ValueError("codebook mismatch between encoder and decoder")
        return self.run(encoding.stream, encoding.original_length, x_fill)

    def expand(self, encoding: Encoding,
               x_fill: Optional[int] = None) -> DecompressionTrace:
        """Trace-free decompression: vectorized decode + analytic cycles.

        Produces the same output and cycle totals as :meth:`run_encoding`
        without stepping the datapath cycle by cycle: the output comes
        from the vectorized :class:`~repro.core.decoder.NineCDecoder`
        fast path and the cycle counts from the Section III-C per-case
        terms (:func:`repro.analysis.tat.compressed_time_soc_cycles`),
        cross-checked against the cycle-accurate model in the tests.
        ``patterns`` and ``weighted_transitions`` are not tracked —
        those need the per-cycle scan-chain simulation.
        """
        if encoding.k != self.k:
            raise ValueError(f"encoding K={encoding.k} != decoder K={self.k}")
        if encoding.codebook != self.codebook:
            raise ValueError("codebook mismatch between encoder and decoder")
        with _obs.span("decompress.single_scan.expand"):
            trace = self._expand_impl(encoding, x_fill)
        if _obs.enabled():
            record_trace("decompress.single_scan", trace)
        return trace

    def _expand_impl(self, encoding: Encoding,
                     x_fill: Optional[int]) -> DecompressionTrace:
        from ..analysis.tat import compressed_time_soc_cycles
        from ..core.decoder import NineCDecoder

        half = self.k // 2
        decoder = NineCDecoder(self.k, self.codebook)
        output = decoder.decode_stream(encoding.stream,
                                       encoding.original_length)
        if x_fill is not None and x_fill != X and output.num_x:
            output = output.filled(x_fill)
        counts = encoding.case_counts
        blocks = len(encoding.blocks)
        if encoding.original_length == 0:
            # run() stops before consuming any block when output_length
            # is 0, even though the encoder pads empty input to one block.
            counts = {case: 0 for case in counts}
            blocks = 0
        codeword_ate = sum(self.codebook.length(case) * count
                           for case, count in counts.items())
        data_ate = sum(count * half * case.num_mismatch_halves
                       for case, count in counts.items())
        uniform_soc = sum(count * half * (2 - case.num_mismatch_halves)
                          for case, count in counts.items())
        return DecompressionTrace(
            output=output,
            soc_cycles=compressed_time_soc_cycles(
                counts, self.k, self.p, self.codebook
            ),
            ate_cycles=codeword_ate + data_ate,
            codeword_ate_cycles=codeword_ate,
            data_ate_cycles=data_ate,
            uniform_soc_cycles=uniform_soc,
            blocks=blocks,
            case_counts=dict(counts),
        )
