"""LFSR / MISR models — the response side of reduced pin-count testing.

The paper compresses the *stimulus* side; a reduced-pin-count flow also
needs the responses compacted on-chip so they don't consume output pins.
The standard structure is a multiple-input signature register (MISR): an
LFSR that XORs one response slice into its state every scan cycle and is
read out once as a signature.  This module provides both primitives plus
an aliasing estimate, and is used by the RPCT example to close the loop:
m chains in through one pin (Figure 3), m chains out through one
signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.bitvec import TernaryVector

#: Primitive polynomials (taps, x^0 implied) for common widths.
PRIMITIVE_TAPS = {
    4: (4, 3),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


def default_taps(width: int) -> Sequence[int]:
    """A primitive feedback polynomial for ``width`` (raises if unknown)."""
    try:
        return PRIMITIVE_TAPS[width]
    except KeyError:
        raise ValueError(
            f"no default primitive polynomial for width {width}; "
            f"choose from {sorted(PRIMITIVE_TAPS)}"
        ) from None


class LFSR:
    """Fibonacci LFSR over GF(2) with taps given as exponents."""

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 1):
        if width < 2:
            raise ValueError("width must be >= 2")
        self.width = width
        self.taps = tuple(taps) if taps is not None else tuple(
            default_taps(width)
        )
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError("tap exponents must be in 1..width")
        if seed <= 0 or seed >= (1 << width):
            raise ValueError("seed must be a nonzero state")
        self.state = seed

    def step(self) -> int:
        """Advance one cycle; returns the output bit (LSB before shift)."""
        out = self.state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        self.state = (self.state >> 1) | (feedback << (self.width - 1))
        return out

    def bits(self, count: int) -> List[int]:
        """The next ``count`` output bits."""
        return [self.step() for _ in range(count)]

    def period(self, limit: Optional[int] = None) -> int:
        """Cycle length from the current state (primitive => 2^w - 1)."""
        limit = limit or (1 << self.width)
        start = self.state
        for steps in range(1, limit + 1):
            self.step()
            if self.state == start:
                return steps
        raise RuntimeError("period exceeds limit")


class MISR:
    """Multiple-input signature register of ``width`` parallel inputs."""

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 0):
        if width < 2:
            raise ValueError("width must be >= 2")
        self.width = width
        self.taps = tuple(taps) if taps is not None else tuple(
            default_taps(width)
        )
        self.state = seed

    def absorb(self, slice_bits: Sequence[int]) -> None:
        """Clock one scan cycle with one response bit per input."""
        if len(slice_bits) != self.width:
            raise ValueError(
                f"expected {self.width} response bits, got {len(slice_bits)}"
            )
        word = 0
        for bit in slice_bits:
            if bit not in (0, 1):
                raise ValueError("MISR inputs must be specified bits")
            word = (word << 1) | bit
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        self.state = (((self.state >> 1)
                       | (feedback << (self.width - 1))) ^ word) \
            & ((1 << self.width) - 1)

    def absorb_response(self, response: TernaryVector) -> None:
        """Absorb a whole response vector, ``width`` bits per cycle."""
        if len(response) % self.width:
            raise ValueError("response length must be a width multiple")
        for start in range(0, len(response), self.width):
            self.absorb(list(response[start : start + self.width]))

    @property
    def signature(self) -> int:
        """The accumulated signature."""
        return self.state


@dataclass(frozen=True)
class AliasingEstimate:
    """Probability that a faulty response maps to the good signature."""

    width: int

    @property
    def probability(self) -> float:
        """The classic 2^-w MISR aliasing bound."""
        return 2.0 ** -self.width


def signature_of(responses: Iterable[TernaryVector], width: int,
                 taps: Optional[Sequence[int]] = None) -> int:
    """Signature of a response sequence through a fresh MISR."""
    misr = MISR(width, taps)
    for response in responses:
        misr.absorb_response(response)
    return misr.signature
