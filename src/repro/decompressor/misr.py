"""LFSR / MISR models — the response side of reduced pin-count testing.

The paper compresses the *stimulus* side; a reduced-pin-count flow also
needs the responses compacted on-chip so they don't consume output pins.
The standard structure is a multiple-input signature register (MISR): an
LFSR that XORs one response slice into its state every scan cycle and is
read out once as a signature.  This module provides both primitives plus
an aliasing estimate, and is used by the RPCT example to close the loop:
m chains in through one pin (Figure 3), m chains out through one
signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.bitvec import TernaryVector

#: Primitive polynomials (taps, x^0 implied) for common widths.
PRIMITIVE_TAPS = {
    4: (4, 3),
    8: (8, 6, 5, 4),
    12: (12, 6, 4, 1),
    16: (16, 15, 13, 4),
    20: (20, 3),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
}

#: Largest width :func:`default_taps` will brute-force-search a primitive
#: polynomial for when the table has no entry.  The bound keeps the
#: factorization of 2^w - 1 (needed by the primitivity test) to trial
#: division of small cofactors.
MAX_SEARCH_WIDTH = 32

#: Cache of brute-force search results: width -> taps.
_SEARCHED_TAPS: Dict[int, Tuple[int, ...]] = {}


# ----------------------------------------------------------------------
# GF(2) polynomial arithmetic (ints: bit i = coefficient of x^i)
# ----------------------------------------------------------------------

def _poly_mulmod(a: int, b: int, mod: int, degree: int) -> int:
    """(a * b) mod ``mod`` over GF(2); operands already reduced."""
    result = 0
    top = 1 << degree
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & top:
            a ^= mod
    return result


def _poly_powmod(base: int, exponent: int, mod: int, degree: int) -> int:
    """base**exponent mod ``mod`` over GF(2) by square-and-multiply."""
    result = 1
    while exponent:
        if exponent & 1:
            result = _poly_mulmod(result, base, mod, degree)
        base = _poly_mulmod(base, base, mod, degree)
        exponent >>= 1
    return result


def _prime_factors(n: int) -> Set[int]:
    """Distinct prime factors by trial division (callers keep n modest)."""
    factors: Set[int] = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.add(n)
    return factors


_FACTOR_CACHE: Dict[int, Set[int]] = {}


def is_primitive(taps: Sequence[int], width: Optional[int] = None) -> bool:
    """Is the feedback polynomial of ``taps`` primitive over GF(2)?

    ``taps`` are the nonzero exponents of the polynomial besides x^0
    (the table convention: ``(4, 3)`` means x^4 + x^3 + 1) and must
    include the width.  Primitivity is checked algebraically — x has
    multiplicative order 2^w - 1 modulo the polynomial — which proves
    the maximal LFSR/MISR period without stepping 2^w - 1 cycles.
    """
    taps = tuple(taps)
    width = width if width is not None else max(taps)
    if width < 2 or max(taps) != width or min(taps) < 1:
        return False
    poly = 1
    for t in set(taps):
        poly |= 1 << t
    order = (1 << width) - 1
    if order not in _FACTOR_CACHE:
        _FACTOR_CACHE[order] = _prime_factors(order)
    if _poly_powmod(2, order, poly, width) != 1:
        return False
    return all(
        _poly_powmod(2, order // q, poly, width) != 1
        for q in _FACTOR_CACHE[order]
    )


def find_primitive_taps(width: int) -> Tuple[int, ...]:
    """Brute-force the lightest primitive polynomial for ``width``.

    Tries trinomials x^w + x^a + 1 first, then pentanomials; every
    width up to :data:`MAX_SEARCH_WIDTH` has one of the two.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if width > MAX_SEARCH_WIDTH:
        raise ValueError(
            f"primitivity search is bounded to width <= {MAX_SEARCH_WIDTH}"
        )
    for a in range(width - 1, 0, -1):
        if is_primitive((width, a)):
            return (width, a)
    for combo in combinations(range(width - 1, 0, -1), 3):
        taps = (width,) + combo
        if is_primitive(taps):
            return taps
    raise ValueError(  # pragma: no cover - unreachable for w <= 32
        f"no primitive tri/pentanomial found for width {width}"
    )


def default_taps(width: int) -> Sequence[int]:
    """A primitive feedback polynomial for ``width``.

    Table widths return the catalogued polynomial; unknown widths up to
    :data:`MAX_SEARCH_WIDTH` fall back to a (cached) brute-force
    primitivity search.  Wider unknown widths raise — pass explicit
    ``taps`` there.
    """
    if width in PRIMITIVE_TAPS:
        return PRIMITIVE_TAPS[width]
    if 2 <= width <= MAX_SEARCH_WIDTH:
        if width not in _SEARCHED_TAPS:
            _SEARCHED_TAPS[width] = find_primitive_taps(width)
        return _SEARCHED_TAPS[width]
    raise ValueError(
        f"no default primitive polynomial for width {width}; choose from "
        f"{sorted(PRIMITIVE_TAPS)}, a width <= {MAX_SEARCH_WIDTH} "
        "(searched automatically), or pass taps explicitly"
    )


class LFSR:
    """Fibonacci LFSR over GF(2) with taps given as exponents."""

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 1):
        if width < 2:
            raise ValueError("width must be >= 2")
        self.width = width
        self.taps = tuple(taps) if taps is not None else tuple(
            default_taps(width)
        )
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError("tap exponents must be in 1..width")
        if seed <= 0 or seed >= (1 << width):
            raise ValueError("seed must be a nonzero state")
        self.state = seed

    def step(self) -> int:
        """Advance one cycle; returns the output bit (LSB before shift)."""
        out = self.state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        self.state = (self.state >> 1) | (feedback << (self.width - 1))
        return out

    def bits(self, count: int) -> List[int]:
        """The next ``count`` output bits."""
        return [self.step() for _ in range(count)]

    def period(self, limit: Optional[int] = None) -> int:
        """Cycle length from the current state (primitive => 2^w - 1)."""
        limit = limit or (1 << self.width)
        start = self.state
        for steps in range(1, limit + 1):
            self.step()
            if self.state == start:
                return steps
        raise RuntimeError("period exceeds limit")


class MISR:
    """Multiple-input signature register of ``width`` parallel inputs."""

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 0):
        if width < 2:
            raise ValueError("width must be >= 2")
        self.width = width
        self.taps = tuple(taps) if taps is not None else tuple(
            default_taps(width)
        )
        self.state = seed

    def absorb(self, slice_bits: Sequence[int]) -> None:
        """Clock one scan cycle with one response bit per input."""
        if len(slice_bits) != self.width:
            raise ValueError(
                f"expected {self.width} response bits, got {len(slice_bits)}"
            )
        word = 0
        for bit in slice_bits:
            if bit not in (0, 1):
                raise ValueError("MISR inputs must be specified bits")
            word = (word << 1) | bit
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        self.state = (((self.state >> 1)
                       | (feedback << (self.width - 1))) ^ word) \
            & ((1 << self.width) - 1)

    def absorb_response(self, response: TernaryVector) -> None:
        """Absorb a whole response vector, ``width`` bits per cycle."""
        if len(response) % self.width:
            raise ValueError("response length must be a width multiple")
        for start in range(0, len(response), self.width):
            self.absorb(list(response[start : start + self.width]))

    @property
    def signature(self) -> int:
        """The accumulated signature."""
        return self.state


@dataclass(frozen=True)
class AliasingEstimate:
    """Probability that a faulty response maps to the good signature."""

    width: int

    @property
    def probability(self) -> float:
        """The classic 2^-w MISR aliasing bound."""
        return 2.0 ** -self.width


def signature_of(responses: Iterable[TernaryVector], width: int,
                 taps: Optional[Sequence[int]] = None) -> int:
    """Signature of a response sequence through a fresh MISR."""
    misr = MISR(width, taps)
    for response in responses:
        misr.absorb_response(response)
    return misr.signature
