"""Verilog testbench + golden-vector generation for the decoder RTL.

Closes the hardware loop for external simulators: the cycle-accurate
Python model produces the stimulus (the compressed stream) and the
golden response (the decoded scan-in sequence), and this module wraps
them in a self-checking testbench for the single-clock decoder emitted
by :mod:`repro.decompressor.verilog`.  The testbench plays the ATE side
of the ready/ate_tick handshake with a programmable clock divider
(f_scan = P x f_ate).

For an offline check without a simulator, the same RTL is executed
directly by :mod:`repro.decompressor.rtlsim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..core.bitvec import X, TernaryVector
from ..core.decoder import NineCDecoder
from ..core.encoder import Encoding

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TestbenchBundle:
    """Generated artifacts: testbench source + stimulus/golden memories."""

    testbench: str
    stimulus: str       # one compressed bit per line ($readmemb)
    golden: str         # one expected scan bit per line

    def write(self, directory: PathLike, prefix: str = "ninec_tb") -> None:
        """Write the three files under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{prefix}.v").write_text(self.testbench)
        (directory / f"{prefix}_stimulus.memb").write_text(self.stimulus)
        (directory / f"{prefix}_golden.memb").write_text(self.golden)


def generate_testbench(
    encoding: Encoding,
    module_name: str = "ninec_decoder",
    x_fill: int = 0,
    p: int = 2,
) -> TestbenchBundle:
    """Build a self-checking testbench for one compressed stream.

    Leftover X bits in the stream are materialized with ``x_fill`` (the
    tester stores concrete bits); the golden response is the decoded
    stream under the same fill.  ``p`` is the scan-to-ATE clock ratio
    the testbench's divider models.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    stream_bits = [
        x_fill if bit == X else int(bit) for bit in encoding.stream
    ]
    decoded = NineCDecoder(encoding.k, encoding.codebook).decode_stream(
        TernaryVector(stream_bits)
    )
    golden_bits = [int(b) for b in decoded]

    stimulus = "\n".join(str(b) for b in stream_bits) + "\n"
    golden = "\n".join(str(b) for b in golden_bits) + "\n"

    tb = f"""// self-checking testbench for {module_name} (K={encoding.k}, p={p})
`timescale 1ns/1ps
module {module_name}_tb;
    localparam STIM_LEN = {len(stream_bits)};
    localparam GOLD_LEN = {len(golden_bits)};
    localparam P = {p};

    reg clk = 0, rst_n = 0, dec_en = 0;
    reg ate_tick = 0;
    reg data_in = 0;
    wire ready, scan_en, scan_out, ack;

    {module_name} dut (
        .clk(clk), .rst_n(rst_n), .dec_en(dec_en),
        .ate_tick(ate_tick), .data_in(data_in),
        .ready(ready), .scan_en(scan_en), .scan_out(scan_out), .ack(ack)
    );

    reg [0:0] stimulus [0:STIM_LEN-1];
    reg [0:0] golden   [0:GOLD_LEN-1];
    integer stim_index = 0, gold_index = 0, errors = 0;
    integer divider = 0;

    initial begin
        $readmemb("{module_name}_tb_stimulus.memb", stimulus);
        $readmemb("{module_name}_tb_golden.memb", golden);
        #20 rst_n = 1; dec_en = 1;
    end

    always #5 clk = ~clk;  // SoC scan clock

    // ATE side of the handshake: offer one bit every P scan cycles,
    // but only when the decoder is ready for it.
    always @(negedge clk) begin
        if (rst_n) begin
            divider <= (divider == P - 1) ? 0 : divider + 1;
            if (divider == P - 1 && ready && stim_index < STIM_LEN) begin
                ate_tick   <= 1'b1;
                data_in    <= stimulus[stim_index];
                stim_index <= stim_index + 1;
            end else begin
                ate_tick <= 1'b0;
            end
        end
    end

    always @(posedge clk) begin
        if (scan_en) begin
            if (scan_out !== golden[gold_index]) begin
                errors = errors + 1;
                $display("MISMATCH at scan bit %0d: got %b want %b",
                         gold_index, scan_out, golden[gold_index]);
            end
            gold_index = gold_index + 1;
            if (gold_index == GOLD_LEN) begin
                if (errors == 0) $display("TESTBENCH PASS (%0d bits)",
                                          GOLD_LEN);
                else             $display("TESTBENCH FAIL (%0d errors)",
                                          errors);
                $finish;
            end
        end
    end
endmodule
"""
    return TestbenchBundle(testbench=tb, stimulus=stimulus, golden=golden)
