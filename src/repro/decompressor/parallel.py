"""Parallel multi-decoder architecture (paper Figure 4c).

The ``m`` scan chains are partitioned into ``m/K`` groups of K chains;
each group gets its own ATE pin, its own decoder and its own K-bit
shifter, and all groups stream concurrently.  Compared to the single-pin
architecture this multiplies pin count and decoder area by ``m/K`` but
divides test application time by the same factor (the slowest group sets
the total) — the trade-off axis of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.bitvec import TernaryVector
from ..core.codewords import Codebook
from ..core.encoder import NineCEncoder
from ..testdata.testset import TestSet
from .multi_scan import MultiScanDecompressor, MultiScanTrace


@dataclass
class ParallelTrace:
    """Results of a parallel multi-decoder run."""

    group_traces: List[MultiScanTrace]
    test_set: TestSet
    num_pins: int

    @property
    def soc_cycles(self) -> int:
        """Wall-clock SoC cycles: the slowest group dominates."""
        return max(t.soc_cycles for t in self.group_traces)

    @property
    def total_compressed_bits(self) -> int:
        """Sum of all groups' compressed streams."""
        return sum(t.ate_cycles for t in self.group_traces)


class ParallelDecompressor:
    """Figure 4c: ``num_groups`` decoders, each feeding K chains."""

    def __init__(
        self,
        k: int,
        num_chains: int,
        chain_length: int,
        codebook: Optional[Codebook] = None,
        p: int = 1,
    ):
        if num_chains % k:
            raise ValueError("num_chains must be a multiple of K (one "
                             "decoder per K chains)")
        self.k = k
        self.num_chains = num_chains
        self.chain_length = chain_length
        self.num_groups = num_chains // k
        self.codebook = codebook or Codebook.default()
        self.p = p

    def compress(self, test_set: TestSet) -> List:
        """Partition columns into groups and 9C-encode each group's stream.

        Pattern bit ``row * m + c`` belongs to chain ``c``; group g owns
        chains [g*K, (g+1)*K).  Each group's data, in shift order, is the
        per-pattern sequence of its K-bit slices.
        """
        if test_set.num_cells != self.num_chains * self.chain_length:
            raise ValueError(
                "test set width must equal num_chains * chain_length"
            )
        matrix = test_set.to_matrix()
        encoder = NineCEncoder(self.k, self.codebook)
        encodings = []
        for group in range(self.num_groups):
            columns = []
            for row in range(self.chain_length):
                start = row * self.num_chains + group * self.k
                columns.append(matrix[:, start : start + self.k])
            # patterns-major order: pattern 0's slices, pattern 1's, ...
            group_stream = np.concatenate(
                [np.concatenate([block[p] for block in columns])
                 for p in range(matrix.shape[0])]
            )
            encodings.append(encoder.encode(TernaryVector(group_stream)))
        return encodings

    def run(self, test_set: TestSet, x_fill: int = 0) -> ParallelTrace:
        """Compress + decompress a test set through all groups."""
        encodings = self.compress(test_set)
        traces: List[MultiScanTrace] = []
        for encoding in encodings:
            # True per-group geometry: K chains of the real chain length.
            # The group stream is patterns-major, so each K*chain_length
            # emitted bits complete one pattern and the trace captures
            # num_patterns patterns (cycle counts are geometry-independent).
            decoder = MultiScanDecompressor(
                self.k, num_chains=self.k,
                chain_length=self.chain_length,
                codebook=self.codebook, p=self.p,
            )
            traces.append(decoder.run_encoding(encoding, x_fill=x_fill))
        reconstructed = self._reassemble(traces, test_set)
        return ParallelTrace(traces, reconstructed, num_pins=self.num_groups)

    def _reassemble(self, traces: List[MultiScanTrace],
                    original: TestSet) -> TestSet:
        """Merge the groups' outputs back into full-width patterns."""
        num_patterns = original.num_patterns
        width = original.num_cells
        out = np.zeros((num_patterns, width), dtype=np.uint8)
        bits_per_group_pattern = self.k * self.chain_length
        for group, trace in enumerate(traces):
            data = trace.output.data
            for pattern in range(num_patterns):
                offset = pattern * bits_per_group_pattern
                for row in range(self.chain_length):
                    start = row * self.num_chains + group * self.k
                    slice_offset = offset + row * self.k
                    out[pattern, start : start + self.k] = data[
                        slice_offset : slice_offset + self.k
                    ]
        return TestSet.from_matrix(out, name=original.name)
