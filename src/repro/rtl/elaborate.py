"""Elaboration: structural-Verilog AST → gate-level netlist.

Takes the :class:`repro.rtl.parser.Design` produced by the front end,
flattens the module hierarchy, resolves every connection to a flat net
name, recognises sequential cells, and hands back both a
:class:`repro.lint.netlist.RawNetlist` (so imports with structural
defects can still be linted with NL001–NL008) and, when the design is
well formed, a validated :class:`repro.circuits.netlist.Netlist`.

Conventions:

* **Sequential cells.**  An instance of a module named ``dff`` with no
  user definition in the file is a D flip-flop: pins ``q`` (output),
  ``d`` (data), and an optional ``clk``.  ``sdff`` additionally takes
  ``si``/``se`` scan pins and is recorded as a :class:`ScanCell`.  Its
  functional behaviour is the plain flop (full-scan semantics: the scan
  path is test infrastructure, not function).  A user module *named*
  ``dff`` overrides the cell meaning.
* **Hierarchy flattening.**  Instance nets get ``inst.net`` global
  names, matching the hierarchical names the ``.bench`` reader/writer
  already allows.
* **Implicit nets.**  An undeclared identifier used in a connection
  becomes an implicit scalar wire (Verilog-2001 behaviour) and is
  recorded in :attr:`Elaboration.implicit_nets` — the NL lint then
  flags it if it is genuinely undriven.
* **Clocks.**  Single-clock synchronous designs are assumed.  Top-level
  inputs consumed *only* by ``clk`` pins (or by ``si``/``se`` scan
  pins) are recorded in :attr:`Elaboration.clocks` and removed from the
  functional primary inputs — :class:`Netlist` models DFFs without an
  explicit clock net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuits.netlist import Gate, GateType, Netlist
from ..lint.netlist import RawGate, RawNetlist
from .parser import Design, ModuleDecl, SourceLoc

#: Verilog primitive keyword -> GateType.
GATE_TYPE_OF_PRIMITIVE = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

#: Pin sets of the recognised sequential cells.
_DFF_PINS = {"q": "out", "d": "in", "clk": "clock"}
_SDFF_PINS = {"q": "out", "d": "in", "clk": "clock",
              "si": "scan", "se": "scan"}


class ElaborationError(ValueError):
    """A semantic error found while flattening the design."""

    def __init__(self, message: str, loc: Optional[SourceLoc] = None):
        if loc is not None:
            message = f"line {loc.line}: {message}"
        super().__init__(message)
        self.loc = loc


@dataclass(frozen=True)
class ScanCell:
    """One ``sdff`` instance and its scan wiring (flattened net names)."""

    flop: str
    scan_in: Optional[str]
    scan_enable: Optional[str]


@dataclass
class Elaboration:
    """Result of flattening: raw netlist plus import diagnostics."""

    top: str
    raw: RawNetlist
    clocks: List[str] = field(default_factory=list)
    scan_cells: List[ScanCell] = field(default_factory=list)
    implicit_nets: List[str] = field(default_factory=list)
    modules_flattened: int = 0
    instances_flattened: int = 0

    def netlist(self) -> Netlist:
        """Build the validated netlist (raises on structural defects)."""
        return Netlist(
            self.raw.name,
            self.raw.inputs,
            self.raw.outputs,
            [Gate(g.name, g.gate_type, g.fanins) for g in self.raw.gates],
        )

    def stats(self) -> Dict[str, int]:
        return {
            "inputs": len(self.raw.inputs),
            "outputs": len(self.raw.outputs),
            "gates": sum(
                1 for g in self.raw.gates
                if g.gate_type is not GateType.DFF
            ),
            "flip_flops": sum(
                1 for g in self.raw.gates
                if g.gate_type is GateType.DFF
            ),
            "scan_cells": len(self.scan_cells),
            "modules_flattened": self.modules_flattened,
            "instances_flattened": self.instances_flattened,
            "implicit_nets": len(self.implicit_nets),
        }


class _Flattener:
    def __init__(self, design: Design):
        self.design = design
        self.modules = design.by_name
        self.raw_gates: List[RawGate] = []
        self.scan_cells: List[ScanCell] = []
        self.implicit: List[str] = []
        self.declared: Set[str] = set()
        self.clock_reads: Set[str] = set()
        self.scan_reads: Set[str] = set()
        self.functional_reads: Set[str] = set()
        self.instances = 0
        self.modules_seen: Set[str] = set()

    # -- net bookkeeping ----------------------------------------------
    def _touch(self, net: str, declared_env: Set[str]) -> None:
        if net not in declared_env and net not in self.declared:
            self.declared.add(net)
            self.implicit.append(net)

    # -- module walk ---------------------------------------------------
    def flatten(self, top: ModuleDecl) -> Tuple[List[str], List[str]]:
        self._check_scalar_ports(top)
        inputs = [p.name for p in top.ports if p.direction == "input"]
        outputs = [p.name for p in top.ports if p.direction == "output"]
        env = {p.name: p.name for p in top.ports}
        self.declared.update(env.values())
        self._flatten_module(top, prefix="", env=env, path=(top.name,))
        return inputs, outputs

    def _check_scalar_ports(self, module: ModuleDecl) -> None:
        for port in module.ports:
            if port.width != 1:
                raise ElaborationError(
                    f"vector port {port.name}[{port.width - 1}:0] of "
                    f"module {module.name} cannot be elaborated "
                    "(scalar structural subset)", port.loc,
                )

    def _flatten_module(
        self,
        module: ModuleDecl,
        prefix: str,
        env: Dict[str, str],
        path: Tuple[str, ...],
    ) -> None:
        self.modules_seen.add(module.name)

        declared_local: Set[str] = set(env)
        for net in module.nets:
            if net.width != 1:
                raise ElaborationError(
                    f"vector wire {net.name}[{net.width - 1}:0] cannot "
                    "be elaborated (scalar structural subset)", net.loc,
                )
            if net.name not in env:
                env[net.name] = prefix + net.name
            declared_local.add(net.name)
            self.declared.add(env[net.name])

        def resolve(local: str, loc: SourceLoc) -> str:
            if local in env:
                return env[local]
            if local in self.modules:
                raise ElaborationError(
                    f"module name {local} used as a net", loc,
                )
            # Verilog-2001 implicit scalar net.
            flat = prefix + local
            env[local] = flat
            self._touch(flat, declared_local)
            return flat

        for assign in module.assigns:
            target = resolve(assign.target, assign.loc)
            source = resolve(assign.source, assign.loc)
            self.functional_reads.add(source)
            self.raw_gates.append(RawGate(target, GateType.BUF, (source,)))

        for gate in module.gates:
            output = resolve(gate.output, gate.loc)
            fanins = tuple(resolve(i, gate.loc) for i in gate.inputs)
            self.functional_reads.update(fanins)
            self.raw_gates.append(
                RawGate(output, GATE_TYPE_OF_PRIMITIVE[gate.primitive],
                        fanins)
            )

        for inst in module.instances:
            self.instances += 1
            if inst.module in self.modules:
                self._flatten_user_instance(inst, prefix, resolve, path)
            elif inst.module in ("dff", "sdff"):
                self._flatten_cell(inst, resolve)
            else:
                raise ElaborationError(
                    f"unknown module {inst.module!r} instantiated as "
                    f"{inst.instance} (not defined in this file, not a "
                    "dff/sdff cell)", inst.loc,
                )

    def _flatten_user_instance(self, inst, prefix, resolve, path) -> None:
        child = self.modules[inst.module]
        if child.name in path:
            cycle = " -> ".join(path + (child.name,))
            raise ElaborationError(
                f"recursive instantiation: {cycle}", inst.loc,
            )
        self._check_scalar_ports(child)
        bindings: Dict[str, str] = {}
        if inst.by_name:
            seen: Set[str] = set()
            for conn in inst.connections:
                port_name = conn.port
                if port_name in seen:
                    raise ElaborationError(
                        f"port {port_name} connected twice on instance "
                        f"{inst.instance}", conn.loc,
                    )
                seen.add(str(port_name))
                if child.port(str(port_name)) is None:
                    raise ElaborationError(
                        f"module {child.name} has no port {port_name} "
                        f"(instance {inst.instance})", conn.loc,
                    )
                if conn.net is not None:
                    bindings[str(port_name)] = resolve(conn.net, conn.loc)
        else:
            if len(inst.connections) > len(child.ports):
                raise ElaborationError(
                    f"instance {inst.instance} connects "
                    f"{len(inst.connections)} ports but module "
                    f"{child.name} has {len(child.ports)}", inst.loc,
                )
            for port, conn in zip(child.ports, inst.connections):
                if conn.net is not None:
                    bindings[port.name] = resolve(conn.net, conn.loc)

        child_prefix = f"{prefix}{inst.instance}."
        child_env: Dict[str, str] = {}
        for port in child.ports:
            if port.name in bindings:
                child_env[port.name] = bindings[port.name]
            else:
                # Unconnected port: a fresh dangling net inside the
                # instance scope; NL lint will flag it if it matters.
                dangling = child_prefix + port.name
                child_env[port.name] = dangling
                self._touch(dangling, set())
        # No blanket read-marking of the bound nets here: recursing into
        # the child records each read against its resolved flat name, so
        # a clock threaded through hierarchy ports stays inferrable.
        self._flatten_module(child, child_prefix, child_env,
                             path + (child.name,))

    def _flatten_cell(self, inst, resolve) -> None:
        pins = _DFF_PINS if inst.module == "dff" else _SDFF_PINS
        bound: Dict[str, str] = {}
        if inst.by_name:
            for conn in inst.connections:
                port_name = str(conn.port)
                if port_name not in pins:
                    raise ElaborationError(
                        f"{inst.module} cell has no pin {port_name} "
                        f"(instance {inst.instance})", conn.loc,
                    )
                if port_name in bound:
                    raise ElaborationError(
                        f"pin {port_name} connected twice on instance "
                        f"{inst.instance}", conn.loc,
                    )
                if conn.net is not None:
                    bound[port_name] = resolve(conn.net, conn.loc)
        else:
            order = ("q", "d", "clk") if inst.module == "dff" \
                else ("q", "d", "clk", "si", "se")
            if len(inst.connections) > len(order):
                raise ElaborationError(
                    f"{inst.module} cell takes at most {len(order)} "
                    f"positional pins ({', '.join(order)})", inst.loc,
                )
            for pin, conn in zip(order, inst.connections):
                if conn.net is not None:
                    bound[pin] = resolve(conn.net, conn.loc)
        if "q" not in bound or "d" not in bound:
            raise ElaborationError(
                f"{inst.module} instance {inst.instance} needs both "
                "q and d connected", inst.loc,
            )
        if "clk" in bound:
            self.clock_reads.add(bound["clk"])
        for pin in ("si", "se"):
            if pin in bound:
                self.scan_reads.add(bound[pin])
        self.functional_reads.add(bound["d"])
        self.raw_gates.append(
            RawGate(bound["q"], GateType.DFF, (bound["d"],))
        )
        if inst.module == "sdff":
            self.scan_cells.append(ScanCell(
                flop=bound["q"],
                scan_in=bound.get("si"),
                scan_enable=bound.get("se"),
            ))


def _pick_top(design: Design, top: Optional[str]) -> ModuleDecl:
    modules = design.by_name
    if top is not None:
        if top not in modules:
            raise ElaborationError(
                f"top module {top!r} is not defined "
                f"(available: {', '.join(sorted(modules))})"
            )
        return modules[top]
    instantiated = {
        inst.module
        for module in design.modules
        for inst in module.instances
    }
    roots = [m for m in design.modules if m.name not in instantiated]
    if len(roots) == 1:
        return roots[0]
    if not roots:
        raise ElaborationError(
            "no top module: every module is instantiated by another "
            "(instantiation cycle?); pass top= explicitly"
        )
    names = ", ".join(m.name for m in roots)
    raise ElaborationError(
        f"ambiguous top module (candidates: {names}); pass top= "
        "explicitly"
    )


def elaborate(design: Design, top: Optional[str] = None) -> Elaboration:
    """Flatten ``design`` into a :class:`RawNetlist` under module ``top``.

    ``top`` defaults to the unique module not instantiated by any other.
    Structural defects (undriven nets, double drivers, loops) survive
    into the raw netlist so the NL lint can report them;
    :meth:`Elaboration.netlist` is where they become hard errors.
    """
    module = _pick_top(design, top)
    flattener = _Flattener(design)
    inputs, outputs = flattener.flatten(module)

    # Drop top-level inputs that are consumed only as clocks (or only
    # by scan pins): the Netlist model has no explicit clock net.
    clocks: List[str] = []
    functional_inputs: List[str] = []
    infra_reads = flattener.clock_reads | flattener.scan_reads
    for pi in inputs:
        if pi in infra_reads and pi not in flattener.functional_reads \
                and pi not in outputs:
            clocks.append(pi)
        else:
            functional_inputs.append(pi)

    raw = RawNetlist(
        name=module.name,
        inputs=functional_inputs,
        outputs=list(outputs),
        gates=flattener.raw_gates,
    )
    return Elaboration(
        top=module.name,
        raw=raw,
        clocks=clocks,
        scan_cells=flattener.scan_cells,
        implicit_nets=flattener.implicit,
        modules_flattened=len(flattener.modules_seen),
        instances_flattened=flattener.instances,
    )


def import_verilog(
    text: str,
    top: Optional[str] = None,
) -> Elaboration:
    """One-call front end: parse + elaborate structural Verilog text."""
    from .parser import parse_verilog

    return elaborate(parse_verilog(text), top=top)
