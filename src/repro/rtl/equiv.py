"""Three-way decoder equivalence: behavioral RTL ≡ FSM spec ≡ gates.

The repo carries three executable models of the 9C decoder:

1. the **specification** — :class:`repro.decompressor.fsm.NineCDecoderFSM`
   and its :meth:`transition_table`, straight from paper Figure 2;
2. the **behavioral RTL** —
   :func:`repro.decompressor.verilog.generate_decoder_verilog`, executed
   by the bundled interpreter;
3. the **gate-level netlist** —
   :func:`repro.decompressor.gates.decoder_netlist`, the QM-minimized
   structure (or a structural-Verilog import of it).

This module proves all three agree, with counterexample traces when
they do not.  Four legs, surfaced as lint rules (see ``docs/rtl.md``):

======  ==============================================================
EQ001   behavioral RTL ≡ handshake oracle built from the transition
        table: exhaustive product-machine BFS over every reachable
        (RTL state, oracle state) pair under every admissible input,
        for **every** K, plus seeded randomized stream cosimulation
        against the software decoder.
EQ002   gate netlist ≡ FSM truth tables, word level: every scan-input
        assignment (exhaustive up to ``exhaustive_limit`` words, seeded
        random above) checked against the minterm sets of
        :func:`repro.decompressor.gates.fsm_logic`, the counter
        recurrence and the shifter wiring.  Needs the conventional net
        names; skipped (not failed) for imports that renamed them.
EQ003   FSM *recovered from gates alone* ≡ transition table: a
        bisimulation between :func:`repro.rtl.passes.detect_fsms`
        output and the specification, with no reliance on net names —
        the leg that still bites on an imported, renamed netlist.
EQ004   structural round trip: emit the netlist as Verilog, re-import
        it, require bit-identical structure and an NL-lint-clean
        result.
======  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulator import simulate_patterns
from ..core.codewords import Codebook
from ..core.bitvec import TernaryVector
from ..core.decoder import NineCDecoder
from ..core.encoder import NineCEncoder
from ..decompressor.fsm import NineCDecoderFSM
from ..decompressor.gates import decoder_netlist, fsm_logic
from ..decompressor.rtlsim import RTLSimulator, parse_module, run_decoder_rtl
from ..decompressor.verilog import (
    SEL_DATA,
    SEL_ONE,
    SEL_ZERO,
    generate_decoder_verilog,
)
from ..lint.findings import LintFinding, Severity
from ..lint.netlist import lint_netlist
from .passes import RecoveredFSM, detect_fsms

#: Half-kind character -> Sel encoding (mirrors the RTL localparams).
_SEL_OF_KIND = {"0": SEL_ZERO, "1": SEL_ONE, "U": SEL_DATA}

#: Rules the round-trip leg waives (the decoder shifter is flop-to-flop
#: by design; see DECODER_NETLIST_WAIVERS in the lint runner).
_ROUNDTRIP_WAIVERS = ("NL006",)


# ----------------------------------------------------------------------
# result model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceStep:
    """One cycle of a counterexample: inputs, expected vs observed."""

    cycle: int
    inputs: Dict[str, int]
    expected: Dict[str, int]
    actual: Dict[str, int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "inputs": dict(self.inputs),
            "expected": dict(self.expected),
            "actual": dict(self.actual),
        }


@dataclass(frozen=True)
class Counterexample:
    """A concrete disagreement between two decoder models."""

    leg: str
    k: int
    seed: int
    message: str
    trace: Tuple[TraceStep, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "leg": self.leg,
            "k": self.k,
            "seed": self.seed,
            "message": self.message,
            "trace": [step.to_dict() for step in self.trace],
        }

    def render(self) -> str:
        lines = [f"{self.leg} counterexample (K={self.k}): {self.message}"]
        for step in self.trace:
            inputs = " ".join(f"{k}={v}" for k, v in step.inputs.items())
            diff = " ".join(
                f"{name}: want {step.expected[name]} got {step.actual[name]}"
                for name in step.expected
                if step.expected[name] != step.actual.get(name)
            )
            lines.append(
                f"  cycle {step.cycle}: {inputs}"
                + (f"  [{diff}]" if diff else "")
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class LegResult:
    """Outcome of one equivalence leg."""

    leg: str
    status: str  # "pass" | "fail" | "skipped"
    detail: str
    checked: int = 0
    counterexample: Optional[Counterexample] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "leg": self.leg,
            "status": self.status,
            "detail": self.detail,
            "checked": self.checked,
        }
        if self.counterexample is not None:
            payload["counterexample"] = self.counterexample.to_dict()
        return payload


@dataclass
class EquivReport:
    """All legs for one (K, codebook) pair."""

    k: int
    codebook_label: str
    legs: List[LegResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(leg.status != "fail" for leg in self.legs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "codebook": self.codebook_label,
            "ok": self.ok,
            "legs": [leg.to_dict() for leg in self.legs],
        }

    def render(self) -> str:
        lines = [
            f"equivalence K={self.k} codebook={self.codebook_label}: "
            + ("OK" if self.ok else "MISMATCH")
        ]
        for leg in self.legs:
            lines.append(
                f"  {leg.leg} {leg.status:7s} "
                f"({leg.checked} checks) {leg.detail}"
            )
            if leg.counterexample is not None:
                lines.append(
                    "    " + leg.counterexample.render().replace(
                        "\n", "\n    "
                    )
                )
        return "\n".join(lines)


def equiv_findings(report: EquivReport, artifact: str) -> List[LintFinding]:
    """Failed legs as lint findings (pass/skip produce none)."""
    findings: List[LintFinding] = []
    for leg in report.legs:
        if leg.status != "fail":
            continue
        message = leg.detail
        if leg.counterexample is not None:
            message += f" — {leg.counterexample.message}"
        findings.append(LintFinding(
            leg.leg, Severity.ERROR, artifact, f"k{report.k}", message,
        ))
    return findings


# ----------------------------------------------------------------------
# EQ001: behavioral RTL vs handshake oracle (product-machine BFS)
# ----------------------------------------------------------------------

class OracleDecoder:
    """Reference implementation of the decoder handshake contract.

    Built *only* from :meth:`NineCDecoderFSM.transition_table` and the
    documented contract (ready/scan_en/scan_out/ack), deliberately not
    from the RTL text, so a generator bug cannot hide in both models.
    """

    def __init__(self, fsm: NineCDecoderFSM, k: int):
        self.half = k // 2
        self.idle = fsm.IDLE
        self.arcs: Dict[Tuple[str, int], Tuple[str, Optional[Tuple[int, int]]]] = {}
        for src, bit, dst, case in fsm.transition_table():
            sels = None
            if case is not None:
                left, right = case.halves
                sels = (_SEL_OF_KIND[left.value],
                        _SEL_OF_KIND[right.value])
            self.arcs[(src, bit)] = (dst, sels)
        self.reset()

    def reset(self) -> None:
        self.state = self.idle
        self.case_valid = 0
        self.sel_left = SEL_ZERO
        self.sel_right = SEL_ZERO
        self.count = 0
        self.half_sel = 0
        self.ack = 0

    # -- combinational view --------------------------------------------
    @property
    def sel(self) -> int:
        return self.sel_right if self.half_sel else self.sel_left

    @property
    def bit_is_data(self) -> bool:
        return self.sel == SEL_DATA

    def ready(self, dec_en: int) -> int:
        return int(bool(dec_en) and (not self.case_valid
                                     or self.bit_is_data))

    def _advance(self, ate_tick: int) -> bool:
        return bool(self.case_valid
                    and (not self.bit_is_data or ate_tick))

    def outputs(self, dec_en: int, ate_tick: int,
                data_in: int) -> Dict[str, int]:
        advance = self._advance(ate_tick)
        scan_out = (0 if self.sel == SEL_ZERO
                    else 1 if self.sel == SEL_ONE else data_in)
        return {
            "ready": self.ready(dec_en),
            "scan_en": int(advance),
            "scan_out": scan_out,
            "ack": self.ack,
        }

    # -- clocked view --------------------------------------------------
    def step(self, dec_en: int, ate_tick: int, data_in: int) -> None:
        advance = self._advance(ate_tick)
        done = self.count == self.half - 1
        block_done = advance and done and self.half_sel
        self.ack = int(block_done)
        if not self.case_valid and dec_en and ate_tick:
            arc = self.arcs.get((self.state, data_in))
            if arc is not None:
                dst, sels = arc
                self.state = dst
                if sels is not None:
                    self.sel_left, self.sel_right = sels
                    self.case_valid = 1
        if advance:
            self.count = 0 if done else self.count + 1
            self.half_sel = (1 - self.half_sel) if done else self.half_sel
            if block_done:
                self.case_valid = 0

    def snapshot(self) -> Tuple:
        return (self.state, self.case_valid, self.sel_left,
                self.sel_right, self.count, self.half_sel, self.ack)

    def restore(self, snap: Tuple) -> None:
        (self.state, self.case_valid, self.sel_left, self.sel_right,
         self.count, self.half_sel, self.ack) = snap


def _rtl_vs_oracle(
    k: int,
    codebook: Codebook,
    rtl_text: Optional[str],
    seed: int,
    stream_blocks: int,
) -> LegResult:
    """EQ001: exhaustive product BFS, then randomized stream cosim."""
    fsm = NineCDecoderFSM(codebook)
    rtl = rtl_text if rtl_text is not None \
        else generate_decoder_verilog(k, codebook)
    sim = RTLSimulator(parse_module(rtl))
    sim.set_inputs(rst_n=0, dec_en=0, ate_tick=0, data_in=0)
    sim.step()
    sim.set_inputs(rst_n=1)
    oracle = OracleDecoder(fsm, k)

    rtl_reset = tuple(sorted(sim.regs.items()))
    oracle_reset = oracle.snapshot()
    start = (rtl_reset, oracle_reset)
    # parent[(pair)] = (previous pair, input triple) for replay
    parent: Dict[Tuple, Optional[Tuple[Tuple, Tuple[int, int, int]]]] = {
        start: None
    }
    frontier = [start]
    checked = 0
    observed = ("ready", "scan_en", "scan_out", "ack")

    def replay(pair: Tuple,
               final_inputs: Tuple[int, int, int],
               expected: Dict[str, int],
               actual: Dict[str, int],
               message: str) -> Counterexample:
        path: List[Tuple[int, int, int]] = [final_inputs]
        cursor = pair
        while parent[cursor] is not None:
            previous, inputs = parent[cursor]  # type: ignore[misc]
            path.append(inputs)
            cursor = previous
        path.reverse()
        steps = []
        for cycle, (dec_en, ate_tick, data_in) in enumerate(path):
            is_last = cycle == len(path) - 1
            steps.append(TraceStep(
                cycle,
                {"dec_en": dec_en, "ate_tick": ate_tick,
                 "data_in": data_in},
                expected if is_last else {},
                actual if is_last else {},
            ))
        return Counterexample("EQ001", k, seed, message, tuple(steps))

    while frontier:
        pair = frontier.pop()
        rtl_state, oracle_state = pair
        oracle.restore(oracle_state)
        stimuli = [(1, 0, 0)]
        if oracle.ready(1):
            stimuli += [(1, 1, 0), (1, 1, 1)]
        for stimulus in stimuli:
            dec_en, ate_tick, data_in = stimulus
            sim.regs = dict(rtl_state)
            oracle.restore(oracle_state)
            sim.set_inputs(dec_en=dec_en, ate_tick=ate_tick,
                           data_in=data_in)
            expected = oracle.outputs(dec_en, ate_tick, data_in)
            actual = {name: sim.read(name) for name in observed}
            checked += 1
            comparable = dict(expected)
            if not expected["scan_en"]:
                # scan_out is only sampled under scan_en; its idle
                # value is unconstrained by the contract.
                comparable.pop("scan_out")
            for name, want in comparable.items():
                if actual[name] != want:
                    return LegResult(
                        "EQ001", "fail",
                        "behavioral RTL diverges from the transition-"
                        "table oracle",
                        checked,
                        replay(pair, stimulus, expected, actual,
                               f"output {name}: oracle {want}, "
                               f"RTL {actual[name]}"),
                    )
            sim.step()
            oracle.step(dec_en, ate_tick, data_in)
            successor = (tuple(sorted(sim.regs.items())),
                         oracle.snapshot())
            if successor not in parent:
                parent[successor] = (pair, stimulus)
                frontier.append(successor)

    # Randomized stream cosimulation: RTL vs the software decoder on
    # encoder-produced streams (exercises full blocks end to end).
    rng = np.random.default_rng(seed)
    streams = 0
    for _ in range(stream_blocks):
        data = TernaryVector(
            rng.integers(0, 3, 6 * k).astype(np.uint8)
        )
        encoding = NineCEncoder(k, codebook).encode(data)
        bits = [0 if b == 2 else int(b) for b in encoding.stream]
        software = NineCDecoder(k, codebook).decode_stream(
            TernaryVector(bits)
        )
        hardware = run_decoder_rtl(rtl, bits)
        streams += 1
        if hardware != [int(b) for b in software]:
            return LegResult(
                "EQ001", "fail",
                "RTL stream decode differs from the software decoder",
                checked + streams,
                Counterexample(
                    "EQ001", k, seed,
                    f"stream of {len(bits)} bits decodes to "
                    f"{len(hardware)} bits != software "
                    f"{len(software)} bits (first divergence at "
                    f"{next((i for i, (a, b) in enumerate(zip(hardware, [int(x) for x in software])) if a != b), min(len(hardware), len(software)))})",
                ),
            )
    return LegResult(
        "EQ001", "pass",
        f"product BFS over {len(parent)} reachable state pairs + "
        f"{streams} random streams",
        checked + streams,
    )


# ----------------------------------------------------------------------
# EQ002: gate netlist vs FSM truth tables (word level, vectorized)
# ----------------------------------------------------------------------

def _netlist_vs_tables(
    k: int,
    codebook: Codebook,
    netlist: Netlist,
    seed: int,
    vectors: int,
    exhaustive_limit: int,
) -> LegResult:
    """EQ002: check every functional net against its defining equation."""
    logic = fsm_logic(NineCDecoderFSM(codebook))
    half = k // 2
    count_width = max(1, (half - 1).bit_length()) if half > 1 else 1

    conventional = (
        ["data_in", "advance", "serial_in"]
        + [f"q{b}" for b in range(logic.state_bits)]
        + [f"c{b}" for b in range(count_width)]
        + [f"sh{b}" for b in range(half)]
    )
    if sorted(conventional) != sorted(netlist.scan_inputs):
        return LegResult(
            "EQ002", "skipped",
            "netlist does not use the conventional decoder net names "
            "(imported design?); EQ003 covers it name-independently",
        )

    width = netlist.scan_length
    exhaustive = (1 << width) <= exhaustive_limit
    if exhaustive:
        rows = 1 << width
        codes = np.arange(rows, dtype=np.int64)
        patterns = np.zeros((rows, width), dtype=np.uint8)
        columns = {net: i for i, net in enumerate(netlist.scan_inputs)}
        for net, column in columns.items():
            bit = netlist.scan_inputs.index(net)
            patterns[:, column] = (codes >> bit) & 1
    else:
        rng = np.random.default_rng(seed)
        rows = vectors
        patterns = rng.integers(0, 2, size=(rows, width), dtype=np.uint8)
        columns = {net: i for i, net in enumerate(netlist.scan_inputs)}
    values = simulate_patterns(netlist, patterns)

    def col(net: str) -> np.ndarray:
        return patterns[:, columns[net]].astype(np.int64)

    state_code = sum(col(f"q{b}") << b for b in range(logic.state_bits))
    word = (state_code << 1) | col("data_in")
    dont_cares = np.isin(word, np.asarray(logic.dont_cares,
                                          dtype=np.int64))
    specified = ~dont_cares

    failures: List[Tuple[str, np.ndarray, np.ndarray, np.ndarray]] = []

    def check(net: str, expected: np.ndarray,
              mask: Optional[np.ndarray] = None) -> None:
        actual = values[net].astype(np.int64)
        wrong = actual != expected
        if mask is not None:
            wrong &= mask
        if wrong.any():
            failures.append((net, wrong, expected, actual))

    # FSM next-state and Sel covers (specified words only; don't-care
    # words are free by construction).
    for bit in range(logic.state_bits):
        on_set = np.isin(word, np.asarray(logic.next_state[bit],
                                          dtype=np.int64))
        d_net = netlist.gates[f"q{bit}"].fanins[0]
        check(d_net, on_set.astype(np.int64), specified)
    for bit in (0, 1):
        on_set = np.isin(word, np.asarray(logic.sel[bit],
                                          dtype=np.int64))
        check(f"sel{bit}", on_set.astype(np.int64), specified)

    # Counter recurrence and done detector.
    count = sum(col(f"c{b}") << b for b in range(count_width))
    advance = col("advance")
    done_expected = (count == half - 1).astype(np.int64)
    check("done", done_expected)
    wrapped = (count + 1) & ((1 << count_width) - 1)
    next_count = np.where(
        advance == 0, count, np.where(count == half - 1, 0, wrapped)
    )
    for bit in range(count_width):
        d_net = netlist.gates[f"c{bit}"].fanins[0]
        check(d_net, (next_count >> bit) & 1)

    # Shifter wiring.
    previous = col("serial_in")
    for bit in range(half):
        d_net = netlist.gates[f"sh{bit}"].fanins[0]
        check(d_net, previous)
        previous = col(f"sh{bit}")

    mode = "exhaustive" if exhaustive else f"{rows} seeded random"
    if failures:
        net, wrong, expected, actual = failures[0]
        row = int(np.argmax(wrong))
        assignment = {
            name: int(patterns[row, columns[name]])
            for name in netlist.scan_inputs
        }
        return LegResult(
            "EQ002", "fail",
            f"{len(failures)} net(s) diverge from the FSM truth "
            f"tables ({mode} vectors)",
            int(rows),
            Counterexample(
                "EQ002", k, seed,
                f"net {net}: expected {int(expected[row])}, got "
                f"{int(actual[row])} ({int(wrong.sum())} of {rows} "
                "vectors wrong)",
                (TraceStep(0, assignment,
                           {net: int(expected[row])},
                           {net: int(actual[row])}),),
            ),
        )
    return LegResult(
        "EQ002", "pass", f"{mode} word-level check over {width} scan "
        "inputs", int(rows),
    )


# ----------------------------------------------------------------------
# EQ003: FSM recovered from gates vs the transition table
# ----------------------------------------------------------------------

def _bisimulate(
    recovered: RecoveredFSM,
    fsm: NineCDecoderFSM,
) -> Tuple[bool, str, int]:
    """(ok, reason, transitions checked) for one candidate group."""
    if len(recovered.inputs) != 1:
        return False, (
            f"group {recovered.registers} reads "
            f"{len(recovered.inputs)} external inputs (want 1)"
        ), 0

    arcs: Dict[Tuple[str, int], Tuple[str, Optional[int]]] = {}
    for src, bit, dst, case in fsm.transition_table():
        sel = None
        if case is not None:
            sel = _SEL_OF_KIND[case.halves[0].value]
        arcs[(src, bit)] = (dst, sel)

    code_of: Dict[str, int] = {fsm.IDLE: 0}
    frontier = [fsm.IDLE]
    checked = 0
    sel_expectations: Dict[int, Dict[Tuple[int, int], int]] = {0: {}, 1: {}}
    visited: Set[Tuple[str, int]] = set()
    while frontier:
        state = frontier.pop()
        code = code_of[state]
        for bit in (0, 1):
            if (state, bit) not in arcs or (state, bit) in visited:
                continue
            visited.add((state, bit))
            dst, sel = arcs[(state, bit)]
            successor = recovered.transitions[(code, bit)]
            checked += 1
            if dst in code_of:
                if code_of[dst] != successor:
                    return False, (
                        f"transition {state} --{bit}--> {dst} lands on "
                        f"code {successor}, but {dst} was already "
                        f"mapped to code {code_of[dst]}"
                    ), checked
            else:
                code_of[dst] = successor
                frontier.append(dst)
            expected_sel = sel if sel is not None else 0
            for sel_bit in (0, 1):
                sel_expectations[sel_bit][(code, bit)] = \
                    (expected_sel >> sel_bit) & 1

    # The Sel output functions must exist among the recovered outputs
    # (by value, not by name).
    for sel_bit in (0, 1):
        wanted = sel_expectations[sel_bit]
        matched = any(
            all(table.get(key) == value for key, value in wanted.items())
            for table in recovered.outputs.values()
        )
        if not matched:
            return False, (
                f"no recovered output realizes the Sel bit {sel_bit} "
                "function over the specified transitions"
            ), checked
    return True, (
        f"bisimulation over {len(code_of)} states / {checked} "
        f"transitions (registers {', '.join(recovered.registers)})"
    ), checked


def _recovered_vs_table(
    k: int,
    codebook: Codebook,
    netlist: Netlist,
) -> LegResult:
    """EQ003: some gate-recovered FSM must bisimulate the spec."""
    fsm = NineCDecoderFSM(codebook)
    recovered = detect_fsms(netlist)
    if not recovered:
        return LegResult(
            "EQ003", "fail",
            "no FSM recovered from the netlist (no flop dependency "
            "SCC within analysis bounds)",
        )
    reasons = []
    for candidate in recovered:
        ok, reason, checked = _bisimulate(candidate, fsm)
        if ok:
            return LegResult("EQ003", "pass", reason, checked)
        reasons.append(reason)
    return LegResult(
        "EQ003", "fail",
        "no recovered FSM bisimulates the transition table: "
        + "; ".join(reasons),
        0,
        Counterexample("EQ003", k, 0, reasons[0]),
    )


# ----------------------------------------------------------------------
# EQ004: structural round trip through emit -> parse -> elaborate
# ----------------------------------------------------------------------

def _roundtrip(k: int, netlist: Netlist) -> LegResult:
    """EQ004: Verilog emission must re-import bit-identically + lint clean."""
    from .elaborate import import_verilog
    from .emit import netlist_to_verilog

    try:
        text = netlist_to_verilog(netlist)
        elaboration = import_verilog(text)
        reimported = elaboration.netlist()
    except ValueError as exc:
        return LegResult(
            "EQ004", "fail",
            f"round trip raised: {exc}", 0,
            Counterexample("EQ004", k, 0, str(exc)),
        )
    if not netlist.structurally_equal(reimported):
        return LegResult(
            "EQ004", "fail",
            "re-imported netlist differs structurally from the "
            "original", 1,
            Counterexample(
                "EQ004", k, 0,
                f"original {netlist.stats()} vs reimported "
                f"{reimported.stats()}",
            ),
        )
    lint = [
        f for f in lint_netlist(reimported, waive=_ROUNDTRIP_WAIVERS)
        if f.severity is Severity.ERROR
    ]
    if lint:
        return LegResult(
            "EQ004", "fail",
            f"re-imported netlist has {len(lint)} lint error(s)", 1,
            Counterexample("EQ004", k, 0, lint[0].render()),
        )
    return LegResult(
        "EQ004", "pass",
        f"emit -> parse -> elaborate identity over "
        f"{len(netlist.gates)} nets", len(netlist.gates),
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def run_equiv(
    k: int,
    codebook: Optional[Codebook] = None,
    *,
    seed: int = 0,
    vectors: int = 10000,
    stream_blocks: int = 8,
    exhaustive_limit: int = 1 << 17,
    netlist: Optional[Netlist] = None,
    rtl_text: Optional[str] = None,
    codebook_label: str = "default",
) -> EquivReport:
    """Prove the three decoder models equivalent for one (K, codebook).

    ``netlist``/``rtl_text`` default to the generated artifacts; pass
    an imported netlist (from :mod:`repro.rtl.elaborate`) to verify an
    external design against the same specification.  Legs that need
    artifacts the caller did not provide still run on the generated
    ones, so the report always covers the full triangle.
    """
    if k < 2 or k % 2:
        raise ValueError("K must be an even integer >= 2")
    book = codebook or Codebook.default()
    gates = netlist if netlist is not None else decoder_netlist(k, book)
    report = EquivReport(k=k, codebook_label=codebook_label)
    report.legs.append(
        _rtl_vs_oracle(k, book, rtl_text, seed, stream_blocks)
    )
    report.legs.append(
        _netlist_vs_tables(k, book, gates, seed, vectors,
                           exhaustive_limit)
    )
    report.legs.append(_recovered_vs_table(k, book, gates))
    report.legs.append(_roundtrip(k, gates))
    return report
