"""Structural-Verilog front end and decoder equivalence harness.

``repro.rtl`` closes the loop between the three decoder models the repo
carries (behavioral RTL, FSM specification, gate-level netlist):

* :mod:`repro.rtl.parser` — tokenizer + recursive-descent parser for a
  structural-Verilog subset, producing a typed AST with source
  locations;
* :mod:`repro.rtl.elaborate` — hierarchy flattening into
  :class:`repro.circuits.netlist.Netlist` (and a lintable raw form);
* :mod:`repro.rtl.emit` — the inverse: any netlist out as flat
  structural Verilog;
* :mod:`repro.rtl.passes` — dataflow cones, combinational-loop and
  X-propagation analysis, FSM recovery from gates;
* :mod:`repro.rtl.equiv` — the EQ001–EQ004 three-way equivalence legs
  behind ``repro-9c lint --only equiv`` and ``repro-9c import-rtl``.

See ``docs/rtl.md``.
"""

from .elaborate import (
    Elaboration,
    ElaborationError,
    ScanCell,
    elaborate,
    import_verilog,
)
from .emit import netlist_to_verilog
from .equiv import (
    Counterexample,
    EquivReport,
    LegResult,
    OracleDecoder,
    TraceStep,
    equiv_findings,
    run_equiv,
)
from .parser import (
    Design,
    ModuleDecl,
    RTLParseError,
    SourceLoc,
    parse_verilog,
    tokenize,
)
from .passes import (
    RecoveredFSM,
    cone_inputs,
    cone_report,
    detect_fsms,
    fanin_cone,
    find_combinational_loops,
    netlist_loops,
    x_propagation,
)

__all__ = [
    "Design",
    "ModuleDecl",
    "RTLParseError",
    "SourceLoc",
    "parse_verilog",
    "tokenize",
    "Elaboration",
    "ElaborationError",
    "ScanCell",
    "elaborate",
    "import_verilog",
    "netlist_to_verilog",
    "RecoveredFSM",
    "cone_inputs",
    "cone_report",
    "detect_fsms",
    "fanin_cone",
    "find_combinational_loops",
    "netlist_loops",
    "x_propagation",
    "Counterexample",
    "EquivReport",
    "LegResult",
    "OracleDecoder",
    "TraceStep",
    "equiv_findings",
    "run_equiv",
]
