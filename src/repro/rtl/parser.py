"""Tokenizer + recursive-descent parser for structural Verilog.

This is the front half of the ``repro.rtl`` ingestion pipeline
(ROADMAP: "Real-RTL ingestion and equivalence, veripass-style").  It
accepts the *structural* subset of Verilog — the gate-level netlists a
synthesis tool or our own :func:`repro.rtl.emit.netlist_to_verilog`
produces — and builds a typed AST with source locations, which
:mod:`repro.rtl.elaborate` flattens into a
:class:`repro.circuits.netlist.Netlist`.

Accepted subset::

    module <name> ( <ports> );            // ANSI or non-ANSI headers
    input  [msb:lsb] a, b;                // scalar nets only (width 1)
    output y;
    wire   w1, w2;
    parameter  P = <const expr>;          // resolved at parse time
    localparam Q = <const expr>;          //   (reuses lint's evaluator)
    and  g1 (y, a, b);                    // gate primitives, optional
    not  (w1, a);                         //   instance name
    assign w2 = w1;                       // simple net aliasing
    dec  u0 (.clk(clk), .d(w2), .q(y));  // named-port instance
    dec  u1 (y, w2);                      // positional instance
    endmodule

Everything behavioral (``always``, ``reg``, ``initial``, ``case``,
expressions on the right of ``assign``) is **rejected with a targeted
error** — the behavioral decoder dialect has its own interpreter in
:mod:`repro.decompressor.rtlsim`; this module is for netlists.

Constant expressions (parameter values, ranges) are resolved with
:class:`repro.lint.rtl._ConstEvaluator`, so ``localparam HALF = K / 2;``
and ``[$clog2(M+1)-1:0]`` work exactly as in the emitted RTL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lint.rtl import _ConstEvaluator

#: Gate-primitive keywords mapped by the elaborator onto GateType.
GATE_PRIMITIVES = (
    "and", "nand", "or", "nor", "xor", "xnor", "not", "buf",
)

#: Behavioral / unsupported keywords we reject with a targeted message.
_UNSUPPORTED = frozenset({
    "always", "initial", "reg", "integer", "real", "time", "task",
    "function", "generate", "genvar", "specify", "primitive", "begin",
    "case", "casex", "casez", "if", "else", "for", "while", "repeat",
    "fork", "join", "defparam", "event", "force", "release", "tri",
    "supply0", "supply1",
})

_KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire",
    "parameter", "localparam", "assign",
}) | frozenset(GATE_PRIMITIVES) | _UNSUPPORTED


class RTLParseError(ValueError):
    """A syntax or subset violation, located in the source text."""

    def __init__(self, message: str, line: int, col: int = 0):
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.col = col
        self.reason = message


@dataclass(frozen=True)
class SourceLoc:
    """1-based position of an AST node in the source text."""

    line: int
    col: int


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "number" | "sized" | "symbol"
    value: str
    line: int
    col: int


@dataclass(frozen=True)
class PortDecl:
    """One port: direction, resolved width, declaration site."""

    name: str
    direction: str  # "input" | "output"
    width: int
    loc: SourceLoc


@dataclass(frozen=True)
class NetDecl:
    """One ``wire`` declaration."""

    name: str
    width: int
    loc: SourceLoc


@dataclass(frozen=True)
class ParamDecl:
    """A ``parameter``/``localparam`` with its resolved constant value."""

    name: str
    kind: str  # "parameter" | "localparam"
    text: str
    value: int
    loc: SourceLoc


@dataclass(frozen=True)
class GateInstance:
    """A gate-primitive instantiation: output first, then inputs."""

    primitive: str
    instance: Optional[str]
    output: str
    inputs: Tuple[str, ...]
    loc: SourceLoc


@dataclass(frozen=True)
class PortConnection:
    """One pin binding of a module instance (``port`` None = positional)."""

    port: Optional[str]
    net: Optional[str]  # None = explicitly unconnected `.p()`
    loc: SourceLoc


@dataclass(frozen=True)
class ModuleInstance:
    """Instantiation of a user module or a sequential cell."""

    module: str
    instance: str
    connections: Tuple[PortConnection, ...]
    by_name: bool
    loc: SourceLoc


@dataclass(frozen=True)
class Assign:
    """``assign lhs = rhs;`` where rhs is a plain net."""

    target: str
    source: str
    loc: SourceLoc


@dataclass
class ModuleDecl:
    """One parsed module: ports, nets, params, and ordered items."""

    name: str
    loc: SourceLoc
    ports: List[PortDecl] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    params: List[ParamDecl] = field(default_factory=list)
    gates: List[GateInstance] = field(default_factory=list)
    instances: List[ModuleInstance] = field(default_factory=list)
    assigns: List[Assign] = field(default_factory=list)

    @property
    def port_names(self) -> List[str]:
        return [p.name for p in self.ports]

    def port(self, name: str) -> Optional[PortDecl]:
        for p in self.ports:
            if p.name == name:
                return p
        return None


@dataclass(frozen=True)
class Design:
    """All modules of one source file, in declaration order."""

    modules: Tuple[ModuleDecl, ...]

    @property
    def by_name(self) -> Dict[str, ModuleDecl]:
        return {m.name: m for m in self.modules}


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"(?P<sized>\d+\s*'\s*[bdhoBDHO][0-9a-fA-F_xzXZ?]+)"
    r"|(?P<number>\d+)"
    r"|(?P<id>[A-Za-z_$][A-Za-z0-9_$]*)"
    r"|(?P<symbol>[()\[\]{},;.:=#*/%+\-])"
)
_SKIP_RE = re.compile(r"[ \t\r]+")


def tokenize(text: str) -> List[Token]:
    """Split source into located tokens; comments are skipped."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    length = len(text)
    while position < length:
        ch = text[position]
        if ch == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        skip = _SKIP_RE.match(text, position)
        if skip:
            position = skip.end()
            continue
        if text.startswith("//", position):
            end = text.find("\n", position)
            position = length if end < 0 else end
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end < 0:
                raise RTLParseError("unterminated /* comment", line,
                                    position - line_start + 1)
            line += text.count("\n", position, end)
            newline = text.rfind("\n", position, end)
            if newline >= 0:
                line_start = newline + 1
            position = end + 2
            continue
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise RTLParseError(
                f"cannot tokenize near {text[position:position + 12]!r}",
                line, position - line_start + 1,
            )
        kind = str(match.lastgroup)
        tokens.append(Token(kind, match.group(0), line,
                            position - line_start + 1))
        position = match.end()
    return tokens


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------
    def peek(self, ahead: int = 0) -> Optional[Token]:
        index = self.position + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def _eof_error(self) -> RTLParseError:
        last = self.tokens[-1] if self.tokens else None
        return RTLParseError(
            "unexpected end of input",
            last.line if last else 1, last.col if last else 1,
        )

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise self._eof_error()
        self.position += 1
        return token

    def expect(self, value: str) -> Token:
        token = self.next()
        if token.value != value:
            raise RTLParseError(
                f"expected {value!r}, got {token.value!r}",
                token.line, token.col,
            )
        return token

    def accept(self, value: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.value == value:
            self.position += 1
            return token
        return None

    def expect_identifier(self, what: str) -> Token:
        token = self.next()
        if token.kind != "id" or token.value in _KEYWORDS:
            raise RTLParseError(
                f"expected {what}, got {token.value!r}",
                token.line, token.col,
            )
        return token

    @staticmethod
    def _loc(token: Token) -> SourceLoc:
        return SourceLoc(token.line, token.col)

    # -- constant expressions ------------------------------------------
    def _const_expr_text(self, stop: Tuple[str, ...]) -> Tuple[str, Token]:
        """Raw text of a constant expression up to an unnested stop token."""
        parts: List[str] = []
        depth = 0
        first = self.peek()
        if first is None:
            raise self._eof_error()
        while True:
            token = self.peek()
            if token is None:
                raise self._eof_error()
            if depth == 0 and token.value in stop:
                break
            if token.value in "([":
                depth += 1
            elif token.value in ")]":
                if depth == 0:
                    break
                depth -= 1
            parts.append(token.value)
            self.position += 1
        if not parts:
            raise RTLParseError("expected a constant expression",
                                first.line, first.col)
        return " ".join(parts), first

    def _resolve_const(self, env: Dict[str, int],
                       stop: Tuple[str, ...]) -> Tuple[int, str, Token]:
        text, start = self._const_expr_text(stop)
        value = _ConstEvaluator(env).resolve(text)
        if value is None:
            raise RTLParseError(
                f"cannot resolve constant expression {text!r} "
                "(undefined parameter or unsupported operator?)",
                start.line, start.col,
            )
        return value, text, start

    def _range_width(self, env: Dict[str, int]) -> int:
        """``[msb:lsb]`` → bit width (the ``[`` is already consumed)."""
        msb, _text, start = self._resolve_const(env, (":",))
        self.expect(":")
        lsb, _text, _tok = self._resolve_const(env, ("]",))
        self.expect("]")
        if msb < lsb:
            raise RTLParseError(
                f"descending ranges only: [{msb}:{lsb}]",
                start.line, start.col,
            )
        return msb - lsb + 1

    # -- top level -----------------------------------------------------
    def parse_design(self) -> Design:
        modules: List[ModuleDecl] = []
        seen: Dict[str, int] = {}
        while self.peek() is not None:
            token = self.peek()
            assert token is not None  # lint: allow-assert
            if token.value != "module":
                self._reject(token)
            module = self.parse_module()
            if module.name in seen:
                raise RTLParseError(
                    f"duplicate module {module.name} "
                    f"(first defined on line {seen[module.name]})",
                    module.loc.line, module.loc.col,
                )
            seen[module.name] = module.loc.line
            modules.append(module)
        if not modules:
            raise RTLParseError("no module definition found", 1, 1)
        return Design(tuple(modules))

    def _reject(self, token: Token) -> None:
        if token.value in _UNSUPPORTED:
            raise RTLParseError(
                f"{token.value!r} is outside the structural subset "
                "(gate-level netlists only; behavioral RTL has its own "
                "interpreter in repro.decompressor.rtlsim)",
                token.line, token.col,
            )
        raise RTLParseError(
            f"expected a module item, got {token.value!r}",
            token.line, token.col,
        )

    # -- modules -------------------------------------------------------
    def parse_module(self) -> ModuleDecl:
        loc = self._loc(self.expect("module"))
        name = self.expect_identifier("module name")
        module = ModuleDecl(name.value, loc)
        env: Dict[str, int] = {}
        header_ports: List[str] = []

        if self.accept("#"):
            token = self.peek()
            raise RTLParseError(
                "parameter overrides (#(...)) are outside the structural "
                "subset", token.line if token else loc.line,
                token.col if token else loc.col,
            )
        if self.accept("("):
            if not self.accept(")"):
                first = self.peek()
                if first is not None and first.value in (
                    "input", "output", "inout"
                ):
                    self._parse_ansi_ports(module, env)
                else:
                    header_ports = self._parse_port_name_list()
                self.expect(")")
        self.expect(";")

        declared_header = set(header_ports)
        declared_dirs: set = set()
        while True:
            token = self.peek()
            if token is None:
                raise self._eof_error()
            if token.value == "endmodule":
                self.next()
                break
            if token.value in ("input", "output"):
                for port in self._parse_port_decl(env):
                    if header_ports and port.name not in declared_header:
                        raise RTLParseError(
                            f"port {port.name} is not in the module "
                            "header port list", port.loc.line, port.loc.col,
                        )
                    self._declare_port(module, port)
                    declared_dirs.add(port.name)
                continue
            if token.value == "inout":
                raise RTLParseError(
                    "inout ports are outside the structural subset",
                    token.line, token.col,
                )
            if token.value == "wire":
                module.nets.extend(self._parse_net_decl(env))
                continue
            if token.value in ("parameter", "localparam"):
                module.params.append(self._parse_param(env))
                continue
            if token.value == "assign":
                module.assigns.append(self._parse_assign())
                continue
            if token.value in GATE_PRIMITIVES:
                module.gates.append(self._parse_gate())
                continue
            if token.kind == "id" and token.value not in _KEYWORDS:
                module.instances.append(self._parse_instance())
                continue
            self._reject(token)

        if header_ports:
            missing = [p for p in header_ports if p not in declared_dirs]
            if missing:
                raise RTLParseError(
                    f"header ports with no input/output declaration: "
                    f"{', '.join(missing)}", loc.line, loc.col,
                )
            # keep header order, not declaration order
            order = {p: i for i, p in enumerate(header_ports)}
            module.ports.sort(key=lambda p: order[p.name])
        return module

    def _declare_port(self, module: ModuleDecl, port: PortDecl) -> None:
        if module.port(port.name) is not None:
            raise RTLParseError(
                f"duplicate port declaration {port.name}",
                port.loc.line, port.loc.col,
            )
        module.ports.append(port)

    def _parse_ansi_ports(self, module: ModuleDecl,
                          env: Dict[str, int]) -> None:
        while True:
            direction = self.next()
            if direction.value == "inout":
                raise RTLParseError(
                    "inout ports are outside the structural subset",
                    direction.line, direction.col,
                )
            if direction.value not in ("input", "output"):
                raise RTLParseError(
                    f"expected input/output, got {direction.value!r}",
                    direction.line, direction.col,
                )
            self.accept("wire")
            width = 1
            if self.accept("["):
                width = self._range_width(env)
            name = self.expect_identifier("port name")
            self._declare_port(module, PortDecl(
                name.value, direction.value, width, self._loc(name),
            ))
            if not self.accept(","):
                break

    def _parse_port_name_list(self) -> List[str]:
        names = [self.expect_identifier("port name").value]
        while self.accept(","):
            names.append(self.expect_identifier("port name").value)
        return names

    def _parse_port_decl(self, env: Dict[str, int]) -> List[PortDecl]:
        direction = self.next()
        self.accept("wire")
        width = 1
        if self.accept("["):
            width = self._range_width(env)
        ports = []
        while True:
            name = self.expect_identifier("port name")
            ports.append(PortDecl(
                name.value, direction.value, width, self._loc(name),
            ))
            if not self.accept(","):
                break
        self.expect(";")
        return ports

    def _parse_net_decl(self, env: Dict[str, int]) -> List[NetDecl]:
        self.expect("wire")
        width = 1
        if self.accept("["):
            width = self._range_width(env)
        nets = []
        while True:
            name = self.expect_identifier("net name")
            nets.append(NetDecl(name.value, width, self._loc(name)))
            if not self.accept(","):
                break
        token = self.peek()
        if token is not None and token.value == "=":
            raise RTLParseError(
                "wire initializers are outside the structural subset; "
                "use `assign`", token.line, token.col,
            )
        self.expect(";")
        return nets

    def _parse_param(self, env: Dict[str, int]) -> ParamDecl:
        kind = self.next()
        name = self.expect_identifier("parameter name")
        self.expect("=")
        value, text, _tok = self._resolve_const(env, (";",))
        self.expect(";")
        env[name.value] = value
        return ParamDecl(name.value, kind.value, text, value,
                         self._loc(name))

    def _parse_assign(self) -> Assign:
        self.expect("assign")
        target = self.expect_identifier("assignment target")
        self.expect("=")
        source = self.peek()
        if source is None:
            raise self._eof_error()
        if source.kind != "id" or source.value in _KEYWORDS:
            raise RTLParseError(
                "assign right-hand sides must be a plain net in the "
                f"structural subset, got {source.value!r}",
                source.line, source.col,
            )
        self.next()
        self._reject_select()
        self.expect(";")
        return Assign(target.value, source.value, self._loc(target))

    def _reject_select(self) -> None:
        token = self.peek()
        if token is not None and token.value == "[":
            raise RTLParseError(
                "bit/part selects are outside the structural subset "
                "(scalar nets only)", token.line, token.col,
            )

    def _parse_gate(self) -> GateInstance:
        primitive = self.next()
        instance: Optional[str] = None
        token = self.peek()
        if token is not None and token.kind == "id" \
                and token.value not in _KEYWORDS:
            instance = self.next().value
        self.expect("(")
        terminals = [self._parse_terminal("gate terminal")]
        while self.accept(","):
            terminals.append(self._parse_terminal("gate terminal"))
        self.expect(")")
        self.expect(";")
        if len(terminals) < 2:
            raise RTLParseError(
                f"gate primitive {primitive.value} needs an output and "
                "at least one input", primitive.line, primitive.col,
            )
        return GateInstance(
            primitive.value, instance, terminals[0], tuple(terminals[1:]),
            self._loc(primitive),
        )

    def _parse_terminal(self, what: str) -> str:
        token = self.peek()
        if token is not None and token.kind in ("number", "sized"):
            raise RTLParseError(
                f"constant {token.value!r} as a {what} is outside the "
                "structural subset (connect a net)",
                token.line, token.col,
            )
        name = self.expect_identifier(what)
        self._reject_select()
        return name.value

    def _parse_instance(self) -> ModuleInstance:
        module = self.next()
        if self.accept("#"):
            raise RTLParseError(
                "parameter overrides (#(...)) are outside the structural "
                "subset", module.line, module.col,
            )
        instance = self.expect_identifier("instance name")
        self.expect("(")
        connections: List[PortConnection] = []
        by_name = False
        token = self.peek()
        if token is not None and token.value == ".":
            by_name = True
            while True:
                dot = self.expect(".")
                port = self.expect_identifier("port name")
                self.expect("(")
                net: Optional[str] = None
                if not self.accept(")"):
                    net = self._parse_terminal("port connection")
                    self.expect(")")
                connections.append(PortConnection(
                    port.value, net, self._loc(dot),
                ))
                if not self.accept(","):
                    break
        elif token is not None and token.value != ")":
            while True:
                start = self.peek()
                assert start is not None  # lint: allow-assert
                net = self._parse_terminal("port connection")
                connections.append(PortConnection(
                    None, net, self._loc(start),
                ))
                if not self.accept(","):
                    break
        self.expect(")")
        self.expect(";")
        return ModuleInstance(
            module.value, instance.value, tuple(connections), by_name,
            self._loc(module),
        )


def parse_verilog(text: str) -> Design:
    """Parse structural-Verilog source text into a :class:`Design`."""
    return _Parser(tokenize(text)).parse_design()
