"""Interchange formats for test sets.

Besides the native ``.test`` format of :class:`~repro.testdata.testset
.TestSet`, two formats common in the test-compression literature are
supported:

* **MinTest-style ASCII** — the Hamzaoglu-Patel distribution format: a
  header line per pattern (``p<index>:``) followed by the cube string.
* **STIL-lite** — a minimal subset of IEEE 1450 STIL sufficient to carry
  scan-load vectors (``SignalGroups`` + ``Pattern`` blocks); enough for
  tools that ingest STIL patterns to consume our outputs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from .testset import TestSet

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# MinTest-style ASCII
# ----------------------------------------------------------------------

def dumps_mintest(test_set: TestSet) -> str:
    """Render in the MinTest-style per-pattern format."""
    lines = [f"# {test_set.name or 'test set'}: "
             f"{test_set.num_patterns} patterns x {test_set.num_cells} bits"]
    for index, pattern in enumerate(test_set, start=1):
        lines.append(f"p{index}:")
        lines.append(pattern.to_string())
    return "\n".join(lines) + "\n"


def loads_mintest(text: str, name: str = "") -> TestSet:
    """Parse the MinTest-style format (tolerates wrapped cube lines)."""
    patterns: List[str] = []
    current: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if re.fullmatch(r"[pP]\d+\s*:", line):
            if current:
                patterns.append("".join(current))
                current = []
            continue
        if not re.fullmatch(r"[01xX?-]+", line):
            raise ValueError(f"unexpected line in MinTest data: {raw!r}")
        current.append(line)
    if current:
        patterns.append("".join(current))
    return TestSet.from_strings(patterns, name=name)


def save_mintest(test_set: TestSet, path: PathLike) -> None:
    """Write the MinTest-style format."""
    Path(path).write_text(dumps_mintest(test_set))


def load_mintest(path: PathLike) -> TestSet:
    """Read the MinTest-style format."""
    path = Path(path)
    return loads_mintest(path.read_text(), name=path.stem)


# ----------------------------------------------------------------------
# STIL-lite
# ----------------------------------------------------------------------

_STIL_HEADER = 'STIL 1.0;'


def dumps_stil(test_set: TestSet, signal_group: str = "scan_in") -> str:
    """Render scan-load vectors as a minimal STIL pattern block."""
    lines = [
        _STIL_HEADER,
        f'SignalGroups {{ "{signal_group}" = '
        f"'cell[0..{max(test_set.num_cells - 1, 0)}]'; }}",
        f'Pattern "{test_set.name or "scan_test"}" {{',
    ]
    for pattern in test_set:
        # STIL uses N for unknown/don't-care in Vec data
        vector = pattern.to_string().replace("X", "N")
        lines.append(f'    V {{ "{signal_group}" = {vector}; }}')
    lines.append("}")
    return "\n".join(lines) + "\n"


def loads_stil(text: str) -> TestSet:
    """Parse the STIL-lite subset written by :func:`dumps_stil`."""
    if _STIL_HEADER.split(";")[0] not in text:
        raise ValueError("not a STIL file (missing STIL version header)")
    name_match = re.search(r'Pattern\s+"([^"]*)"', text)
    rows = [
        match.group(1).replace("N", "X")
        for match in re.finditer(r'V\s*{\s*"[^"]+"\s*=\s*([01NXnx]+)\s*;', text)
    ]
    if not rows:
        raise ValueError("no V {} vectors found in STIL data")
    return TestSet.from_strings(rows, name=name_match.group(1)
                                if name_match else "")


def save_stil(test_set: TestSet, path: PathLike) -> None:
    """Write the STIL-lite format."""
    Path(path).write_text(dumps_stil(test_set))


def load_stil(path: PathLike) -> TestSet:
    """Read the STIL-lite format."""
    return loads_stil(Path(path).read_text())
