"""Calibrated synthetic benchmark test sets.

The paper compresses the Hamzaoglu-Patel *MinTest* dynamically compacted
test cubes for six full-scan ISCAS'89 circuits, plus two proprietary IBM
test sets.  Neither artifact is redistributable here, so this module
synthesizes seeded surrogate test sets with the published structural
statistics (see DESIGN.md §4):

* exact dimensions — scan cells x patterns, hence the exact |T_D| the
  paper reports (e.g. s5378: 214 x 111 = 23754 bits);
* the published don't-care densities (68-93 % for ISCAS'89, ~98 % for the
  IBM circuits);
* the *clustered, zero-biased* specified-bit structure that every
  run-length/block compression code exploits: specified bits arrive in
  short bursts whose values persist, separated by long X runs.

Bit streams are produced by a two-state Markov process (specified /
don't-care) with geometric run lengths, which is the standard surrogate
model for ATPG cube structure.  Every generator call is deterministic for
a given profile + seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from ..core.bitvec import ONE, X, ZERO, TernaryVector
from .testset import TestSet


@dataclass(frozen=True)
class BenchmarkProfile:
    """Structural statistics of one benchmark test set.

    The default burst parameters (mean specified run 2.0, value
    persistence 0.35) are calibrated so the generated ISCAS'89 surrogates
    reproduce the paper's CR-vs-K shape: CR peaks at K=8..16, K=8 wins on
    average, K=32 is the worst sweep point, and leftover-X grows
    monotonically with K into the 10-25 % band at moderate K.
    """

    name: str
    num_cells: int
    num_patterns: int
    x_density: float
    zero_bias: float = 0.75
    mean_specified_run: float = 2.0
    value_persistence: float = 0.35
    seed: int = 0

    @property
    def total_bits(self) -> int:
        """|T_D| of the generated set."""
        return self.num_cells * self.num_patterns

    def scaled(self, fraction: float) -> "BenchmarkProfile":
        """A smaller variant (fewer patterns) for fast tests."""
        patterns = max(1, int(round(self.num_patterns * fraction)))
        return replace(self, num_patterns=patterns, name=f"{self.name}@{fraction}")


#: The six ISCAS'89 circuits of Tables II-VII, with the published MinTest
#: dimensions (|T_D| = cells x patterns matches the paper exactly) and
#: don't-care densities.
ISCAS89_PROFILES: Dict[str, BenchmarkProfile] = {
    "s5378": BenchmarkProfile("s5378", 214, 111, 0.7264, zero_bias=0.62, seed=5378),
    "s9234": BenchmarkProfile("s9234", 247, 159, 0.7333, zero_bias=0.60, seed=9234),
    "s13207": BenchmarkProfile("s13207", 700, 236, 0.9316, zero_bias=0.64, seed=13207),
    "s15850": BenchmarkProfile("s15850", 611, 126, 0.8361, zero_bias=0.62, seed=15850),
    "s38417": BenchmarkProfile("s38417", 1664, 99, 0.6808, zero_bias=0.58, seed=38417),
    "s38584": BenchmarkProfile("s38584", 1464, 136, 0.8234, zero_bias=0.62, seed=38584),
}

#: Surrogates for the two large IBM circuits of Table VIII: Mbit-scale
#: test sets with very high X density.
IBM_PROFILES: Dict[str, BenchmarkProfile] = {
    "ckt1": BenchmarkProfile(
        "ckt1", 7600, 790, 0.985, zero_bias=0.80,
        mean_specified_run=3.0, seed=101,
    ),
    "ckt2": BenchmarkProfile(
        "ckt2", 5300, 760, 0.975, zero_bias=0.80,
        mean_specified_run=3.0, seed=102,
    ),
}

ALL_PROFILES: Dict[str, BenchmarkProfile] = {**ISCAS89_PROFILES, **IBM_PROFILES}

#: The K values swept in Tables II/III and Table VIII.
TABLE2_BLOCK_SIZES = (4, 8, 12, 16, 20, 24, 28, 32)
TABLE8_BLOCK_SIZES = (8, 16, 24, 32, 40, 48, 56, 64)


def _sample_runs(rng: np.random.Generator, mean: float, total: int) -> np.ndarray:
    """Geometric run lengths (mean ``mean``) summing to at least ``total``."""
    mean = max(mean, 1.000001)
    p = 1.0 / mean
    estimate = max(16, int(total / mean * 1.3) + 16)
    chunks = []
    covered = 0
    while covered < total:
        runs = rng.geometric(p, size=estimate)
        chunks.append(runs)
        covered += int(runs.sum())
    return np.concatenate(chunks)


def generate_stream(profile: BenchmarkProfile,
                    seed: Optional[int] = None) -> TernaryVector:
    """Generate the concatenated ternary stream for a profile."""
    total = profile.total_bits
    rng = np.random.default_rng(profile.seed if seed is None else seed)
    frac_specified = 1.0 - profile.x_density
    if not 0.0 < frac_specified < 1.0:
        raise ValueError("x_density must be strictly between 0 and 1")
    mean_spec = profile.mean_specified_run
    mean_x = mean_spec * profile.x_density / frac_specified

    spec_runs = _sample_runs(rng, mean_spec, total)
    x_runs = _sample_runs(rng, mean_x, total)

    data = np.full(total, X, dtype=np.uint8)
    position = 0
    # Start inside an X run with probability x_density.
    start_with_x = rng.random() < profile.x_density
    value = ZERO if rng.random() < profile.zero_bias else ONE
    spec_index = 0
    x_index = 0
    in_x = start_with_x
    while position < total:
        if in_x:
            position += int(x_runs[x_index])
            x_index += 1
        else:
            run = int(spec_runs[spec_index])
            spec_index += 1
            end = min(position + run, total)
            while position < end:
                data[position] = value
                # value persistence within and across bursts
                if rng.random() >= profile.value_persistence:
                    value = ZERO if rng.random() < profile.zero_bias else ONE
                position += 1
        in_x = not in_x
    return TernaryVector(data)


def generate(profile: BenchmarkProfile, seed: Optional[int] = None) -> TestSet:
    """Generate the full :class:`TestSet` for a profile."""
    stream = generate_stream(profile, seed)
    return TestSet.from_stream(stream, profile.num_cells, name=profile.name)


def profile_from_statistics(
    stats,
    num_cells: int,
    num_patterns: int,
    name: str = "custom",
    seed: int = 0,
) -> BenchmarkProfile:
    """Build a surrogate profile from measured test-set statistics.

    ``stats`` is a :class:`repro.analysis.statistics.TestDataStatistics`
    (duck-typed: x_density, specified_zero_fraction,
    mean_specified_burst, value_persistence are read).  This closes the
    calibration loop: analyze any proprietary test set, then generate
    shareable surrogates with the same compression-relevant structure.
    """
    x_density = min(max(stats.x_density, 0.01), 0.99)
    zero_bias = min(max(stats.specified_zero_fraction, 0.05), 0.95)
    # The measured persistence is the probability two consecutive
    # specified bits MATCH; the generator's knob is the probability it
    # REPEATS without a redraw (a redraw still matches with probability
    # c = zb^2 + (1-zb)^2).  Invert: match = vp + (1-vp)*c.
    coincidence = zero_bias**2 + (1.0 - zero_bias) ** 2
    match = min(max(stats.value_persistence, 0.0), 0.99)
    if match <= coincidence:
        persistence = 0.0
    else:
        persistence = (match - coincidence) / (1.0 - coincidence)
    return BenchmarkProfile(
        name=name,
        num_cells=num_cells,
        num_patterns=num_patterns,
        x_density=x_density,
        zero_bias=zero_bias,
        mean_specified_run=max(stats.mean_specified_burst, 1.000001),
        value_persistence=min(max(persistence, 0.0), 0.98),
        seed=seed,
    )


_CACHE: Dict[tuple, TestSet] = {}


def load_benchmark(name: str, fraction: float = 1.0) -> TestSet:
    """Load (and cache) the surrogate test set for a named benchmark.

    ``fraction`` < 1 trims the number of patterns (used by fast unit
    tests); benches always use the full set.
    """
    try:
        profile = ALL_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(ALL_PROFILES)}"
        ) from None
    if fraction != 1.0:
        profile = profile.scaled(fraction)
    key = (profile.name, profile.num_patterns)
    if key not in _CACHE:
        _CACHE[key] = generate(profile)
    return _CACHE[key]
