"""Scan test-set model.

A :class:`TestSet` is a matrix of test patterns: ``num_patterns`` rows,
each a ternary scan-load vector of ``num_cells`` bits.  The 9C codec and
all baseline codes operate on the concatenated stream (``to_stream``),
which is how a single-scan-chain ATE applies the set; the multiple-scan
architectures re-slice the same stream.

A simple line-oriented text format is supported for persistence::

    # repro test set: cells=214 patterns=111
    01XX10...   (one pattern per line)
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

from ..core.bitvec import TernaryVector

PathLike = Union[str, Path]


class TestSet:
    """An ordered collection of equal-length ternary test patterns."""

    __test__ = False  # keep pytest from collecting this library class

    def __init__(self, patterns: Iterable[TernaryVector], name: str = ""):
        self.patterns: List[TernaryVector] = list(patterns)
        self.name = name
        if self.patterns:
            width = len(self.patterns[0])
            for i, pattern in enumerate(self.patterns):
                if len(pattern) != width:
                    raise ValueError(
                        f"pattern {i} has length {len(pattern)}, expected {width}"
                    )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, rows: Sequence[str], name: str = "") -> "TestSet":
        """Build from ``0/1/X`` strings, one per pattern."""
        return cls([TernaryVector.from_string(row) for row in rows], name=name)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, name: str = "") -> "TestSet":
        """Build from a 2-D uint8 array of {0, 1, 2} codes."""
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D (patterns x cells)")
        return cls(
            [TernaryVector(matrix[i]) for i in range(matrix.shape[0])], name=name
        )

    @classmethod
    def from_stream(cls, stream: TernaryVector, num_cells: int,
                    name: str = "") -> "TestSet":
        """Re-slice a concatenated stream into ``num_cells``-bit patterns."""
        if num_cells <= 0:
            raise ValueError("num_cells must be positive")
        if len(stream) % num_cells:
            raise ValueError(
                f"stream length {len(stream)} is not a multiple of {num_cells}"
            )
        return cls(
            [stream[i : i + num_cells] for i in range(0, len(stream), num_cells)],
            name=name,
        )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[TernaryVector]:
        return iter(self.patterns)

    def __getitem__(self, index: int) -> TernaryVector:
        return self.patterns[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, TestSet):
            return NotImplemented
        return self.patterns == other.patterns

    def __repr__(self) -> str:
        return (
            f"TestSet(name={self.name!r}, patterns={self.num_patterns}, "
            f"cells={self.num_cells}, x={self.x_density:.1%})"
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def num_patterns(self) -> int:
        """Number of test patterns."""
        return len(self.patterns)

    @property
    def num_cells(self) -> int:
        """Scan-chain length (bits per pattern)."""
        return len(self.patterns[0]) if self.patterns else 0

    @property
    def total_bits(self) -> int:
        """|T_D| — total test data volume in bits."""
        return self.num_patterns * self.num_cells

    @property
    def num_x(self) -> int:
        """Total don't-care bits."""
        return sum(p.num_x for p in self.patterns)

    @property
    def x_density(self) -> float:
        """Fraction of bits that are don't-cares."""
        return self.num_x / self.total_bits if self.total_bits else 0.0

    def to_stream(self) -> TernaryVector:
        """Concatenate all patterns into the single-scan-chain bit stream."""
        return TernaryVector.concat(self.patterns)

    def to_matrix(self) -> np.ndarray:
        """2-D uint8 view (patterns x cells); a fresh copy."""
        if not self.patterns:
            return np.empty((0, 0), dtype=np.uint8)
        return np.stack([p.data for p in self.patterns]).copy()

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def filled(self, value: int) -> "TestSet":
        """Constant-fill every X (see :mod:`repro.testdata.fill` for more)."""
        return TestSet([p.filled(value) for p in self.patterns], name=self.name)

    def map_patterns(self, fn) -> "TestSet":
        """Apply ``fn`` to every pattern, keeping the name."""
        return TestSet([fn(p) for p in self.patterns], name=self.name)

    def covers(self, other: "TestSet") -> bool:
        """True when each pattern of self covers the matching cube of other."""
        if len(self) != len(other):
            return False
        return all(a.covers(b) for a, b in zip(self.patterns, other.patterns))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the text format described in the module docstring."""
        path = Path(path)
        with path.open("w") as handle:
            handle.write(
                f"# repro test set: cells={self.num_cells} "
                f"patterns={self.num_patterns} name={self.name}\n"
            )
            for pattern in self.patterns:
                handle.write(pattern.to_string() + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "TestSet":
        """Read the text format written by :meth:`save`."""
        path = Path(path)
        name = ""
        rows: List[str] = []
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    match = re.search(r"name=(\S*)", line)
                    if match:
                        name = match.group(1)
                    continue
                rows.append(line)
        return cls.from_strings(rows, name=name)
