"""Scan data layouts for multiple-scan-chain designs.

For an ``m``-chain design the paper organizes the data "vertically,
i.e. with respect to chain" (Section III-B): the pattern is viewed as
``l`` rows of ``m`` bits (one bit per chain per scan cycle), and the
decoder fills an m-bit shifter row by row.  Two layouts matter:

* **row-major** (shift order) — the order bits leave the decoder: row 0
  of chain 0..m-1, then row 1, ...  This is how the single-pin
  architecture streams, and the layout :class:`~repro.decompressor
  .multi_scan.MultiScanDecompressor` consumes.
* **chain-major** (vertical) — all of chain 0's column, then chain 1's,
  ...  Compressing each chain's column separately exploits per-chain
  correlation; re-interleaving restores shift order.

Both transforms are exact inverses and preserve don't-cares.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.bitvec import TernaryVector
from .testset import TestSet


def _validated(pattern: TernaryVector, num_chains: int) -> np.ndarray:
    if num_chains < 1:
        raise ValueError("need at least one chain")
    if len(pattern) % num_chains:
        raise ValueError(
            f"pattern length {len(pattern)} is not a multiple of "
            f"{num_chains} chains"
        )
    return pattern.data.reshape(-1, num_chains)


def to_chain_major(pattern: TernaryVector, num_chains: int) -> TernaryVector:
    """Reorder one pattern from shift order to chain-major (vertical)."""
    rows = _validated(pattern, num_chains)
    return TernaryVector(rows.T.reshape(-1).copy())


def from_chain_major(pattern: TernaryVector, num_chains: int) -> TernaryVector:
    """Inverse of :func:`to_chain_major`."""
    if num_chains < 1:
        raise ValueError("need at least one chain")
    if len(pattern) % num_chains:
        raise ValueError("pattern length must be a chain multiple")
    columns = pattern.data.reshape(num_chains, -1)
    return TernaryVector(columns.T.reshape(-1).copy())


def chain_view(pattern: TernaryVector, num_chains: int,
               chain: int) -> TernaryVector:
    """The column of bits one chain receives for this pattern."""
    rows = _validated(pattern, num_chains)
    if not 0 <= chain < num_chains:
        raise ValueError(f"chain index {chain} out of range")
    return TernaryVector(rows[:, chain].copy())


def test_set_chain_major(test_set: TestSet, num_chains: int) -> TestSet:
    """Apply :func:`to_chain_major` to every pattern."""
    return test_set.map_patterns(lambda p: to_chain_major(p, num_chains))


def test_set_from_chain_major(test_set: TestSet, num_chains: int) -> TestSet:
    """Apply :func:`from_chain_major` to every pattern."""
    return test_set.map_patterns(lambda p: from_chain_major(p, num_chains))


def compare_layout_compression(
    test_set: TestSet, num_chains: int, k: int
) -> Tuple[float, float]:
    """(row-major CR%, chain-major CR%) of 9C on the same data.

    Chain-major often compresses better when per-chain columns are
    smoother than per-cycle rows — the knob the paper's vertical
    organization exposes.
    """
    from ..core.encoder import NineCEncoder

    encoder = NineCEncoder(k)
    row_major = encoder.measure(test_set.to_stream()).compression_ratio
    vertical = encoder.measure(
        test_set_chain_major(test_set, num_chains).to_stream()
    ).compression_ratio
    return row_major, vertical
