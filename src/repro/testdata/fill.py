"""X-fill strategies.

The paper's headline feature is that 9C *leaves* don't-cares in the
compressed set, so the tester (or a post-processing step) is free to fill
them: randomly to catch non-modeled faults, or transition-minimizing to cut
scan power.  These are the standard fills used throughout the test-data
compression literature.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core.bitvec import ONE, X, ZERO, TernaryVector
from .testset import TestSet

FillFn = Callable[[TernaryVector], TernaryVector]


def zero_fill(vec: TernaryVector) -> TernaryVector:
    """Replace every X with 0 (what run-length codes assume)."""
    return vec.filled(ZERO)


def one_fill(vec: TernaryVector) -> TernaryVector:
    """Replace every X with 1."""
    return vec.filled(ONE)


def random_fill(vec: TernaryVector, rng: Optional[np.random.Generator] = None,
                seed: int = 0) -> TernaryVector:
    """Replace every X with an independent random bit.

    This is the fill ATPG tools use to raise non-modeled-fault coverage —
    the fill 9C's leftover X bits keep available.
    """
    rng = rng or np.random.default_rng(seed)
    return vec.filled_random(rng)


def mt_fill(vec: TernaryVector) -> TernaryVector:
    """Minimum-transition fill: each X repeats the previous specified bit.

    Leading X bits (before any specified bit) copy the first specified bit;
    an all-X vector becomes all zeros.  MT-fill minimizes scan-in
    transitions, hence shift power.
    """
    data = vec.data.copy()
    specified = np.flatnonzero(data != X)
    if specified.size == 0:
        return TernaryVector.zeros(len(vec))
    last = data[specified[0]]
    for i in range(len(data)):
        if data[i] == X:
            data[i] = last
        else:
            last = data[i]
    return TernaryVector(data)


FILL_STRATEGIES: Dict[str, FillFn] = {
    "zero": zero_fill,
    "one": one_fill,
    "random": random_fill,
    "mt": mt_fill,
}


def fill_test_set(test_set: TestSet, strategy: str = "random",
                  seed: int = 0) -> TestSet:
    """Fill every pattern of a test set with the named strategy."""
    if strategy == "random":
        rng = np.random.default_rng(seed)
        return test_set.map_patterns(lambda p: p.filled_random(rng))
    try:
        fn = FILL_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown fill strategy {strategy!r}; "
            f"choose from {sorted(FILL_STRATEGIES)}"
        ) from None
    return test_set.map_patterns(fn)
