"""Pseudo-random test pattern generation (BIST stimulus side).

The paper's introduction positions 9C against BIST: on-chip LFSRs apply
pseudo-random patterns, which take a long time to reach the coverage a
deterministic set achieves because of random-pattern-resistant faults.
This module is that generator — an LFSR clocked ``scan_length`` times
per pattern — so the motivation experiment can be run quantitatively.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.bitvec import TernaryVector
from ..decompressor.misr import LFSR, default_taps
from ..testdata.testset import TestSet


class PseudoRandomTPG:
    """LFSR-based test pattern generator for a given scan length."""

    def __init__(self, scan_length: int, width: int = 32,
                 taps: Optional[Sequence[int]] = None, seed: int = 1):
        if scan_length < 1:
            raise ValueError("scan length must be >= 1")
        self.scan_length = scan_length
        self.lfsr = LFSR(width, taps=taps or default_taps(width), seed=seed)

    def next_pattern(self) -> TernaryVector:
        """One fully-specified pseudo-random scan pattern."""
        return TernaryVector(
            np.array(self.lfsr.bits(self.scan_length), dtype=np.uint8)
        )

    def patterns(self, count: int) -> Iterator[TernaryVector]:
        """Stream ``count`` patterns."""
        for _ in range(count):
            yield self.next_pattern()

    def test_set(self, count: int, name: str = "bist") -> TestSet:
        """Materialize ``count`` patterns as a :class:`TestSet`."""
        return TestSet(list(self.patterns(count)), name=name)


def weighted_random_patterns(
    scan_length: int, count: int, one_probability: float = 0.5,
    seed: int = 0,
) -> TestSet:
    """Weighted-random patterns (the classic fix for resistant faults).

    Biasing the bit probability toward the circuit's hard-to-excite
    values recovers some resistant faults at the cost of per-circuit
    weight computation — one of the BIST workarounds the intro cites.
    """
    if not 0.0 < one_probability < 1.0:
        raise ValueError("one_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    matrix = (rng.random((count, scan_length)) < one_probability) \
        .astype(np.uint8)
    return TestSet.from_matrix(matrix, name=f"wrp{one_probability}")
