"""Pseudo-random BIST substrate (the paper's §I comparison point)."""

from .session import (
    BISTResult,
    random_pattern_resistant_faults,
    run_bist,
)
from .tpg import PseudoRandomTPG, weighted_random_patterns

__all__ = [
    "PseudoRandomTPG",
    "weighted_random_patterns",
    "BISTResult",
    "run_bist",
    "random_pattern_resistant_faults",
]
