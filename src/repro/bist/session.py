"""BIST coverage simulation (the paper's §I motivation experiment).

Applies pseudo-random patterns in batches with fault dropping and
records the coverage curve.  The quantity of interest is the knee: how
many random patterns it takes to match a deterministic (ATPG) set, and
which faults stay undetected — the *random-pattern-resistant* faults
that make pure BIST insufficient and deterministic test-data
compression (9C) necessary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..circuits.fault_sim import fault_simulate
from ..circuits.faults import Fault, collapsed_faults, coverage
from ..circuits.netlist import Netlist
from ..testdata.testset import TestSet
from .tpg import PseudoRandomTPG


@dataclass
class BISTResult:
    """Outcome of one pseudo-random BIST session."""

    patterns_applied: int
    detected: List[Fault]
    resistant: List[Fault]
    #: (patterns applied, coverage %) after each batch
    coverage_curve: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        """Faults targeted in the session."""
        return len(self.detected) + len(self.resistant)

    @property
    def fault_coverage(self) -> float:
        """Final coverage percentage."""
        return coverage(len(self.detected), self.total_faults)

    def patterns_to_reach(self, target_coverage: float) -> Optional[int]:
        """First batch boundary reaching ``target_coverage`` (or None)."""
        for applied, achieved in self.coverage_curve:
            if achieved >= target_coverage:
                return applied
        return None


def run_bist(
    netlist: Netlist,
    max_patterns: int = 1024,
    batch_size: int = 64,
    faults: Optional[Sequence[Fault]] = None,
    seed: int = 1,
) -> BISTResult:
    """Simulate a pseudo-random BIST session with fault dropping."""
    if max_patterns < 1 or batch_size < 1:
        raise ValueError("max_patterns and batch_size must be >= 1")
    fault_list = list(faults) if faults is not None \
        else collapsed_faults(netlist)
    tpg = PseudoRandomTPG(netlist.scan_length, seed=seed)

    remaining = list(fault_list)
    detected: List[Fault] = []
    curve: List[Tuple[int, float]] = []
    applied = 0
    while applied < max_patterns and remaining:
        batch = min(batch_size, max_patterns - applied)
        patterns = TestSet(list(tpg.patterns(batch)), name="bist-batch")
        result = fault_simulate(netlist, patterns, remaining)
        detected.extend(result.detected)
        remaining = result.undetected
        applied += batch
        curve.append((applied, coverage(len(detected), len(fault_list))))
    if applied and (not curve or curve[-1][0] != applied):
        curve.append((applied, coverage(len(detected), len(fault_list))))
    return BISTResult(
        patterns_applied=applied,
        detected=detected,
        resistant=remaining,
        coverage_curve=curve,
    )


def random_pattern_resistant_faults(
    netlist: Netlist, budget: int = 1024, seed: int = 1
) -> List[Fault]:
    """Faults still undetected after ``budget`` pseudo-random patterns."""
    return run_bist(netlist, max_patterns=budget, seed=seed).resistant
