"""repro — reproduction of the 9C nine-coded test-data compression technique.

Reference: M. Tehranipoor, M. Nourani, K. Chakrabarty, "Nine-Coded
Compression Technique with Application to Reduced Pin-Count Testing and
Flexible On-Chip Decompression", DATE 2004.

Package map
-----------
``repro.core``
    The 9C code itself: ternary vectors, the nine-codeword codebook,
    encoder/decoder, metrics and frequency-directed re-assignment.
``repro.codes``
    Baseline test-data compression codes used in the paper's Table IV
    comparison (Golomb, FDR, EFDR, alternating run-length, VIHC,
    selective Huffman, MTC approximation, fixed-index dictionary).
``repro.circuits`` / ``repro.atpg``
    Gate-level full-scan circuit substrate: .bench netlists, logic and
    fault simulation, PODEM ATPG and test compaction — used to generate
    genuine test cubes end-to-end.
``repro.testdata``
    Test-set model, calibrated MinTest-like benchmark profiles and X-fill
    strategies.
``repro.decompressor``
    Cycle-accurate models of the on-chip decompression architectures
    (Figures 1-4): FSM, single-scan, multi-scan single-pin and parallel
    multi-decoder organizations, plus decoder gate-cost estimation.
``repro.analysis``
    Test-application-time model (Section III-C), scan-power analysis,
    CR/LX trade-off selection, resilience metrics and reporting helpers.
``repro.robust``
    Hardened stream layer: channel fault injectors for the single-pin
    ATE link, CRC-framed ``T_E`` container with per-frame recovery, and
    the error-resilience campaign harness (docs/resilience.md).
``repro.obs``
    Observability: process-local metrics registry, nested span tracing,
    and the perf-baseline profiling harness behind ``repro-9c profile``
    (docs/observability.md).
"""

from .core import (
    BlockCase,
    Codebook,
    DecodeDiagnostics,
    Encoding,
    NineCDecoder,
    NineCEncoder,
    StreamError,
    TernaryVector,
    coding_table,
    frequency_directed,
    verify_roundtrip,
)

__version__ = "1.0.0"

__all__ = [
    "TernaryVector",
    "BlockCase",
    "Codebook",
    "NineCEncoder",
    "NineCDecoder",
    "Encoding",
    "StreamError",
    "DecodeDiagnostics",
    "coding_table",
    "frequency_directed",
    "verify_roundtrip",
    "__version__",
]
