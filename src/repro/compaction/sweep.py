"""Aliasing / detection-loss sweeps: X density × compactor × circuit.

The measurement that justifies the X-codes: fill a circuit's ATPG
cubes, fault-simulate the filled patterns to find the faults the
*uncompacted* responses detect, then re-grade each fault through every
compactor while an :class:`XPlacement` degrades response positions to
unknown.  A fault whose compacted observation still differs from the
good machine's is *detected*; one that no longer differs is a *silent
escape* — detection the compactor lost to X masking or aliasing.

``XPlacement`` is the shared-geometry piece: the same (seed, cycle)
draw can be projected onto the stimulus stream (``stream_positions``)
and handed to :class:`repro.robust.XErasureChannel`, so stimulus-side
LX don't-cares and response-side X's land on the same test cycles the
way the paper's Section III-C free-bit accounting implies, instead of
being independently random.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs as _obs
from ..atpg.flow import generate_test_cubes
from ..circuits.fault_sim import fault_simulate
from ..circuits.faults import Fault, collapsed_faults
from ..circuits.netlist import Netlist
from ..circuits.simulator import PackedSimulator
from ..testdata.fill import fill_test_set
from ..testdata.testset import TestSet
from .compactor import ResponseCompactor, default_compactors

#: Default X densities swept (fraction of response bits degraded to X).
DEFAULT_DENSITIES: Tuple[float, ...] = (0.0, 0.01, 0.05, 0.10)


@dataclass(frozen=True)
class XPlacement:
    """A reproducible set of (cycle, column) positions degraded to X.

    ``from_density`` draws the *cycles* from a seed-only generator and
    the *columns* from a (seed, width) generator, so two placements
    with the same seed but different widths — e.g. the response side
    (width = scan outputs) and the stimulus side (width = scan length)
    — hit the same test cycles: correlated erasures, not independent
    ones.  ``companion`` builds exactly that projection.
    """

    num_cycles: int
    width: int
    positions: Tuple[Tuple[int, int], ...]
    seed: int = 0

    @property
    def density(self) -> float:
        """Fraction of the response matrix degraded to X."""
        total = self.num_cycles * self.width
        return len(self.positions) / total if total else 0.0

    @classmethod
    def from_density(cls, num_cycles: int, width: int, density: float,
                     seed: int = 0) -> "XPlacement":
        """Place exactly ``round(density * bits)`` X's (at least one
        when the density is nonzero), so sparse sweeps on tiny circuits
        cannot silently round down to a no-op placement."""
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        total = num_cycles * width
        count = int(round(density * total))
        if density > 0 and count == 0 and total > 0:
            count = 1
        if count == 0:
            return cls(num_cycles, width, (), seed)
        cycle_rng = np.random.default_rng(seed)
        column_rng = np.random.default_rng((seed + 1) * 100003 + width)
        cycles = cycle_rng.integers(0, num_cycles, size=count)
        columns = column_rng.integers(0, width, size=count)
        positions = tuple(sorted({
            (int(c), int(j)) for c, j in zip(cycles, columns)
        }))
        return cls(num_cycles, width, positions, seed)

    def companion(self, width: int) -> "XPlacement":
        """The same cycle draw projected onto a different word width —
        the stimulus-side twin of a response-side placement."""
        if width == self.width:
            return self
        count = len(self.positions)
        if count == 0:
            return XPlacement(self.num_cycles, width, (), self.seed)
        cycle_rng = np.random.default_rng(self.seed)
        column_rng = np.random.default_rng((self.seed + 1) * 100003 + width)
        cycles = cycle_rng.integers(0, self.num_cycles, size=count)
        columns = column_rng.integers(0, width, size=count)
        positions = tuple(sorted({
            (int(c), int(j)) for c, j in zip(cycles, columns)
        }))
        return XPlacement(self.num_cycles, width, positions, self.seed)

    def mask(self) -> np.ndarray:
        """The placement as a (num_cycles, width) boolean matrix."""
        out = np.zeros((self.num_cycles, self.width), dtype=bool)
        for cycle, column in self.positions:
            out[cycle, column] = True
        return out

    def stream_positions(self) -> List[int]:
        """Flat stream indices (cycle-major) for the erasure channel."""
        return [cycle * self.width + column
                for cycle, column in self.positions]

    @property
    def cycles_touched(self) -> List[int]:
        """Distinct cycles carrying at least one X."""
        return sorted({cycle for cycle, _ in self.positions})


@dataclass(frozen=True)
class SweepPoint:
    """One (density, compactor) cell of the sweep."""

    density: float
    compactor: str
    output_pins: int
    sample_size: int
    detected: int
    masked_bits: int

    @property
    def detection_rate(self) -> float:
        """Fraction of the baseline-detected fault sample still caught."""
        return self.detected / self.sample_size if self.sample_size else 1.0

    @property
    def silent_escape_rate(self) -> float:
        """1 - detection rate: faults the compactor lost."""
        return 1.0 - self.detection_rate

    def to_dict(self) -> dict:
        return {
            "density": self.density,
            "compactor": self.compactor,
            "output_pins": self.output_pins,
            "sample_size": self.sample_size,
            "detected": self.detected,
            "detection_rate": self.detection_rate,
            "silent_escape_rate": self.silent_escape_rate,
            "masked_bits": self.masked_bits,
        }


@dataclass
class CompactionReport:
    """A full sweep on one circuit, serializable to the baseline schema."""

    circuit: str
    num_outputs: int
    num_patterns: int
    baseline_detected: int
    total_faults: int
    points: List[SweepPoint] = field(default_factory=list)
    wall_s: float = 0.0
    seed: int = 0
    metrics: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)

    @property
    def densities(self) -> List[float]:
        return sorted({point.density for point in self.points})

    @property
    def compactors(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.compactor not in seen:
                seen.append(point.compactor)
        return seen

    def point(self, density: float, compactor: str) -> SweepPoint:
        """Look up one sweep cell (raises if absent)."""
        for candidate in self.points:
            if (candidate.compactor == compactor
                    and abs(candidate.density - density) < 1e-12):
                return candidate
        raise KeyError(f"no sweep point ({density}, {compactor})")

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "num_outputs": self.num_outputs,
            "num_patterns": self.num_patterns,
            "baseline_detected": self.baseline_detected,
            "total_faults": self.total_faults,
            "seed": self.seed,
            "points": [point.to_dict() for point in self.points],
        }

    def to_baseline_dict(self, k: int = 8) -> dict:
        """Render in the ``BENCH_obs.json`` schema (scenario
        ``compaction``) so existing validators and tooling apply."""
        bits = self.num_patterns * self.num_outputs * max(
            1, len(self.densities)
        )
        return {
            "schema_version": 1,
            "target": self.circuit,
            "k": k,
            "session_circuit": self.circuit,
            "scenarios": {
                "compaction": {
                    "wall_s": self.wall_s,
                    "bits": bits,
                    "bits_per_s": bits / self.wall_s if self.wall_s else 0.0,
                    "spans": self.spans,
                    "metrics": self.metrics or {
                        "counters": {}, "gauges": {}, "histograms": {}
                    },
                    "extra": self.to_dict(),
                }
            },
        }


def response_matrix(netlist: Netlist, patterns: TestSet,
                    fault: Optional[Fault] = None) -> np.ndarray:
    """(patterns, scan outputs) 0/1 response matrix, bit-parallel."""
    matrix = patterns.to_matrix()
    n = matrix.shape[0]
    simulator = PackedSimulator(netlist)
    packed = PackedSimulator.pack(matrix)
    values = simulator.run_packed(
        packed, n, fault.injection if fault is not None else None
    )
    out = np.zeros((n, len(netlist.scan_outputs)), dtype=np.uint8)
    for j, net in enumerate(netlist.scan_outputs):
        word = values[net]
        for i in range(n):
            out[i, j] = (word >> i) & 1
    return out


def run_sweep(
    netlist: Netlist,
    compactors: Optional[Sequence[ResponseCompactor]] = None,
    densities: Sequence[float] = DEFAULT_DENSITIES,
    *,
    max_faults: Optional[int] = None,
    seed: int = 0,
    fill_strategy: str = "random",
    circuit_name: str = "",
    cubes: Optional[TestSet] = None,
) -> CompactionReport:
    """Measure detection loss for every (density, compactor) pair.

    The fault sample is the set of faults the *uncompacted* filled
    patterns detect (optionally capped at ``max_faults``), so every
    loss reported is attributable to the compactor + X placement, not
    to the test set.  Fully deterministic for a given seed.
    """
    if not densities:
        raise ValueError("provide at least one density")
    started = time.perf_counter()
    with _obs.span("compaction.sweep"):
        atpg = None
        if cubes is None:
            atpg = generate_test_cubes(netlist)
            cubes = atpg.test_set
        patterns = fill_test_set(cubes, fill_strategy, seed=seed)
        faults = (atpg.detected if atpg is not None
                  else collapsed_faults(netlist))
        baseline = fault_simulate(netlist, patterns, faults)
        sample = baseline.detected
        if max_faults is not None:
            sample = sample[:max_faults]
        width = len(netlist.scan_outputs)
        if compactors is None:
            compactors = default_compactors(width)
        for compactor in compactors:
            if compactor.width != width:
                raise ValueError(
                    f"compactor {compactor.name!r} is sized for "
                    f"{compactor.width} chains, circuit has {width}"
                )
        good = response_matrix(netlist, patterns)
        faulty = {fault: response_matrix(netlist, patterns, fault)
                  for fault in sample}
        num_patterns = good.shape[0]

        points: List[SweepPoint] = []
        for density in densities:
            placement = XPlacement.from_density(
                num_patterns, width, density, seed=seed
            )
            xmask = placement.mask()
            for compactor in compactors:
                good_obs = compactor.compact(good, xmask)
                detected = sum(
                    1 for fault in sample
                    if not good_obs.matches(
                        compactor.compact(faulty[fault], xmask)
                    )
                )
                points.append(SweepPoint(
                    density=density,
                    compactor=compactor.name,
                    output_pins=compactor.output_pins,
                    sample_size=len(sample),
                    detected=detected,
                    masked_bits=len(placement.positions),
                ))
    report = CompactionReport(
        circuit=circuit_name or getattr(netlist, "name", "") or "custom",
        num_outputs=width,
        num_patterns=num_patterns,
        baseline_detected=len(sample),
        total_faults=len(faults),
        points=points,
        wall_s=time.perf_counter() - started,
        seed=seed,
    )
    if _obs.enabled():
        registry = _obs.get_registry()
        registry.counter("compaction.sweep_points").inc(len(points))
        registry.counter("compaction.faults_graded").inc(
            len(sample) * len(points)
        )
        report.metrics = registry.snapshot()
    return report
