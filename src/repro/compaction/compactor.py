"""Response compactors behind one interface: spatial X-codes and MISRs.

Every compactor consumes a response matrix — one row per applied
pattern, one column per scan output — together with a same-shape X
mask marking positions whose value is unknown, and produces an
*observation*: whatever the tester actually gets to compare.  The
defining guarantee (and the property the tests pin down) is that the
observation is invariant under arbitrary values at masked positions.

Three compaction disciplines close the output side of the paper's
reduced-pin-count channel:

* :class:`SpatialXCompactor` — XOR an X-code matrix per cycle; only the
  output bits an X row touches become unobservable;
* :class:`MISRCompactor` — the classic unmasked signature register: any
  cycle containing an X would corrupt the signature forever, so the
  whole cycle is dropped (the detection loss the X-codes fix);
* :class:`MaskedMISRCompactor` — a MISR behind a per-bit X-masking
  front end: masked bits are forced to 0 on both good and faulty
  machines, so only detections *at* masked positions are lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs as _obs
from ..core.bitvec import X, TernaryVector
from ..decompressor.misr import MISR, default_taps
from .xcodes import XCodeMatrix


def split_ternary(responses: TernaryVector, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split a ternary response stream into (values, xmask) matrices.

    X symbols become mask=True with value 0; the value at a masked
    position is by definition arbitrary, which is exactly what the
    invariance property tests exploit.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if len(responses) % width:
        raise ValueError(
            f"stream length {len(responses)} is not a multiple of {width}"
        )
    data = responses.data.reshape(-1, width)
    xmask = data == X
    values = np.where(xmask, 0, data).astype(np.uint8)
    return values, xmask


def _check_shapes(values: np.ndarray, xmask: np.ndarray, width: int) -> None:
    if values.ndim != 2 or values.shape != xmask.shape:
        raise ValueError("values and xmask must be equal-shape 2-D arrays")
    if values.shape[1] != width:
        raise ValueError(
            f"expected {width} response columns, got {values.shape[1]}"
        )


@dataclass(frozen=True)
class SpatialObservation:
    """Per-cycle compactor outputs plus which of them are unobservable."""

    bits: np.ndarray     # (cycles, pins) uint8
    masked: np.ndarray   # (cycles, pins) bool

    def matches(self, other: "SpatialObservation") -> bool:
        """Equal on every position observable in both observations."""
        if self.bits.shape != other.bits.shape:
            return False
        visible = ~(self.masked | other.masked)
        return bool(np.array_equal(self.bits[visible], other.bits[visible]))

    @property
    def observable_bits(self) -> int:
        """How many output bits the tester can actually compare."""
        return int((~self.masked).sum())


@dataclass(frozen=True)
class SignatureObservation:
    """A MISR signature plus how much response survived into it."""

    signature: int
    cycles_absorbed: int
    cycles_dropped: int

    def matches(self, other: "SignatureObservation") -> bool:
        """Signatures compare only when built from the same cycles."""
        return (self.signature == other.signature
                and self.cycles_absorbed == other.cycles_absorbed)


class ResponseCompactor:
    """Interface: a named compactor with a fixed output-pin count."""

    name = "identity"

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width

    @property
    def output_pins(self) -> int:
        """Output pins the compactor needs (the RPCT cost metric)."""
        return self.width

    def compact(self, values: np.ndarray, xmask: np.ndarray):
        """Compact a (cycles, width) response under a same-shape X mask."""
        raise NotImplementedError

    def compact_stream(self, responses: TernaryVector):
        """Convenience: compact a ternary stream of whole cycles."""
        values, xmask = split_ternary(responses, self.width)
        return self.compact(values, xmask)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(width={self.width})"


class SpatialXCompactor(ResponseCompactor):
    """XOR-tree spatial compactor defined by an :class:`XCodeMatrix`."""

    name = "xcompact"

    def __init__(self, matrix: XCodeMatrix):
        super().__init__(matrix.num_chains)
        self.matrix = matrix
        self.name = matrix.name
        self._array = matrix.to_array()  # (chains, outputs)

    @property
    def output_pins(self) -> int:
        return self.matrix.num_outputs

    def compact(self, values: np.ndarray, xmask: np.ndarray) -> SpatialObservation:
        _check_shapes(values, xmask, self.width)
        with _obs.span("compaction.spatial"):
            bits = (values.astype(np.int64) @ self._array) & 1
            masked = (xmask.astype(np.int64) @ self._array) > 0
            bits = np.where(masked, 0, bits).astype(np.uint8)
        if _obs.enabled():
            registry = _obs.get_registry()
            registry.counter("compaction.cycles").inc(values.shape[0])
            registry.counter("compaction.masked_outputs").inc(
                int(masked.sum())
            )
        return SpatialObservation(bits=bits, masked=masked)


class MISRCompactor(ResponseCompactor):
    """Unmasked MISR: cycles containing any X are dropped wholesale.

    A real unmasked MISR would absorb the X and carry an unknown state
    forever; the only recovery is to blank the offending cycle out of
    the test, which is exactly the detection loss modelled here.
    """

    name = "misr"

    def __init__(self, width: int, misr_width: int = 16,
                 taps: Optional[Sequence[int]] = None):
        super().__init__(width)
        self.misr_width = misr_width
        self.taps = tuple(taps) if taps is not None else tuple(
            default_taps(misr_width)
        )
        self._pad = (-width) % misr_width

    @property
    def output_pins(self) -> int:
        return 1  # the signature is shifted out serially after the test

    def _select(self, xmask: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over cycles: True where the cycle is clean."""
        return ~xmask.any(axis=1)

    def _masked_values(self, values: np.ndarray, xmask: np.ndarray) -> np.ndarray:
        return values

    def _pack_words(self, values: np.ndarray) -> np.ndarray:
        """Each cycle as MISR-width ints, MSB-first like :meth:`MISR.absorb`."""
        if self._pad:
            values = np.concatenate(
                [values,
                 np.zeros((values.shape[0], self._pad), dtype=np.uint8)],
                axis=1,
            )
        if values.shape[0] == 0:
            return np.zeros((0, values.shape[1] // self.misr_width),
                            dtype=np.int64)
        shaped = values.reshape(values.shape[0], -1, self.misr_width)
        weights = np.left_shift(
            1, np.arange(self.misr_width - 1, -1, -1, dtype=np.int64)
        )
        return shaped.astype(np.int64) @ weights

    def compact(self, values: np.ndarray, xmask: np.ndarray) -> SignatureObservation:
        _check_shapes(values, xmask, self.width)
        keep = self._select(xmask)
        usable = self._masked_values(values, xmask)
        with _obs.span("compaction.misr"):
            # Word-packed fast path: same recurrence as MISR.absorb, but
            # one int per word instead of one call per bit (the
            # differential test pins down the equivalence).
            w = self.misr_width
            state_mask = (1 << w) - 1
            tap_mask = 0
            for tap in self.taps:
                tap_mask |= 1 << (w - tap)
            kept_words = self._pack_words(usable[keep])
            state = 0
            for word in kept_words.reshape(-1).tolist():
                feedback = bin(state & tap_mask).count("1") & 1
                state = (((state >> 1) | (feedback << (w - 1)))
                         ^ word) & state_mask
            absorbed = int(kept_words.shape[0])
        dropped = values.shape[0] - absorbed
        if _obs.enabled():
            registry = _obs.get_registry()
            registry.counter("compaction.cycles").inc(values.shape[0])
            registry.counter("compaction.cycles_dropped").inc(dropped)
        return SignatureObservation(
            signature=state,
            cycles_absorbed=absorbed,
            cycles_dropped=dropped,
        )

    def reference_signature(self, values: np.ndarray,
                            xmask: np.ndarray) -> SignatureObservation:
        """Bit-at-a-time reference through :class:`MISR` (differential
        oracle for the packed fast path in :meth:`compact`)."""
        _check_shapes(values, xmask, self.width)
        keep = self._select(xmask)
        usable = self._masked_values(values, xmask)
        misr = MISR(self.misr_width, self.taps)
        absorbed = 0
        for index in np.flatnonzero(keep):
            row = usable[index]
            if self._pad:
                row = np.concatenate(
                    [row, np.zeros(self._pad, dtype=np.uint8)]
                )
            for start in range(0, row.shape[0], self.misr_width):
                misr.absorb(
                    [int(b) for b in row[start:start + self.misr_width]]
                )
            absorbed += 1
        return SignatureObservation(
            signature=misr.signature,
            cycles_absorbed=absorbed,
            cycles_dropped=values.shape[0] - absorbed,
        )


class MaskedMISRCompactor(MISRCompactor):
    """MISR with a per-bit X-masking front end (AND gates before the
    register): masked positions are forced to 0 on every machine, so
    the signature stays deterministic and only faults observable
    exclusively at masked positions are lost."""

    name = "masked-misr"

    def _select(self, xmask: np.ndarray) -> np.ndarray:
        return np.ones(xmask.shape[0], dtype=bool)

    def _masked_values(self, values: np.ndarray, xmask: np.ndarray) -> np.ndarray:
        return np.where(xmask, 0, values).astype(np.uint8)


#: Registry of compactor builders: name -> factory(num_chains).
def _build_xcompact(width: int) -> SpatialXCompactor:
    from .xcodes import xcompact_matrix

    return SpatialXCompactor(xcompact_matrix(width))


def _build_cw3(width: int) -> SpatialXCompactor:
    from .xcodes import constant_weight_matrix

    return SpatialXCompactor(constant_weight_matrix(width, weight=3))


COMPACTOR_KINDS = {
    "xcompact": _build_xcompact,
    "cw3": _build_cw3,
    "misr": lambda width: MISRCompactor(width),
    "masked-misr": lambda width: MaskedMISRCompactor(width),
}


def build_compactor(kind: str, width: int) -> ResponseCompactor:
    """Build a registered compactor by name for ``width`` scan outputs."""
    try:
        factory = COMPACTOR_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown compactor kind {kind!r}; available: "
            f"{', '.join(sorted(COMPACTOR_KINDS))}"
        ) from None
    return factory(width)


def default_compactors(width: int) -> List[ResponseCompactor]:
    """The standard sweep lineup, one of each discipline."""
    return [build_compactor(kind, width) for kind in
            ("misr", "masked-misr", "xcompact", "cw3")]
