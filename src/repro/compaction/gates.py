"""Emit compactors as gate-level netlists and cosimulate them.

Two emitters close the hardware half of the response side:

* :func:`compactor_netlist` — an :class:`XCodeMatrix` as balanced
  2-input XOR trees, one tree per output pin;
* :func:`misr_netlist` — the signature register as DFFs plus XOR
  feedback, the structural twin of :class:`repro.decompressor.MISR`.

Both are plain :class:`~repro.circuits.netlist.Netlist` objects, so the
existing three-valued simulator executes them and ``repro.lint``'s NL
rules apply unchanged (the emitters are registered in the lint runner's
artifact sweep).  The ``cosimulate_*`` helpers are the differential
oracles: they drive the same slices through the Python model and the
gate-level model and return every disagreement — the test suite and CI
assert the lists come back empty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Gate, GateType, Netlist
from ..circuits.simulator import output_values, simulate
from ..core.bitvec import ONE, X, ZERO, TernaryVector
from ..decompressor.misr import MISR, default_taps
from .compactor import SpatialXCompactor
from .xcodes import XCodeMatrix


def _xor_tree(gates: List[Gate], nets: Sequence[str], prefix: str) -> str:
    """Balanced 2-input XOR reduction; returns the root net name."""
    level = list(nets)
    stage = 0
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level) - 1, 2):
            name = f"{prefix}_x{stage}_{i // 2}"
            gates.append(Gate(name, GateType.XOR, (level[i], level[i + 1])))
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        stage += 1
    return level[0]


def compactor_netlist(matrix: XCodeMatrix,
                      name: Optional[str] = None) -> Netlist:
    """The spatial compactor as XOR trees: ``chain_i`` -> ``out_j``.

    Output ``out_j`` is the XOR of every chain with a 1 in column j of
    the matrix; single-chain columns become BUFs.  Matrix invariants
    (no zero row, no undriven column) are exactly what keeps the result
    free of NL005/NL007 findings.
    """
    inputs = [f"chain_{i}" for i in range(matrix.num_chains)]
    gates: List[Gate] = []
    outputs: List[str] = []
    for j, column in enumerate(matrix.columns()):
        out = f"out_{j}"
        feeds = [inputs[i] for i in column]
        if len(feeds) == 1:
            gates.append(Gate(out, GateType.BUF, (feeds[0],)))
        else:
            root = _xor_tree(gates, feeds, f"c{j}")
            gates.append(Gate(out, GateType.BUF, (root,)))
        outputs.append(out)
    return Netlist(name or f"{matrix.name}_{matrix.num_chains}",
                   inputs, outputs, gates)


def misr_netlist(width: int,
                 taps: Optional[Sequence[int]] = None,
                 name: Optional[str] = None) -> Netlist:
    """The MISR as a netlist: ``in_*`` response pins, ``m_*`` DFFs.

    State bit j's next value ``ns_j`` mirrors :meth:`MISR.absorb`:
    ``ns_j = m_{j+1} ^ in_{w-1-j}`` for j < w-1 and
    ``ns_{w-1} = feedback ^ in_0`` with the feedback the XOR of
    ``m_{w-tap}`` over the taps.  Under the full-scan convention the
    ``ns_j`` nets are the scan outputs, so one ``simulate`` call per
    cycle steps the register (see :func:`cosimulate_misr`).
    """
    taps = tuple(taps) if taps is not None else tuple(default_taps(width))
    if max(taps) != width:
        raise ValueError("taps must include the width")
    inputs = [f"in_{i}" for i in range(width)]
    gates: List[Gate] = []
    state = [f"m_{j}" for j in range(width)]
    feedback_nets = sorted({f"m_{width - tap}" for tap in taps})
    if len(feedback_nets) == 1:
        feedback = "fb"
        gates.append(Gate(feedback, GateType.BUF, (feedback_nets[0],)))
    else:
        feedback = _xor_tree(gates, feedback_nets, "fb")
    for j in range(width - 1):
        gates.append(Gate(f"ns_{j}", GateType.XOR,
                          (state[j + 1], f"in_{width - 1 - j}")))
    gates.append(Gate(f"ns_{width - 1}", GateType.XOR, (feedback, "in_0")))
    for j in range(width):
        gates.append(Gate(state[j], GateType.DFF, (f"ns_{j}",)))
    return Netlist(name or f"misr_w{width}", inputs, [], gates)


# ----------------------------------------------------------------------
# differential cosimulation: Python model vs emitted gates
# ----------------------------------------------------------------------

def _ternary(bits: Sequence[int]) -> TernaryVector:
    return TernaryVector(np.array(list(bits), dtype=np.uint8))


def cosimulate_compactor(
    netlist: Netlist,
    matrix: XCodeMatrix,
    slices: Sequence[Sequence[int]],
) -> List[str]:
    """Drive ternary slices through gates and model; list mismatches.

    The three-valued simulator's XOR X-propagation is exactly the
    masking rule of :class:`SpatialXCompactor` — an output touched by
    any X chain must come back X, every other output must equal the
    model's bit.
    """
    model = SpatialXCompactor(matrix)
    mismatches: List[str] = []
    for index, raw in enumerate(slices):
        bits = list(raw)
        if len(bits) != matrix.num_chains:
            raise ValueError(
                f"slice {index}: expected {matrix.num_chains} values"
            )
        xmask = np.array([b == X for b in bits], dtype=bool)[None, :]
        values = np.array(
            [0 if b == X else b for b in bits], dtype=np.uint8
        )[None, :]
        observation = model.compact(values, xmask)
        gate_out = output_values(netlist, simulate(netlist, _ternary(bits)))
        for j in range(matrix.num_outputs):
            expected = X if observation.masked[0, j] else int(
                observation.bits[0, j]
            )
            actual = int(gate_out[j])
            if actual != expected:
                mismatches.append(
                    f"slice {index} out_{j}: gates={actual} model={expected}"
                )
    return mismatches


def cosimulate_misr(
    netlist: Netlist,
    width: int,
    slices: Sequence[Sequence[int]],
    taps: Optional[Sequence[int]] = None,
) -> Tuple[List[str], int]:
    """Clock specified slices through the MISR gates vs the Python MISR.

    Returns (mismatches, gate_signature).  Slices must be fully
    specified — a real MISR has no X handling; that is the point of the
    spatial compactors.
    """
    taps = tuple(taps) if taps is not None else tuple(default_taps(width))
    model = MISR(width, taps)
    state = [ZERO] * width
    mismatches: List[str] = []
    for index, raw in enumerate(slices):
        bits = list(raw)
        if len(bits) != width:
            raise ValueError(f"slice {index}: expected {width} values")
        if any(b not in (ZERO, ONE) for b in bits):
            raise ValueError(f"slice {index}: MISR slices must be specified")
        model.absorb(bits)
        values = simulate(netlist, _ternary(list(bits) + state))
        state = [values[f"ns_{j}"] for j in range(width)]
        gate_sig = 0
        for j in range(width):
            gate_sig |= state[j] << j
        if gate_sig != model.signature:
            mismatches.append(
                f"cycle {index}: gates={gate_sig:#x} "
                f"model={model.signature:#x}"
            )
    gate_sig = 0
    for j in range(width):
        gate_sig |= state[j] << j
    return mismatches, gate_sig
