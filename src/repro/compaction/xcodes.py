"""X-code / X-compact matrix constructions with an exhaustive verifier.

A spatial response compactor is a binary matrix M with one row per scan
chain and one column per output pin: output j observes the XOR of every
chain i with M[i][j] = 1.  When a scan slice carries unknown (X) values,
every output touched by an X row is unobservable for that cycle; an
error on chain i is *detected* iff the XOR of the error rows has a 1 in
some column untouched by the X rows.

The (x, e)-detection property: for every set S of at most ``x`` X rows
and every disjoint set E of 1..``e`` error rows, ``xor(E)`` must have a
1 outside the union of the supports of S.  :func:`verify_x_code` proves
the property by exhaustive enumeration at small parameters — this is
the acceptance gate every shipped construction must pass.

Constructions:

* :func:`parity_matrix` — a single parity output (no X tolerance;
  the degenerate baseline);
* :func:`xcompact_matrix` — the Mitra–Kim X-Compact construction:
  distinct nonzero odd-weight rows over the fewest columns;
* :func:`constant_weight_matrix` — rows of one fixed weight chosen
  greedily under the exhaustive property check, after the
  combinatorial constant-weight X-code constructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class XCodeMatrix:
    """A compaction matrix: ``rows[i]`` is chain i's fanout as a bitmask.

    Bit j of ``rows[i]`` set means chain i drives output j.  The matrix
    is immutable; constructions guarantee every column is driven and
    every row is nonzero (an undriven output or unobserved chain would
    fail the netlist lint rules when emitted as gates).
    """

    name: str
    rows: Tuple[int, ...]
    num_outputs: int

    def __post_init__(self) -> None:
        if self.num_outputs < 1:
            raise ValueError("matrix needs at least one output")
        full = (1 << self.num_outputs) - 1
        union = 0
        for i, row in enumerate(self.rows):
            if row == 0:
                raise ValueError(f"row {i} is zero: chain {i} unobserved")
            if row & ~full:
                raise ValueError(f"row {i} exceeds {self.num_outputs} outputs")
            union |= row
        if union != full:
            raise ValueError("matrix has an undriven output column")

    @property
    def num_chains(self) -> int:
        """Number of scan chains (rows)."""
        return len(self.rows)

    def column(self, j: int) -> List[int]:
        """Indices of the chains feeding output ``j``."""
        return [i for i, row in enumerate(self.rows) if (row >> j) & 1]

    def columns(self) -> List[List[int]]:
        """Chain fanin of every output, in output order."""
        return [self.column(j) for j in range(self.num_outputs)]

    def to_array(self) -> np.ndarray:
        """The matrix as a (num_chains, num_outputs) uint8 array."""
        out = np.zeros((self.num_chains, self.num_outputs), dtype=np.uint8)
        for i, row in enumerate(self.rows):
            for j in range(self.num_outputs):
                out[i, j] = (row >> j) & 1
        return out

    def describe(self) -> str:
        """One-line summary used by the CLI report."""
        return (f"{self.name}: {self.num_chains} chains -> "
                f"{self.num_outputs} outputs")


@dataclass(frozen=True)
class XCodeViolation:
    """One counterexample to the (x, e)-detection property."""

    x_rows: Tuple[int, ...]
    error_rows: Tuple[int, ...]

    def __str__(self) -> str:
        return (f"errors on chains {list(self.error_rows)} are invisible "
                f"under Xs on chains {list(self.x_rows)}")


def verify_x_code(matrix: XCodeMatrix, x: int, e: int,
                  max_violations: int = 10) -> List[XCodeViolation]:
    """Exhaustively check the (x, e)-detection property.

    Returns the (possibly truncated) list of counterexamples; an empty
    list is the proof that every combination of at most ``x`` unknown
    chains and 1..``e`` simultaneously erroneous chains is detected.
    Complexity is C(n, x) * C(n-x, e), so keep the parameters small —
    that is the point: the guarantee is combinatorial, not statistical.
    """
    if x < 0 or e < 1:
        raise ValueError("need x >= 0 and e >= 1")
    n = matrix.num_chains
    violations: List[XCodeViolation] = []
    chains = range(n)
    for x_count in range(x + 1):
        for x_set in combinations(chains, x_count):
            masked = 0
            for i in x_set:
                masked |= matrix.rows[i]
            visible = ~masked
            free = [i for i in chains if i not in x_set]
            for e_count in range(1, e + 1):
                for e_set in combinations(free, e_count):
                    acc = 0
                    for i in e_set:
                        acc ^= matrix.rows[i]
                    if acc & visible == 0:
                        violations.append(XCodeViolation(x_set, e_set))
                        if len(violations) >= max_violations:
                            return violations
    return violations


def holds(matrix: XCodeMatrix, x: int, e: int) -> bool:
    """True when the (x, e)-detection property holds exhaustively."""
    return not verify_x_code(matrix, x, e, max_violations=1)


# ----------------------------------------------------------------------
# Constructions
# ----------------------------------------------------------------------

def parity_matrix(num_chains: int) -> XCodeMatrix:
    """All chains into one parity output — maximal compaction, zero
    X tolerance (a single X blinds the only output).  The baseline the
    X-codes are measured against."""
    if num_chains < 1:
        raise ValueError("need at least one chain")
    return XCodeMatrix("parity", (1,) * num_chains, 1)


def xcompact_matrix(num_chains: int) -> XCodeMatrix:
    """The Mitra–Kim X-Compact matrix: distinct rows of one odd weight.

    q is the smallest output count for which some odd weight w has
    C(q, w) >= num_chains rows available.  Equal-weight distinct rows
    cannot contain one another, so a single error row always keeps a 1
    outside a single X row's support — the (1, 1)-detection guarantee —
    and odd weight means no odd number of simultaneous chain errors can
    ever cancel to zero (so (0, 1) and (0, 2) hold too: two distinct
    rows XOR to a nonzero value).
    """
    if num_chains < 1:
        raise ValueError("need at least one chain")
    q = 2
    while True:
        # Prefer the odd weight with the most rows (closest to q/2).
        weights = sorted(
            range(1, q + 1, 2), key=lambda w: -_binomial(q, w)
        )
        w = weights[0]
        if _binomial(q, w) >= num_chains:
            break
        q += 1
    rows_list = []
    for support in combinations(range(q), w):
        value = 0
        for j in support:
            value |= 1 << j
        rows_list.append(value)
        if len(rows_list) == num_chains:
            break
    # Low chain counts can leave high columns undriven; trim them.
    rows, q = _trim_columns(tuple(rows_list), q)
    return XCodeMatrix("xcompact", rows, q)


def _binomial(n: int, k: int) -> int:
    """C(n, k) without importing math.comb (kept explicit for clarity)."""
    if k < 0 or k > n:
        return 0
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result


def constant_weight_matrix(num_chains: int, weight: int = 3,
                           x: int = 2, e: int = 1) -> XCodeMatrix:
    """Greedy constant-weight X-code: every row has ``weight`` ones and
    the (x, e)-detection property is maintained incrementally.

    Mirrors the combinatorial constant-weight constructions: fix the
    row weight, grow the output count q until ``num_chains`` rows fit.
    Each candidate row is admitted only if no combination involving it
    violates the property — so the returned matrix is correct by
    construction (and re-provable with :func:`verify_x_code`).
    """
    if num_chains < 1:
        raise ValueError("need at least one chain")
    if weight < 1:
        raise ValueError("weight must be >= 1")
    if x >= weight:
        raise ValueError(
            f"weight {weight} rows cannot tolerate x={x} unknowns; "
            "need weight > x"
        )
    # Disjoint rows always fit, so weight * num_chains outputs is a hard
    # upper bound on the q the greedy ever needs.
    q = max(weight, 2)
    while q <= weight * num_chains:
        rows = _grow_constant_weight(num_chains, weight, q, x, e)
        if rows is not None:
            trimmed, q_used = _trim_columns(rows, q)
            return XCodeMatrix(f"cw{weight}", trimmed, q_used)
        q += 1
    raise RuntimeError(  # pragma: no cover - the disjoint bound guarantees fit
        "constant-weight construction did not converge"
    )


def _grow_constant_weight(num_chains: int, weight: int, q: int,
                          x: int, e: int):
    """Try to place ``num_chains`` weight-``weight`` rows over q outputs.

    Admission is a partial-Steiner packing rule: any two rows may share
    at most ``(weight - 1) // x`` support positions, so ``x`` unknown
    rows cover at most ``x * t < weight`` points of any row — (x, 1)
    holds by construction.  For ``e > 1`` the surviving candidates are
    additionally checked exactly against the new-row combinations.
    """
    if weight > q:
        return None
    limit = (weight - 1) // x if x else weight
    rows: List[int] = []
    supports: List[frozenset] = []
    for support in combinations(range(q), weight):
        sset = frozenset(support)
        if any(len(sset & other) > limit for other in supports):
            continue
        candidate = 0
        for j in support:
            candidate |= 1 << j
        if e > 1 and not _admissible(rows, candidate, x, e):
            continue
        rows.append(candidate)
        supports.append(sset)
        if len(rows) == num_chains:
            return tuple(rows)
    return None


def _admissible(rows: Sequence[int], candidate: int, x: int, e: int) -> bool:
    """Exact check: does adding ``candidate`` preserve (x, e)-detection?

    Only combinations that involve the new row need checking — the
    existing rows were admitted under the same invariant.
    """
    trial = list(rows) + [candidate]
    new = len(trial) - 1
    indices = range(len(trial))
    for x_count in range(x + 1):
        for x_set in combinations(indices, x_count):
            free = [i for i in indices if i not in x_set]
            for e_count in range(1, e + 1):
                for e_set in combinations(free, e_count):
                    if new not in x_set and new not in e_set:
                        continue
                    masked = 0
                    for i in x_set:
                        masked |= trial[i]
                    acc = 0
                    for i in e_set:
                        acc ^= trial[i]
                    if acc & ~masked == 0:
                        return False
    return True


def _trim_columns(rows: Tuple[int, ...], q: int) -> Tuple[Tuple[int, ...], int]:
    """Drop undriven output columns, renumbering the survivors."""
    union = 0
    for row in rows:
        union |= row
    keep = [j for j in range(q) if (union >> j) & 1]
    if len(keep) == q:
        return rows, q
    remap = {j: new for new, j in enumerate(keep)}
    trimmed = []
    for row in rows:
        out = 0
        for j in keep:
            if (row >> j) & 1:
                out |= 1 << remap[j]
        trimmed.append(out)
    return tuple(trimmed), len(keep)


#: Registry of named constructions: name -> factory(num_chains).
MATRIX_KINDS: Dict[str, Callable[[int], XCodeMatrix]] = {
    "parity": parity_matrix,
    "xcompact": xcompact_matrix,
    "cw3": lambda n: constant_weight_matrix(n, weight=3),
}


def build_matrix(kind: str, num_chains: int) -> XCodeMatrix:
    """Build a registered matrix construction by name."""
    try:
        factory = MATRIX_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown matrix kind {kind!r}; available: "
            f"{', '.join(sorted(MATRIX_KINDS))}"
        ) from None
    return factory(num_chains)
