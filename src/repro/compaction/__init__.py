"""X-tolerant response compaction: the output side of reduced pin count.

The paper compresses stimulus through one pin; this package closes the
loop on the response side.  :mod:`~repro.compaction.xcodes` constructs
and exhaustively verifies X-code matrices, :mod:`.compactor` puts the
spatial X-compactor and the MISR behind one interface with an X-masking
front end, :mod:`.sweep` measures detection loss across X density, and
:mod:`.gates` emits the compactors as lint-clean netlists cosimulated
against the Python models.
"""

from .compactor import (
    COMPACTOR_KINDS,
    MaskedMISRCompactor,
    MISRCompactor,
    ResponseCompactor,
    SignatureObservation,
    SpatialObservation,
    SpatialXCompactor,
    build_compactor,
    default_compactors,
    split_ternary,
)
from .gates import (
    compactor_netlist,
    cosimulate_compactor,
    cosimulate_misr,
    misr_netlist,
)
from .sweep import (
    DEFAULT_DENSITIES,
    CompactionReport,
    SweepPoint,
    XPlacement,
    response_matrix,
    run_sweep,
)
from .xcodes import (
    MATRIX_KINDS,
    XCodeMatrix,
    XCodeViolation,
    build_matrix,
    constant_weight_matrix,
    holds,
    parity_matrix,
    verify_x_code,
    xcompact_matrix,
)

__all__ = [
    "COMPACTOR_KINDS",
    "CompactionReport",
    "DEFAULT_DENSITIES",
    "MATRIX_KINDS",
    "MISRCompactor",
    "MaskedMISRCompactor",
    "ResponseCompactor",
    "SignatureObservation",
    "SpatialObservation",
    "SpatialXCompactor",
    "SweepPoint",
    "XCodeMatrix",
    "XCodeViolation",
    "XPlacement",
    "build_compactor",
    "build_matrix",
    "compactor_netlist",
    "constant_weight_matrix",
    "cosimulate_compactor",
    "cosimulate_misr",
    "default_compactors",
    "holds",
    "misr_netlist",
    "parity_matrix",
    "response_matrix",
    "run_sweep",
    "split_ternary",
    "verify_x_code",
    "xcompact_matrix",
]
