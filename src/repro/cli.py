"""Command-line interface: ``repro-9c``.

Subcommands mirror the paper's artifacts:

* ``coding-table`` — print Table I for a chosen K;
* ``compress`` / ``decompress`` — run 9C on a test-set file;
* ``sweep`` — CR%/LX% across block sizes (Tables II/III row);
* ``compare`` — 9C vs the baseline codes (Table IV row);
* ``tat`` — test-application-time analysis (Table V row);
* ``atpg`` — generate test cubes for an embedded circuit and
  optionally compress them end-to-end;
* ``resilience`` — channel-fault injection campaign: detection rate vs
  silent-escape rate on the single-pin ATE link (docs/resilience.md);
* ``compact`` — X-tolerant response-compaction sweep: detection loss
  across X density for every compactor, plus exhaustive X-code
  property verification (docs/compaction.md);
* ``profile`` — run the perf-baseline scenarios and write
  ``BENCH_obs.json`` (docs/observability.md);
* ``stats`` — pretty-print the metrics snapshot of a committed baseline;
* ``lint`` — static verification of netlists, the decoder FSM, emitted
  RTL, and the Python codebase itself (docs/lint.md);
* ``serve`` / ``loadgen`` — the fault-tolerant compression service and
  its closed-loop load generator (docs/serving.md);
* ``trace`` — run traced requests and export merged per-request span
  trees as Chrome trace-event JSON (docs/observability.md);
* ``regress`` — noise-aware perf gate: fresh profile runs compared
  against a committed ``BENCH_*.json`` baseline, appending to
  ``BENCH_trajectory.json``; nonzero exit on regression.

Every analysis subcommand accepts ``--json`` for machine-readable
output; all of them emit through the shared :func:`emit_json` helper
(stable key order, two-space indent).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.report import Table
from .analysis.tat import sweep_p
from .codes import table4_codes
from .core.codewords import coding_table
from .core.decoder import NineCDecoder
from .core.encoder import NineCEncoder
from .core.metrics import sweep_block_sizes
from .compaction.compactor import COMPACTOR_KINDS
from .robust.channel import CHANNEL_KINDS
from .robust.framing import DEFAULT_BLOCKS_PER_FRAME
from .testdata.mintest import ALL_PROFILES, TABLE2_BLOCK_SIZES, load_benchmark
from .testdata.testset import TestSet


def _load_data(args) -> TestSet:
    if getattr(args, "benchmark", None):
        return load_benchmark(args.benchmark)
    if getattr(args, "input", None):
        return TestSet.load(args.input)
    raise SystemExit("provide --benchmark or an input file")


def emit_json(payload: dict) -> int:
    """Print one machine-readable result; shared by every ``--json`` path.

    Keys are sorted so output is diff-stable across runs and Python
    versions.
    """
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_coding_table(args) -> int:
    table = Table(
        ["case", "input block", "symbol", "codeword", "decoder input",
         "size (bits)"],
        title=f"9C coding for K={args.k} (paper Table I)",
    )
    for row in coding_table(args.k):
        table.add_row(row.case.name, row.input_block, row.symbol,
                      row.codeword, row.decoder_input, row.size_bits)
    print(table.render())
    return 0


def cmd_compress(args) -> int:
    test_set = _load_data(args)
    if args.workers > 1:
        from .parallel import parallel_encode

        encoding = parallel_encode(
            test_set.to_stream(), args.k, workers=args.workers
        )
    else:
        encoding = NineCEncoder(args.k).encode(test_set.to_stream())
    if args.output:
        TestSet([encoding.stream], name="compressed").save(args.output)
    if args.json:
        return emit_json({
            "name": test_set.name or args.input,
            "k": args.k,
            "td_bits": encoding.original_length,
            "te_bits": encoding.compressed_size,
            "cr_percent": encoding.compression_ratio,
            "leftover_x": encoding.leftover_x,
            "leftover_x_percent": encoding.leftover_x_percent,
            "workers": args.workers,
            "output": args.output,
        })
    print(f"test set      : {test_set.name or args.input}")
    print(f"|T_D|         : {encoding.original_length} bits")
    print(f"|T_E|         : {encoding.compressed_size} bits")
    print(f"CR%           : {encoding.compression_ratio:.2f}")
    print(f"leftover X    : {encoding.leftover_x} "
          f"({encoding.leftover_x_percent:.2f}% of T_D)")
    if args.output:
        print(f"stream written: {args.output}")
    return 0


def cmd_decompress(args) -> int:
    stream_set = TestSet.load(args.input)
    stream = stream_set.to_stream()
    if args.workers > 1 and args.reference:
        raise SystemExit("--workers requires the fast path (not --reference)")
    if args.workers > 1:
        from .parallel import parallel_decode

        decoded = parallel_decode(
            stream, args.k, output_length=args.length, workers=args.workers
        )
        path = f"fast, {args.workers} workers"
    else:
        decoded = NineCDecoder(args.k).decode_stream(
            stream, output_length=args.length, fast=not args.reference
        )
        path = "reference" if args.reference else "fast"
    out = TestSet.from_stream(decoded, args.cells, name="decompressed")
    out.save(args.output)
    print(f"decoded {len(decoded)} bits into {out.num_patterns} patterns "
          f"({path} path) -> {args.output}")
    return 0


def cmd_sweep(args) -> int:
    test_set = _load_data(args)
    data = test_set.to_stream()
    reports = sweep_block_sizes(data, TABLE2_BLOCK_SIZES)
    if args.json:
        return emit_json({
            "name": test_set.name,
            "td_bits": len(data),
            "sweep": {
                str(k): {
                    "cr_percent": report.compression_ratio,
                    "lx_percent": report.leftover_x_percent,
                    "te_bits": report.compressed_size,
                }
                for k, report in sorted(reports.items())
            },
        })
    table = Table(["K", "CR%", "LX%", "|T_E|"],
                  title=f"{test_set.name}: block-size sweep (Tables II/III)")
    for k, report in sorted(reports.items()):
        table.add_row(k, report.compression_ratio,
                      report.leftover_x_percent, report.compressed_size)
    print(table.render())
    return 0


def cmd_compare(args) -> int:
    test_set = _load_data(args)
    data = test_set.to_stream()
    results = {
        name: {"code": code.name, "cr_percent": code.compression_ratio(data)}
        for name, code in table4_codes(data).items()
    }
    if args.json:
        return emit_json({"name": test_set.name, "codes": results})
    table = Table(["code", "CR%"],
                  title=f"{test_set.name}: code comparison (Table IV)")
    for name, entry in results.items():
        table.add_row(f"{name} [{entry['code']}]", entry["cr_percent"])
    print(table.render())
    return 0


def cmd_tat(args) -> int:
    test_set = _load_data(args)
    data = test_set.to_stream()
    reports = sweep_p(data, args.k, ps=tuple(args.p))
    if args.json:
        return emit_json({
            "name": test_set.name,
            "k": args.k,
            "tat": {
                str(p): {"tat_percent": report.tat_percent,
                         "cr_percent": report.compression_ratio}
                for p, report in sorted(reports.items())
            },
        })
    table = Table(["p (f_scan/f_ate)", "TAT%", "CR%"],
                  title=f"{test_set.name}: TAT analysis at K={args.k} (Table V)")
    for p, report in sorted(reports.items()):
        table.add_row(p, report.tat_percent, report.compression_ratio)
    print(table.render())
    return 0


def cmd_atpg(args) -> int:
    from .atpg.flow import generate_test_cubes
    from .circuits.library import available_circuits, load_circuit

    if args.circuit not in available_circuits():
        raise SystemExit(
            f"unknown circuit {args.circuit!r}; available: "
            f"{', '.join(available_circuits())}"
        )
    circuit = load_circuit(args.circuit)
    result = generate_test_cubes(circuit, backtrack_limit=args.backtrack_limit)
    print(f"circuit        : {circuit!r}")
    print(f"collapsed fault: {result.statistics['collapsed_faults']}")
    print(f"fault coverage : {result.fault_coverage:.2f}%")
    print(f"test efficiency: {result.test_efficiency:.2f}%")
    print(f"patterns       : {len(result.test_set)} "
          f"(X density {result.test_set.x_density * 100:.1f}%)")
    if args.output:
        result.test_set.save(args.output)
        print(f"cubes written  : {args.output}")
    if args.k:
        encoding = NineCEncoder(args.k).encode(result.test_set.to_stream())
        print(f"9C @ K={args.k}     : CR {encoding.compression_ratio:.2f}%, "
              f"LX {encoding.leftover_x_percent:.2f}%")
    return 0


def cmd_freq(args) -> int:
    from .core.frequency import frequency_directed

    test_set = _load_data(args)
    data = test_set.to_stream()
    table = Table(["K", "CR% default", "CR% reassigned", "gain (pp)"],
                  precision=3,
                  title=f"{test_set.name}: frequency-directed re-assignment "
                        "(Table VII)")
    for k in (4, 8, 12, 16, 20, 24, 28, 32):
        result = frequency_directed(data, k)
        table.add_row(k, result.baseline.compression_ratio,
                      result.final.compression_ratio, result.improvement)
    print(table.render())
    return 0


def cmd_efficiency(args) -> int:
    from .analysis.entropy import coding_efficiency

    test_set = _load_data(args)
    report = coding_efficiency(test_set.to_stream(), args.k)
    print(f"test set            : {test_set.name or args.input}")
    print(f"blocks              : {report.blocks}")
    print(f"codeword bits       : {report.actual_codeword_bits}")
    print(f"huffman-optimal bits: {report.huffman_codeword_bits}")
    print(f"entropy bound bits  : {report.entropy_bound_bits:.1f}")
    print(f"efficiency (huffman): {report.efficiency_vs_huffman:.4f}")
    print(f"efficiency (entropy): {report.efficiency_vs_entropy:.4f}")
    return 0


def cmd_rtl(args) -> int:
    from pathlib import Path

    from .decompressor.verilog import (
        generate_decoder_verilog,
        generate_multiscan_verilog,
    )

    if args.structural:
        if args.chains > 1:
            raise SystemExit(
                "rtl: --structural emits the single-scan gate netlist "
                "(--chains must be 1)"
            )
        from .decompressor.gates import decoder_netlist
        from .rtl.emit import netlist_to_verilog

        rtl = netlist_to_verilog(decoder_netlist(args.k))
    elif args.chains > 1:
        rtl = generate_multiscan_verilog(args.k, args.chains)
    else:
        rtl = generate_decoder_verilog(args.k)
    if args.output:
        Path(args.output).write_text(rtl)
        print(f"RTL written: {args.output}")
    else:
        print(rtl)
    return 0


def cmd_import_rtl(args) -> int:
    from pathlib import Path

    from .lint.findings import Severity
    from .lint.runner import DECODER_NETLIST_WAIVERS
    from .rtl.elaborate import ElaborationError, elaborate
    from .rtl.parser import RTLParseError, parse_verilog

    as_json = args.format == "json"

    def operational_error(stage: str, message: str,
                          line: Optional[int] = None) -> int:
        if as_json:
            error: dict = {"command": "import-rtl", "stage": stage,
                           "message": message}
            if line is not None:
                error["line"] = line
            emit_json({"error": error})
            return 2
        where = f"{args.file}:{line}" if line is not None else args.file
        raise SystemExit(f"import-rtl: {stage}: {where}: {message}")

    try:
        text = Path(args.file).read_text()
    except OSError as exc:
        return operational_error("read", str(exc))
    try:
        design = parse_verilog(text)
    except RTLParseError as exc:
        return operational_error("parse", exc.reason, exc.line)
    try:
        elaboration = elaborate(design, top=args.top)
    except ElaborationError as exc:
        line = exc.loc.line if exc.loc is not None else None
        return operational_error("elaborate", str(exc), line)

    artifact = f"import:{elaboration.top}"
    payload: dict = {
        "file": args.file,
        "top": elaboration.top,
        "stats": elaboration.stats(),
        "clocks": list(elaboration.clocks),
        "implicit_nets": list(elaboration.implicit_nets),
    }
    failed = False

    if args.lint:
        from .lint.netlist import lint_netlist

        findings = lint_netlist(
            elaboration.raw, artifact=artifact,
            waive=DECODER_NETLIST_WAIVERS if args.waive_shifter else (),
        )
        error_count = sum(
            1 for f in findings if f.severity is Severity.ERROR
        )
        payload["lint"] = {
            "findings": [f.to_dict() for f in findings],
            "errors": error_count,
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
        }
        failed = failed or error_count > 0
        if not as_json:
            for finding in findings:
                print(finding.render())

    if args.equiv:
        from .rtl.equiv import run_equiv

        try:
            netlist = elaboration.netlist()
        except ValueError as exc:
            return operational_error("netlist", str(exc))
        equiv_report = run_equiv(
            args.k, seed=args.seed, vectors=args.vectors,
            netlist=netlist,
        )
        payload["equiv"] = equiv_report.to_dict()
        failed = failed or not equiv_report.ok
        if not as_json:
            print(equiv_report.render())

    if as_json:
        emit_json(payload)
    else:
        stats = " ".join(f"{k}={v}" for k, v in payload["stats"].items())
        print(f"imported {elaboration.top} from {args.file}: {stats}")
    return 1 if failed else 0


def cmd_adaptive(args) -> int:
    from .core.adaptive import AdaptiveNineCEncoder

    test_set = _load_data(args)
    data = test_set.to_stream()
    codec = AdaptiveNineCEncoder(window_bits=args.window)
    encoding = codec.encode(data)
    fixed = {
        k: NineCEncoder(k).measure(data).compression_ratio
        for k in codec.menu
    }
    best_k = max(fixed, key=fixed.get)
    table = Table(["scheme", "CR%"],
                  title=f"{test_set.name}: adaptive-K vs fixed K "
                        f"(window {args.window} bits)")
    for k in codec.menu:
        table.add_row(f"fixed K={k}", fixed[k])
    table.add_row("adaptive", encoding.compression_ratio)
    print(table.render())
    from collections import Counter

    counts = Counter(encoding.window_ks)
    print("window choices:",
          ", ".join(f"K={k}: {n}" for k, n in sorted(counts.items())))
    print(f"best fixed: K={best_k} at {fixed[best_k]:.2f}%")
    return 0


def cmd_system(args) -> int:
    from .circuits.library import available_circuits, load_circuit
    from .system import TestSession

    if args.circuit not in available_circuits():
        raise SystemExit(
            f"unknown circuit {args.circuit!r}; available: "
            f"{', '.join(available_circuits())}"
        )
    circuit = load_circuit(args.circuit)
    session = TestSession(circuit, k=args.k, p=args.p,
                          misr_width=args.misr_width).prepare()
    golden = session.run()
    print(f"circuit          : {circuit!r}")
    print(f"patterns         : {golden.patterns_applied}")
    print(f"CR%              : {golden.compression_ratio:.2f}")
    print(f"SoC cycles       : {golden.soc_cycles}")
    print(f"golden signature : 0x{golden.signature:0{args.misr_width // 4}x}")
    sample = session.atpg_result.detected[: args.screen]
    if sample:
        results = session.screen(sample)
        caught = sum(results.values())
        print(f"defect screening : {caught}/{len(sample)} injected faults "
              f"caught by the signature")
    return 0


def cmd_resilience(args) -> int:
    from .analysis.resilience import resilience_table
    from .circuits.library import available_circuits, load_circuit
    from .robust import run_campaign

    if args.circuit not in available_circuits():
        raise SystemExit(
            f"unknown circuit {args.circuit!r}; available: "
            f"{', '.join(available_circuits())}"
        )
    circuit = load_circuit(args.circuit)
    try:
        report = run_campaign(
            circuit,
            k=args.k,
            error_rates=args.error_rate,
            trials=args.trials,
            framed=not args.no_framing,
            blocks_per_frame=args.blocks_per_frame,
            channel=args.channel,
            seed=args.seed,
            circuit_name=args.circuit,
        )
    except ValueError as exc:
        raise SystemExit(f"resilience: {exc}") from None
    if args.json:
        return emit_json(report.to_dict())
    print(resilience_table(report).render())
    print(f"stream length     : {report.stream_bits} bits "
          f"({'framed' if report.framed else 'raw'})")
    print(f"detection rate    : {report.overall_detection_rate * 100:.2f}% "
          "of corrupted streams caught (stream layer or signature)")
    print(f"silent escape rate: "
          f"{report.overall_silent_escape_rate * 100:.2f}% "
          "of corrupted streams still reported PASS")
    return 0


def cmd_compact(args) -> int:
    from .circuits.library import available_circuits, load_circuit
    from .compaction import (
        build_compactor,
        build_matrix,
        default_compactors,
        run_sweep,
        verify_x_code,
    )

    if args.circuit not in available_circuits():
        raise SystemExit(
            f"unknown circuit {args.circuit!r}; available: "
            f"{', '.join(available_circuits())}"
        )
    circuit = load_circuit(args.circuit)
    width = len(circuit.scan_outputs)
    try:
        compactors = (
            [build_compactor(kind, width) for kind in args.compactor]
            if args.compactor else default_compactors(width)
        )
        report = run_sweep(
            circuit,
            compactors,
            densities=tuple(args.x_density),
            max_faults=args.faults,
            seed=args.seed,
            circuit_name=args.circuit,
        )
    except ValueError as exc:
        raise SystemExit(f"compact: {exc}") from None

    # Exhaustive (x, e)-property verification of the shipped matrix
    # constructions at small parameters — the combinatorial guarantee
    # behind the sweep numbers (and the CI gate).
    checks = []
    for kind, x, e in (("parity", 0, 1), ("xcompact", 1, 1), ("cw3", 2, 1)):
        matrix = build_matrix(kind, 8)
        violations = verify_x_code(matrix, x, e)
        checks.append({
            "matrix": kind,
            "num_chains": matrix.num_chains,
            "num_outputs": matrix.num_outputs,
            "x": x,
            "e": e,
            "holds": not violations,
            "violations": [str(v) for v in violations],
        })

    payload = report.to_baseline_dict(k=args.k)
    payload["scenarios"]["compaction"]["extra"]["xcode_checks"] = checks
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        return emit_json(payload)
    table = Table(
        ["X density", "compactor", "pins", "detected", "detection %",
         "escape %"],
        title=f"{args.circuit}: response-compaction sweep "
              f"({report.baseline_detected} baseline-detected faults)",
    )
    for point in report.points:
        table.add_row(
            point.density, point.compactor, point.output_pins,
            f"{point.detected}/{point.sample_size}",
            point.detection_rate * 100, point.silent_escape_rate * 100,
        )
    print(table.render())
    for check in checks:
        status = "holds" if check["holds"] else "VIOLATED"
        print(f"({check['x']}, {check['e']})-detection on "
              f"{check['matrix']} [{check['num_chains']} chains -> "
              f"{check['num_outputs']} outputs]: {status} "
              "(exhaustive)")
    if args.output:
        print(f"report written: {args.output}")
    return 0 if all(check["holds"] for check in checks) else 1


def cmd_profile(args) -> int:
    from .obs.profile import SCENARIOS, run_profile

    try:
        report = run_profile(
            args.circuit,
            k=args.k,
            scenarios=tuple(args.scenarios) if args.scenarios else SCENARIOS,
            session_circuit=args.session_circuit,
            resilience_trials=args.trials,
            fastpath_compare=not args.no_fastpath,
            decode_fast=not args.reference,
        )
    except ValueError as exc:
        raise SystemExit(f"profile: {exc}") from None
    path = report.write(args.output)
    if args.json:
        return emit_json(report.to_dict())
    table = Table(
        ["scenario", "wall (s)", "bits", "bits/s"],
        title=f"{args.circuit}: pipeline perf baselines (K={args.k})",
    )
    for name, scenario in report.scenarios.items():
        table.add_row(name, scenario.wall_s, scenario.bits,
                      scenario.bits_per_s)
    print(table.render())
    if report.encode_fastpath:
        fast = report.encode_fastpath
        print(f"encode fast path  : {fast['speedup']:.1f}x vs reference "
              f"({fast['vectorized_wall_s'] * 1e3:.2f} ms vs "
              f"{fast['reference_wall_s'] * 1e3:.2f} ms on "
              f"{fast['bits']} bits, identical output: "
              f"{fast['identical_output']})")
    decode = report.scenarios.get("decode")
    if decode and "speedup" in decode.extra:
        fast = decode.extra
        print(f"decode fast path  : {fast['speedup']:.1f}x vs reference "
              f"({fast['vectorized_wall_s'] * 1e3:.2f} ms vs "
              f"{fast['reference_wall_s'] * 1e3:.2f} ms on "
              f"{fast['bits']} bits, identical output: "
              f"{fast['identical_output']})")
    print(f"baseline written  : {path}")
    return 0


def cmd_stats(args) -> int:
    from .obs.profile import load_baseline, validate_baseline

    try:
        payload = load_baseline(args.baseline)
    except FileNotFoundError:
        raise SystemExit(
            f"stats: no baseline at {args.baseline!r}; run "
            "`repro-9c profile` first"
        ) from None
    except ValueError as exc:
        raise SystemExit(
            f"stats: {args.baseline!r} is not JSON: {exc}"
        ) from None
    problems = validate_baseline(payload)
    if problems:
        raise SystemExit(
            "stats: invalid baseline:\n  " + "\n  ".join(problems)
        )
    scenarios = payload["scenarios"]
    wanted = args.scenario or sorted(scenarios)
    unknown = [name for name in wanted if name not in scenarios]
    if unknown:
        raise SystemExit(
            f"stats: no scenario {unknown} in baseline; "
            f"available: {sorted(scenarios)}"
        )
    if args.json:
        return emit_json({name: scenarios[name]["metrics"]
                          for name in wanted})
    print(f"baseline: {args.baseline} (target {payload['target']}, "
          f"K={payload['k']})")
    for name in wanted:
        record = scenarios[name]
        metrics = record["metrics"]
        table = Table(
            ["metric", "value"],
            title=f"{name}: {record['wall_s'] * 1e3:.2f} ms, "
                  f"{record['bits_per_s'] / 1e3:.1f} kbit/s",
        )
        for metric, value in metrics.get("counters", {}).items():
            table.add_row(metric, value)
        for metric, value in metrics.get("gauges", {}).items():
            table.add_row(f"{metric} (gauge)", value)
        for metric, hist in metrics.get("histograms", {}).items():
            buckets = ", ".join(f"{edge}:{count}"
                                for edge, count in hist["buckets"].items()
                                if count)
            table.add_row(f"{metric} (hist)", buckets or "empty")
        print(table.render())
    return 0


def cmd_lint(args) -> int:
    from .lint import run_lint

    try:
        report = run_lint(
            only=args.only,
            ks=tuple(args.k),
            circuits=args.circuit,
        )
    except ValueError as exc:
        raise SystemExit(f"lint: {exc}") from None
    if args.format == "json":
        emit_json(report.to_dict())
    else:
        print(report.render())
    return report.exit_code


def cmd_serve(args) -> int:
    import asyncio

    from .serve import CompressionService, ServeServer, ServiceConfig

    config = ServiceConfig(
        k=args.k,
        executor=args.executor,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        allow_chaos=args.chaos,
    )

    async def run() -> None:
        server = ServeServer(CompressionService(config), args.host, args.port)
        await server.start()
        print(f"repro-9c serve: listening on {server.host}:{server.port} "
              f"(executor={config.executor}, workers={config.workers}, "
              f"chaos={'on' if config.allow_chaos else 'off'})",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_loadgen(args) -> int:
    import asyncio

    from .serve.loadgen import run_loadgen
    from .serve.server import TCPClient

    async def factory() -> TCPClient:
        client = TCPClient(args.host, args.port)
        await client.connect()
        return client

    crashes = sum(1 for name in (args.inject or []) if name == "worker-crash")
    report = asyncio.run(run_loadgen(
        factory,
        circuit=args.circuit,
        k=args.k,
        requests=args.requests,
        concurrency=args.concurrency,
        batch=args.batch,
        mix=args.mix,
        request_deadline_ms=args.deadline_ms,
        inject_worker_crashes=crashes,
    ))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_baseline_dict(), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
    stats = report.stats()
    if args.json:
        emit_json({**stats, "passed": report.passed,
                   "violation_details": report.violations,
                   "output": args.output})
    else:
        print(f"loadgen {report.circuit} K={report.k}: "
              f"{stats['requests']} requests @ concurrency "
              f"{stats['concurrency']}, batch {stats['batch']}")
        print(f"  ok {stats['ok']}  degraded {stats['degraded']}  "
              f"errors {stats['errors']}  shed {stats['shed']}")
        print(f"  p50 {stats['p50_ms']:.2f} ms  p95 {stats['p95_ms']:.2f} ms  "
              f"p99 {stats['p99_ms']:.2f} ms  ({stats['rps']:.0f} req/s)")
        print(f"  cache hit rate {stats['cache_hit_rate'] * 100:.1f}%")
        if report.violations:
            print(f"  VIOLATIONS ({len(report.violations)}):")
            for violation in report.violations:
                print(f"    - {violation}")
        if args.output:
            print(f"  report written: {args.output}")
    return 0 if report.passed else 1


def cmd_trace(args) -> int:
    import asyncio

    from .obs.tracing import chrome_trace
    from .serve import CompressionService, ServiceConfig
    from .serve.server import Client, TCPClient

    async def run() -> dict:
        service = None
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            if not port.isdigit():
                raise SystemExit(
                    f"trace: --connect wants HOST:PORT, got {args.connect!r}"
                )
            client = TCPClient(host or "127.0.0.1", int(port))
            await client.connect()
        else:
            service = CompressionService(ServiceConfig(
                k=args.k, executor=args.executor, workers=args.workers,
            ))
            await service.start()
            client = Client(service)
        try:
            if args.requests:
                from .atpg.flow import generate_test_cubes
                from .circuits.library import load_circuit

                data = generate_test_cubes(
                    load_circuit(args.circuit)).test_set.to_stream()
                encoding = NineCEncoder(args.k).encode(data)
                stream = encoding.stream.to_string()
                for index in range(args.requests):
                    if index % 2 == 0:
                        response = await client.call(
                            "compress", {"circuit": args.circuit, "k": args.k}
                        )
                    else:
                        response = await client.call("decompress", {
                            "stream": stream, "k": args.k,
                            "output_length": encoding.original_length,
                        })
                    if not response.get("ok"):
                        raise SystemExit(
                            f"trace: request failed: {response.get('error')}"
                        )
            params: dict = {"limit": args.limit}
            if args.trace_id:
                params["trace_id"] = args.trace_id
            response = await client.call("trace", params)
        finally:
            await client.close()
            if service is not None:
                await service.close()
        if not response.get("ok"):
            raise SystemExit(f"trace: {response.get('error')}")
        return response["result"]

    result = asyncio.run(run())
    if not result["traces"]:
        note = ("the server runs with tracing disabled"
                if not result.get("tracing") else "no traces recorded yet")
        raise SystemExit(f"trace: nothing to export ({note})")
    if args.format == "chrome":
        # snapshot is most-recent-first; reverse so Perfetto lanes read
        # in chronological order
        payload = chrome_trace([
            {"name": f"{t['op']} {t['trace_id']}", "events": t["events"]}
            for t in reversed(result["traces"])
        ])
    else:
        payload = result
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"trace: wrote {len(result['traces'])} trace(s) to "
              f"{args.output} ({args.format})")
    else:
        print(text)
    return 0


def cmd_regress(args) -> int:
    from .obs.regress import run_regress

    try:
        report = run_regress(
            args.baseline,
            target=args.circuit,
            k=args.k,
            tolerance=args.tolerance,
            repeats=args.repeats,
            scenarios=args.scenario,
            trajectory_path=None if args.no_trajectory else args.trajectory,
        )
    except ValueError as exc:
        raise SystemExit(f"regress: {exc}") from None
    if args.json:
        emit_json(report.to_dict())
    else:
        table = Table(
            ["scenario", "baseline", "fresh (median)", "ratio", "verdict"],
            title=f"perf gate: {report.target} K={report.k} vs "
                  f"{report.baseline_path} "
                  f"(tolerance {report.tolerance:.0%}, "
                  f"{report.repeats} repeats)",
        )
        for name, comparison in sorted(report.comparisons.items()):
            table.add_row(
                name,
                f"{comparison.baseline_wall_s:.6f}",
                f"{comparison.fresh_wall_s:.6f}",
                f"{comparison.ratio:.2f}x",
                "REGRESSED" if comparison.regressed
                else ("skipped" if "skipped" in comparison.note else "ok"),
            )
        print(table.render())
        if not args.no_trajectory:
            print(f"trajectory appended: {args.trajectory}")
        print("verdict: " + ("REGRESSED" if report.regressed else "ok"))
    return 1 if report.regressed else 0


def cmd_benchmarks(_args) -> int:
    table = Table(["name", "cells", "patterns", "|T_D|", "X%"],
                  title="available benchmark profiles")
    for name, profile in sorted(ALL_PROFILES.items()):
        table.add_row(name, profile.num_cells, profile.num_patterns,
                      profile.total_bits, profile.x_density * 100)
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-9c",
        description="9C test-data compression (DATE 2004) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("coding-table", help="print Table I for a given K")
    p.add_argument("--k", type=int, default=8)
    p.set_defaults(func=cmd_coding_table)

    p = sub.add_parser("compress", help="9C-compress a test set")
    p.add_argument("input", nargs="?", help="test-set file (.test)")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.add_argument("--k", type=int, default=8)
    p.add_argument("-o", "--output")
    p.add_argument("--workers", type=int, default=1,
                   help="shard the encode across N worker processes "
                        "(bit-identical to --workers 1)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("decompress", help="decode a 9C stream file")
    p.add_argument("input")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--cells", type=int, required=True)
    p.add_argument("--length", type=int, default=None)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--workers", type=int, default=1,
                   help="shard the decode across N worker processes "
                        "(fast path only; bit-identical to --workers 1)")
    path = p.add_mutually_exclusive_group()
    path.add_argument("--fast", action="store_true", default=True,
                      help="vectorized decode path (default)")
    path.add_argument("--reference", action="store_true",
                      help="per-bit reference decode path (the oracle)")
    p.set_defaults(func=cmd_decompress)

    p = sub.add_parser("sweep", help="CR/LX across block sizes")
    p.add_argument("input", nargs="?")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("compare", help="compare 9C with baseline codes")
    p.add_argument("input", nargs="?")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("tat", help="test-application-time analysis")
    p.add_argument("input", nargs="?")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--p", type=int, nargs="+", default=[2, 4, 8, 16])
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_tat)

    p = sub.add_parser("atpg", help="generate test cubes for a circuit")
    p.add_argument("--circuit", default="s27")
    p.add_argument("--backtrack-limit", type=int, default=500)
    p.add_argument("--k", type=int, default=0,
                   help="also compress the cubes at this block size")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser("freq", help="frequency-directed re-assignment sweep")
    p.add_argument("input", nargs="?")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.set_defaults(func=cmd_freq)

    p = sub.add_parser("efficiency", help="coding-efficiency analysis")
    p.add_argument("input", nargs="?")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.add_argument("--k", type=int, default=8)
    p.set_defaults(func=cmd_efficiency)

    p = sub.add_parser("rtl", help="emit decompressor Verilog")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--chains", type=int, default=1,
                   help="> 1 emits the Figure-3 multi-scan wrapper")
    p.add_argument("--structural", action="store_true",
                   help="emit the gate-level netlist as structural "
                        "Verilog instead of the behavioral decoder")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_rtl)

    p = sub.add_parser(
        "import-rtl",
        help="import structural Verilog, lint it, and prove decoder "
             "equivalence (docs/rtl.md)",
    )
    p.add_argument("file", help="structural-Verilog source file")
    p.add_argument("--top", default=None,
                   help="top module (default: the unique uninstantiated "
                        "module)")
    p.add_argument("--k", type=int, default=8,
                   help="block size the imported decoder implements "
                        "(used by --equiv)")
    p.add_argument("--lint", action="store_true",
                   help="run the NL netlist rules over the import")
    p.add_argument("--equiv", action="store_true",
                   help="run the EQ equivalence legs against the 9C "
                        "decoder specification")
    p.add_argument("--waive-shifter", action="store_true",
                   help="waive NL006 (intentional flop-to-flop shift "
                        "paths, as in the decoder datapath)")
    p.add_argument("--vectors", type=int, default=10000,
                   help="random word-level vectors when exhaustive "
                        "enumeration is too large")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="json emits one structured report (errors become "
                        "an {\"error\": ...} object, exit 2)")
    p.set_defaults(func=cmd_import_rtl)

    p = sub.add_parser("adaptive", help="adaptive-K vs fixed-K comparison")
    p.add_argument("input", nargs="?")
    p.add_argument("--benchmark", choices=sorted(ALL_PROFILES))
    p.add_argument("--window", type=int, default=2048)
    p.set_defaults(func=cmd_adaptive)

    p = sub.add_parser("system", help="run the full TestSession flow")
    p.add_argument("--circuit", default="s27")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--p", type=int, default=8)
    p.add_argument("--misr-width", type=int, default=16)
    p.add_argument("--screen", type=int, default=8,
                   help="number of detected faults to screen")
    p.set_defaults(func=cmd_system)

    p = sub.add_parser(
        "resilience",
        help="channel-fault campaign: detection vs silent-escape rate",
    )
    p.add_argument("--circuit", default="s27")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--error-rate", type=float, nargs="+", default=[1e-3],
                   help="per-symbol fault rates to sweep")
    p.add_argument("--trials", type=int, default=25,
                   help="corrupted streams per error rate")
    p.add_argument("--channel", choices=sorted(CHANNEL_KINDS),
                   default="flip", help="fault model on the ATE link")
    p.add_argument("--no-framing", action="store_true",
                   help="send the raw T_E stream without CRC frames")
    p.add_argument("--blocks-per-frame", type=int,
                   default=DEFAULT_BLOCKS_PER_FRAME)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_resilience)

    p = sub.add_parser(
        "compact",
        help="X-tolerant response-compaction sweep (docs/compaction.md)",
    )
    p.add_argument("--circuit", default="s27")
    p.add_argument("--k", type=int, default=8,
                   help="recorded in the report for schema compatibility")
    p.add_argument("--x-density", type=float, nargs="+",
                   default=[0.0, 0.01, 0.05, 0.10],
                   help="fractions of response bits degraded to X")
    p.add_argument("--compactor", nargs="+",
                   choices=sorted(COMPACTOR_KINDS),
                   help="compactors to sweep (default: one of each kind)")
    p.add_argument("--faults", type=int, default=32,
                   help="cap on the baseline-detected fault sample")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default=None,
                   help="write a BENCH_obs.json-schema report here")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser(
        "profile",
        help="run perf-baseline scenarios and write BENCH_obs.json",
    )
    p.add_argument("--circuit", default="s27",
                   help="benchmark profile (s9234) or embedded circuit (s27)")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--scenarios", nargs="+",
                   choices=["compress", "decompress", "decode", "session",
                            "resilience", "compaction", "parallel"],
                   help="subset of scenarios to run (default: all)")
    p.add_argument("--session-circuit", default=None,
                   help="netlist for session/resilience when the target is "
                        "a test-set-only benchmark (default: g64)")
    p.add_argument("--trials", type=int, default=5,
                   help="resilience-scenario trials")
    p.add_argument("--no-fastpath", action="store_true",
                   help="skip the encode fast-path vs reference comparison")
    path = p.add_mutually_exclusive_group()
    path.add_argument("--fast", action="store_true", default=True,
                      help="decompress scenario uses the vectorized decode "
                           "path (default)")
    path.add_argument("--reference", action="store_true",
                      help="decompress scenario uses the per-bit reference "
                           "decode path")
    p.add_argument("-o", "--output", default="BENCH_obs.json")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "stats",
        help="pretty-print the metrics snapshot of a profile baseline",
    )
    p.add_argument("--baseline", default="BENCH_obs.json")
    p.add_argument("--scenario", nargs="+", default=None,
                   help="scenarios to show (default: all in the baseline)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "lint",
        help="static verification: netlists, decoder FSM, emitted RTL, "
             "decoder equivalence, and the Python codebase "
             "(docs/lint.md)",
    )
    p.add_argument("--only", nargs="+", metavar="SECTION",
                   choices=["netlist", "fsm", "rtl", "equiv", "python"],
                   help="subset of lint sections (default: all)")
    p.add_argument("--k", type=int, nargs="+", default=[4, 8, 16, 32],
                   help="block sizes swept for decoder netlists and RTL")
    p.add_argument("--circuit", nargs="+", default=None,
                   help="library circuits to lint (default: all)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (exit code is nonzero on errors "
                        "either way)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "serve",
        help="run the compression service over TCP (docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9127,
                   help="0 picks a free port (printed on the ready line)")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--executor", choices=["process", "thread", "inline"],
                   default="process")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--max-inflight", type=int, default=8)
    p.add_argument("--max-queue", type=int, default=16)
    p.add_argument("--chaos", action="store_true",
                   help="accept chaos-op fault injection (testing only)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="closed-loop load generator against a running serve instance",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9127)
    p.add_argument("--circuit", default="s27")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--requests", type=int, default=100)
    p.add_argument("--concurrency", type=int, default=4)
    p.add_argument("--batch", type=int, default=1,
                   help="items per compress request (> 1 uses the batch API)")
    p.add_argument("--mix", choices=["compress", "decompress", "both"],
                   default="both")
    p.add_argument("--deadline-ms", type=float, default=10_000.0)
    p.add_argument("--inject", action="append", choices=["worker-crash"],
                   help="arm a service fault mid-run (server needs --chaos); "
                        "repeatable")
    p.add_argument("-o", "--output", default=None,
                   help="write a BENCH_obs.json-schema report here")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "trace",
        help="run traced requests and export Chrome trace-event JSON "
             "(docs/observability.md)",
    )
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="use a running serve instance instead of spinning "
                        "an in-process service")
    p.add_argument("--circuit", default="s27")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--requests", type=int, default=2,
                   help="traced requests to issue before exporting "
                        "(0 fetches only what is already recorded)")
    p.add_argument("--executor", choices=["process", "thread", "inline"],
                   default="process",
                   help="executor of the in-process service (ignored with "
                        "--connect)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--limit", type=int, default=16,
                   help="most-recent traces to export")
    p.add_argument("--trace-id", default=None,
                   help="export one specific trace by id")
    p.add_argument("--format", choices=["chrome", "json"], default="chrome",
                   help="chrome: trace-event JSON for Perfetto / "
                        "chrome://tracing; json: the raw trace-op result")
    p.add_argument("-o", "--output", default=None,
                   help="write here instead of stdout")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "regress",
        help="perf-regression gate: fresh profile runs vs a committed "
             "BENCH_*.json baseline (docs/observability.md)",
    )
    p.add_argument("--baseline", default="BENCH_obs.json")
    p.add_argument("--circuit", default=None,
                   help="profile target (default: the baseline's)")
    p.add_argument("--k", type=int, default=None,
                   help="block size (default: the baseline's)")
    p.add_argument("--tolerance", type=float, default=1.0,
                   help="allowed fractional slowdown before the gate trips "
                        "(1.0 = fresh may take up to 2x the baseline)")
    p.add_argument("--repeats", type=int, default=3,
                   help="fresh runs feeding the per-scenario median")
    p.add_argument("--scenario", nargs="+", default=None,
                   help="scenarios to run (default: those in the baseline)")
    p.add_argument("--trajectory", default="BENCH_trajectory.json",
                   help="history file the run is appended to")
    p.add_argument("--no-trajectory", action="store_true",
                   help="skip appending this run to the trajectory file")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_regress)

    p = sub.add_parser("benchmarks", help="list benchmark profiles")
    p.set_defaults(func=cmd_benchmarks)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not getattr(args, "json", False):
        return args.func(args)
    # under --json even failures must be machine-readable: a structured
    # {"error": ...} object on stdout and a nonzero exit, never a bare
    # traceback a pipeline consumer would have to scrape.
    try:
        return args.func(args)
    except SystemExit as exc:
        if exc.code is None or isinstance(exc.code, int):
            raise  # already a clean numeric exit (argparse, etc.)
        print(json.dumps(
            {"error": {"command": args.command, "message": str(exc.code)}},
            indent=2, sort_keys=True,
        ))
        return 2
    except Exception as exc:  # noqa: BLE001 - CLI boundary: anything
        # unexpected still has to come out as structured JSON here
        print(json.dumps(
            {"error": {"command": args.command,
                       "type": type(exc).__name__,
                       "message": str(exc)}},
            indent=2, sort_keys=True,
        ))
        return 2


if __name__ == "__main__":
    sys.exit(main())
