"""System-level test session: the whole RPCT flow behind one API.

This is the integration layer a downstream user would actually adopt:

    session = TestSession(circuit, k=8, p=8)
    session.prepare()                  # ATPG cubes (or bring your own)
    verdict = session.run()            # golden signature
    verdict = session.run(fault)       # defective device -> FAIL

Internally: test cubes -> 9C compression -> cycle-accurate single-pin
decompression -> X fill -> pattern application to the (optionally
faulty) circuit -> response compaction in a MISR -> signature compare.
One ATE pin in, one signature out — the paper's reduced-pin-count story
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from . import obs as _obs
from .atpg.flow import AtpgResult, generate_test_cubes
from .circuits.faults import Fault
from .circuits.netlist import Netlist
from .circuits.simulator import output_values, simulate
from .core.bitvec import TernaryVector
from .core.decoder import NineCDecoder
from .core.encoder import Encoding, NineCEncoder
from .core.errors import DecodeDiagnostics
from .decompressor.misr import MISR
from .decompressor.single_scan import SingleScanDecompressor
from .testdata.fill import fill_test_set
from .testdata.testset import TestSet


@dataclass(frozen=True)
class SessionVerdict:
    """Outcome of testing one (possibly faulty) device."""

    signature: int
    golden_signature: Optional[int]
    patterns_applied: int
    soc_cycles: int
    ate_cycles: int
    compression_ratio: float

    @property
    def passed(self) -> Optional[bool]:
        """True/False vs the golden signature; None when no golden yet."""
        if self.golden_signature is None:
            return None
        return self.signature == self.golden_signature


class TestSession:
    """Orchestrates the full compressed-test flow for one circuit."""

    __test__ = False  # keep pytest from collecting this library class

    def __init__(
        self,
        netlist: Netlist,
        k: int = 8,
        p: int = 8,
        misr_width: int = 16,
        fill_strategy: str = "random",
        seed: int = 0,
    ):
        self.netlist = netlist
        self.k = k
        self.p = p
        self.misr_width = misr_width
        self.fill_strategy = fill_strategy
        self.seed = seed
        self.atpg_result: Optional[AtpgResult] = None
        self.cubes: Optional[TestSet] = None
        self.encoding: Optional[Encoding] = None
        self.applied_patterns: Optional[TestSet] = None
        self.golden_signature: Optional[int] = None
        self._response_pad = (-len(netlist.scan_outputs)) % misr_width

    # ------------------------------------------------------------------
    @_obs.traced("session.prepare")
    def prepare(self, cubes: Optional[TestSet] = None,
                backtrack_limit: int = 500,
                order_for_power: bool = False) -> "TestSession":
        """Generate (or accept) cubes, compress, decompress, fill.

        After ``prepare`` the session holds the exact fully-specified
        patterns the decompressor delivers to the scan chain; ``run``
        only re-simulates the device side.  ``order_for_power`` applies
        greedy low-transition pattern ordering before compression (order
        is free for stuck-at detection).
        """
        if cubes is None:
            self.atpg_result = generate_test_cubes(
                self.netlist, backtrack_limit=backtrack_limit
            )
            cubes = self.atpg_result.test_set
        if order_for_power:
            from .analysis.ordering import reorder_for_power

            cubes = reorder_for_power(cubes)
        if cubes.num_cells != self.netlist.scan_length:
            raise ValueError(
                f"cube width {cubes.num_cells} != scan length "
                f"{self.netlist.scan_length}"
            )
        self.cubes = cubes
        stream = cubes.to_stream()
        self.encoding = NineCEncoder(self.k).encode(stream)
        decompressor = SingleScanDecompressor(self.k, p=self.p)
        trace = decompressor.run_encoding(self.encoding)
        self._trace = trace
        decoded = TestSet.from_stream(
            trace.output[: cubes.total_bits], self.netlist.scan_length
        )
        if not decoded.covers(cubes):
            raise AssertionError("decompression lost specified bits")
        self.applied_patterns = fill_test_set(
            decoded, self.fill_strategy, seed=self.seed
        )
        self.golden_signature = None
        return self

    # ------------------------------------------------------------------
    @_obs.traced("session.signature")
    def signature_of(self, patterns: TestSet,
                     fault: Optional[Fault] = None) -> int:
        """MISR signature of applying ``patterns`` to the (faulty) device.

        This is the device-side half of :meth:`run`, exposed so that
        alternative stimulus paths — notably a ``T_E`` stream corrupted
        on the ATE link (:mod:`repro.robust`) — can be signature-tested
        against the golden run.
        """
        injection = fault.injection if fault is not None else None
        misr = MISR(self.misr_width)
        for pattern in patterns:
            values = simulate(self.netlist, pattern, injection)
            response = output_values(self.netlist, values)
            misr.absorb_response(
                response.padded(len(response) + self._response_pad, 0)
            )
        return misr.signature

    # ------------------------------------------------------------------
    def response_matrix(self, patterns: TestSet,
                        fault: Optional[Fault] = None):
        """(patterns, scan outputs) 0/1 response matrix of the device.

        The raw-response twin of :meth:`signature_of`: response
        compactors (:mod:`repro.compaction`) consume this matrix plus
        an X mask, which lets a resilience campaign fault both the
        stimulus stream and the response observability at once.
        """
        from .compaction.sweep import response_matrix as _response_matrix

        return _response_matrix(self.netlist, patterns, fault)

    # ------------------------------------------------------------------
    @_obs.traced("session.apply_stream")
    def apply_stream(
        self, stream: TernaryVector, *, framed: bool = False,
        recover: bool = True,
    ) -> Tuple[TestSet, DecodeDiagnostics]:
        """Decode an (possibly corrupted) ``T_E`` into applicable patterns.

        Uses the session's K, fill strategy and fill seed, so on an
        uncorrupted stream the result equals :attr:`applied_patterns`.
        With ``recover=True`` (default) decoding survives corruption:
        damaged regions come back as X, are filled like any other X, and
        the returned :class:`DecodeDiagnostics` says what was lost.  With
        ``recover=False`` corruption raises a typed
        :class:`~repro.core.errors.StreamError`.
        """
        if self.cubes is None:
            raise RuntimeError("call prepare() before apply_stream()")
        expected = self.cubes.total_bits
        decoder = NineCDecoder(self.k)
        if framed:
            from .robust.framing import decode_framed

            result = decode_framed(stream, decoder, output_length=expected,
                                   recover=recover)
            decoded, diagnostics = result.data, result.diagnostics
        else:
            decoded = decoder.decode_stream(stream, output_length=expected,
                                            recover=recover)
            diagnostics = decoder.last_diagnostics
        test_set = TestSet.from_stream(decoded, self.netlist.scan_length)
        filled = fill_test_set(test_set, self.fill_strategy, seed=self.seed)
        return filled, diagnostics

    # ------------------------------------------------------------------
    @_obs.traced("session.run")
    def run(self, fault: Optional[Fault] = None) -> SessionVerdict:
        """Test one device; ``fault=None`` establishes the golden run."""
        if self.applied_patterns is None:
            raise RuntimeError("call prepare() before run()")
        signature = self.signature_of(self.applied_patterns, fault)
        if fault is None:
            self.golden_signature = signature
        if _obs.enabled():
            registry = _obs.get_registry()
            registry.counter("session.runs").inc()
            registry.counter("session.patterns_applied").inc(
                self.applied_patterns.num_patterns
            )
        return SessionVerdict(
            signature=signature,
            golden_signature=self.golden_signature
            if fault is not None else signature,
            patterns_applied=self.applied_patterns.num_patterns,
            soc_cycles=self._trace.soc_cycles,
            ate_cycles=self._trace.ate_cycles,
            compression_ratio=self.encoding.compression_ratio,
        )

    # ------------------------------------------------------------------
    def screen(self, faults) -> dict:
        """Signature-test many devices; returns fault -> caught bool."""
        if self.golden_signature is None:
            self.run()
        results = {
            fault: self.run(fault).signature != self.golden_signature
            for fault in faults
        }
        if _obs.enabled():
            registry = _obs.get_registry()
            registry.counter("session.faults_screened").inc(len(results))
            registry.counter("session.faults_caught").inc(
                sum(results.values())
            )
        return results
