"""Ternary bit vectors over the alphabet {0, 1, X}.

Scan test data is naturally ternary: ATPG leaves unassigned inputs as
don't-cares (X).  Every layer of this library — the 9C codec, the baseline
codes, the decompressor models — operates on :class:`TernaryVector`, a thin
numpy-backed vector where each element is one of :data:`ZERO`, :data:`ONE`
or :data:`X`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

import numpy as np

#: Integer encodings of the three logic values.
ZERO = 0
ONE = 1
X = 2

_CHAR_TO_VAL = {"0": ZERO, "1": ONE, "X": X, "x": X, "-": X, "?": X}
_VAL_TO_CHAR = {ZERO: "0", ONE: "1", X: "X"}

BitLike = Union[int, str]


def _coerce_value(value: BitLike) -> int:
    """Convert a single ``0``/``1``/``X`` token (int or char) to its code."""
    if isinstance(value, str):
        try:
            return _CHAR_TO_VAL[value]
        except KeyError:
            raise ValueError(f"invalid ternary character: {value!r}") from None
    value = int(value)
    if value not in (ZERO, ONE, X):
        raise ValueError(f"invalid ternary value: {value!r} (expected 0, 1 or 2/X)")
    return value


class TernaryVector:
    """An immutable-by-convention vector of {0, 1, X} values.

    The underlying storage is a ``numpy.uint8`` array holding the codes
    :data:`ZERO`, :data:`ONE` and :data:`X`.  Instances share storage with
    slices for efficiency; callers must not mutate the ``data`` array of a
    vector they did not create.
    """

    __slots__ = ("data",)

    def __init__(self, data: Union[np.ndarray, Sequence[BitLike], str]):
        if isinstance(data, np.ndarray):
            if data.dtype != np.uint8:
                data = data.astype(np.uint8)
            arr = data
        elif isinstance(data, str):
            try:
                arr = np.fromiter(
                    (_CHAR_TO_VAL[c] for c in data), dtype=np.uint8, count=len(data)
                )
            except KeyError as exc:
                raise ValueError(f"invalid ternary character: {exc.args[0]!r}") from None
        else:
            arr = np.fromiter(
                (_coerce_value(v) for v in data), dtype=np.uint8, count=len(data)
            )
        if arr.size and arr.max(initial=0) > X:
            raise ValueError("ternary data contains values outside {0, 1, 2}")
        self.data = arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(cls, data: np.ndarray) -> "TernaryVector":
        """Wrap a trusted uint8 code array without validation or copy.

        The range check in ``__init__`` reads every element, which on a
        memory-mapped file faults in every page — exactly what the
        bounded-RSS ingestion path in :mod:`repro.core.io` exists to
        avoid.  Only for arrays whose provenance guarantees codes in
        {0, 1, 2} (e.g. a validated on-disk container).
        """
        vec = object.__new__(cls)
        vec.data = data
        return vec

    @classmethod
    def zeros(cls, n: int) -> "TernaryVector":
        """A vector of ``n`` specified zeros."""
        return cls(np.full(n, ZERO, dtype=np.uint8))

    @classmethod
    def ones(cls, n: int) -> "TernaryVector":
        """A vector of ``n`` specified ones."""
        return cls(np.full(n, ONE, dtype=np.uint8))

    @classmethod
    def xs(cls, n: int) -> "TernaryVector":
        """A vector of ``n`` don't-cares."""
        return cls(np.full(n, X, dtype=np.uint8))

    @classmethod
    def from_string(cls, text: str) -> "TernaryVector":
        """Parse a string such as ``"01XX10"`` (``-`` and ``?`` also mean X)."""
        cleaned = "".join(text.split())
        return cls(cleaned)

    @classmethod
    def concat(cls, parts: Iterable["TernaryVector"]) -> "TernaryVector":
        """Concatenate vectors into a new vector."""
        arrays = [p.data for p in parts]
        if not arrays:
            return cls(np.empty(0, dtype=np.uint8))
        return cls(np.concatenate(arrays))

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.data.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self.data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TernaryVector(self.data[index])
        return int(self.data[index])

    def __eq__(self, other) -> bool:
        if not isinstance(other, TernaryVector):
            return NotImplemented
        return bool(np.array_equal(self.data, other.data))

    def __hash__(self) -> int:
        return hash(self.data.tobytes())

    def __repr__(self) -> str:
        body = self.to_string() if len(self) <= 64 else self.to_string()[:61] + "..."
        return f"TernaryVector({body!r})"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """Render as a ``0``/``1``/``X`` string."""
        lut = np.array(["0", "1", "X"])
        return "".join(lut[self.data])

    def count(self, value: BitLike) -> int:
        """Count occurrences of a ternary value."""
        return int(np.count_nonzero(self.data == _coerce_value(value)))

    @property
    def num_x(self) -> int:
        """Number of don't-care positions."""
        return self.count(X)

    @property
    def num_specified(self) -> int:
        """Number of specified (0 or 1) positions."""
        return len(self) - self.num_x

    @property
    def x_density(self) -> float:
        """Fraction of positions that are don't-cares (0.0 for empty)."""
        return self.num_x / len(self) if len(self) else 0.0

    def is_fully_specified(self) -> bool:
        """True when the vector contains no X."""
        return self.num_x == 0

    def is_zero_compatible(self) -> bool:
        """True when every bit is 0 or X (the half could be expanded to 0s)."""
        return not bool(np.any(self.data == ONE))

    def is_one_compatible(self) -> bool:
        """True when every bit is 1 or X."""
        return not bool(np.any(self.data == ZERO))

    def is_mismatch(self) -> bool:
        """True when the vector contains both a specified 0 and a specified 1."""
        return not self.is_zero_compatible() and not self.is_one_compatible()

    def covers(self, other: "TernaryVector") -> bool:
        """True when *self* is a legal refinement/equal of *other*.

        Every specified bit of ``other`` must be identical in ``self``;
        positions that are X in ``other`` are unconstrained.  This is the
        round-trip invariant of every lossy-on-X compression code.
        """
        if len(self) != len(other):
            return False
        specified = other.data != X
        return bool(np.array_equal(self.data[specified], other.data[specified]))

    def compatible(self, other: "TernaryVector") -> bool:
        """True when no position has conflicting specified values.

        Two compatible cubes can be merged into one (used by static test
        compaction).
        """
        if len(self) != len(other):
            return False
        both = (self.data != X) & (other.data != X)
        return bool(np.array_equal(self.data[both], other.data[both]))

    # ------------------------------------------------------------------
    # transformations (all return new vectors)
    # ------------------------------------------------------------------
    def merge(self, other: "TernaryVector") -> "TernaryVector":
        """Intersection of two compatible cubes (specified bits union)."""
        if not self.compatible(other):
            raise ValueError("cannot merge incompatible cubes")
        out = self.data.copy()
        take = (out == X) & (other.data != X)
        out[take] = other.data[take]
        return TernaryVector(out)

    def filled(self, value: BitLike) -> "TernaryVector":
        """Replace every X with a constant 0 or 1."""
        value = _coerce_value(value)
        if value == X:
            raise ValueError("fill value must be 0 or 1")
        out = self.data.copy()
        out[out == X] = value
        return TernaryVector(out)

    def filled_random(self, rng: np.random.Generator) -> "TernaryVector":
        """Replace every X with a random bit drawn from ``rng``."""
        out = self.data.copy()
        mask = out == X
        out[mask] = rng.integers(0, 2, size=int(mask.sum()), dtype=np.uint8)
        return TernaryVector(out)

    def with_slice(self, start: int, replacement: "TernaryVector") -> "TernaryVector":
        """Return a copy with ``replacement`` written at ``start``."""
        out = self.data.copy()
        out[start : start + len(replacement)] = replacement.data
        return TernaryVector(out)

    def padded(self, length: int, value: BitLike = X) -> "TernaryVector":
        """Pad on the right with ``value`` up to ``length``."""
        if length < len(self):
            raise ValueError("pad length shorter than vector")
        value = _coerce_value(value)
        out = np.full(length, value, dtype=np.uint8)
        out[: len(self)] = self.data
        return TernaryVector(out)

    def blocks(self, k: int) -> Iterator["TernaryVector"]:
        """Yield consecutive ``k``-bit blocks (the last may be short)."""
        if k <= 0:
            raise ValueError("block size must be positive")
        for start in range(0, len(self), k):
            yield self[start : start + k]

    def copy(self) -> "TernaryVector":
        """Deep copy."""
        return TernaryVector(self.data.copy())
