"""Frequency-directed codeword re-assignment (paper Section IV, Table VII).

The default Table-I assignment gives the shortest codewords to the cases
the authors expect to dominate (C1 > C2 > C9 > others).  For circuits whose
codeword occurrence statistics deviate (the paper names s9234 and s15850,
where C8/C7 outnumber C9), re-assigning the available codeword *lengths*
{1, 2, 4, 5, 5, 5, 5, 5, 5} to cases in descending occurrence order recovers
a slightly better compression ratio.

Because changing codeword lengths can shift the encoder's cheapest-feasible
case selection, re-assignment is applied iteratively (measure -> reassign ->
re-measure) until the assignment is stable or ``max_iterations`` is hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .bitvec import TernaryVector
from .codewords import PAPER_LENGTHS, BlockCase, Codebook
from .encoder import Measurement, NineCEncoder

#: The multiset of codeword lengths available for re-assignment.
LENGTH_POOL: Sequence[int] = tuple(sorted(PAPER_LENGTHS.values()))


def assign_lengths_by_frequency(
    case_counts: Dict[BlockCase, int],
    length_pool: Sequence[int] = LENGTH_POOL,
) -> Dict[BlockCase, int]:
    """Give the shortest lengths to the most frequent cases.

    Ties preserve the paper's default priority (lower case index first),
    so a circuit that already follows the expected ordering keeps the
    default assignment.
    """
    pool = sorted(length_pool)
    if len(pool) != len(BlockCase):
        raise ValueError("length pool must contain exactly nine lengths")
    ordered = sorted(BlockCase, key=lambda c: (-case_counts.get(c, 0), c.value))
    return {case: length for case, length in zip(ordered, pool)}


@dataclass
class ReassignmentResult:
    """Outcome of frequency-directed re-assignment on one test set."""

    k: int
    baseline: Measurement
    final: Measurement
    codebook: Codebook
    iterations: int

    @property
    def improvement(self) -> float:
        """CR% gain over the default assignment (can be ~0, never large)."""
        return self.final.compression_ratio - self.baseline.compression_ratio


def frequency_directed(
    data: TernaryVector,
    k: int,
    max_iterations: int = 4,
) -> ReassignmentResult:
    """Apply the Table-VII refinement to one test set at block size ``k``."""
    baseline = NineCEncoder(k).measure(data)
    counts = baseline.case_counts
    best = baseline
    best_book = Codebook.default()
    seen: List[Dict[BlockCase, int]] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        lengths = assign_lengths_by_frequency(counts)
        if lengths in seen:
            break
        seen.append(lengths)
        codebook = Codebook.from_lengths(lengths)
        measurement = NineCEncoder(k, codebook).measure(data)
        if measurement.compression_ratio > best.compression_ratio:
            best = measurement
            best_book = codebook
        if measurement.case_counts == counts:
            break
        counts = measurement.case_counts
    return ReassignmentResult(
        k=k,
        baseline=baseline,
        final=best,
        codebook=best_book,
        iterations=iterations,
    )


def deviates_from_default_order(case_counts: Dict[BlockCase, int]) -> bool:
    """True when the observed N_i ordering disagrees with Table I's design.

    The paper's expectation is N1 >= N2 >= N9 >= each of N3..N8; circuits
    violating it (e.g. a mismatch-heavy case outnumbering C9) are the
    Table VII candidates.
    """
    n1 = case_counts.get(BlockCase.C1, 0)
    n2 = case_counts.get(BlockCase.C2, 0)
    n9 = case_counts.get(BlockCase.C9, 0)
    others = [
        case_counts.get(case, 0)
        for case in (BlockCase.C3, BlockCase.C4, BlockCase.C5,
                     BlockCase.C6, BlockCase.C7, BlockCase.C8)
    ]
    return not (n1 >= n2 >= n9 and all(n9 >= n for n in others))
