"""The 9C encoder (Section II of the paper).

The input test vector stream is partitioned into K-bit blocks (padded with
don't-cares at the end), each block is split into two halves, and the
cheapest feasible Table-I case is selected per block:

* a half classified *0-compatible* may be expanded from the ``0s`` symbol,
* a half classified *1-compatible* may be expanded from the ``1s`` symbol,
* any half may always be transmitted verbatim as a *mismatch* half.

With the paper's codeword lengths, the cheapest-feasible rule degenerates
to the paper's classification (uniform halves are never sent raw), but the
encoder stays correct under arbitrary re-assigned codebooks (Table VII)
where the cost ordering can shift.

Three implementations are provided and tested against each other:

* :meth:`NineCEncoder.encode` — vectorized fast path: the block
  classification runs on the whole K-column grid at once (shared with
  :meth:`measure`) and only stream assembly walks blocks;
* :meth:`NineCEncoder.encode_reference` — readable per-block reference
  path, kept as the oracle the fast path is verified against;
* :meth:`NineCEncoder.measure` — numpy-vectorized classifier that returns
  case counts and compressed size only, for Mbit-scale sweeps (Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import obs as _obs
from .bitstream import TernaryStreamWriter
from .bitvec import ONE, X, ZERO, TernaryVector
from .codewords import BlockCase, Codebook, HalfKind


@dataclass(frozen=True)
class BlockRecord:
    """Where one input block landed in the compressed stream."""

    index: int
    case: BlockCase
    stream_offset: int


@dataclass
class Encoding:
    """The result of compressing one bit-stream with 9C."""

    k: int
    codebook: Codebook
    original_length: int
    stream: TernaryVector
    blocks: List[BlockRecord] = field(repr=False)
    _case_counts: Optional[Dict[BlockCase, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def padded_length(self) -> int:
        """Input length after padding to a multiple of K."""
        return len(self.blocks) * self.k

    @property
    def compressed_size(self) -> int:
        """|T_E| in bits."""
        return len(self.stream)

    @property
    def case_counts(self) -> Dict[BlockCase, int]:
        """Occurrence frequency N_i of each codeword (Table VI).

        Computed once from ``blocks`` and cached — TAT analysis and the
        Table VI report hit this per codeword, and the O(blocks) walk
        dominated on Mbit-scale encodings.  A fresh dict is returned on
        each access so callers may mutate their copy freely.
        """
        if self._case_counts is None:
            counts = {case: 0 for case in BlockCase}
            for record in self.blocks:
                counts[record.case] += 1
            self._case_counts = counts
        return dict(self._case_counts)

    @property
    def compression_ratio(self) -> float:
        """CR% = (|T_D| - |T_E|) / |T_D| * 100 (paper Section IV)."""
        if self.original_length == 0:
            return 0.0
        return (self.original_length - self.compressed_size) / self.original_length * 100.0

    @property
    def leftover_x(self) -> int:
        """Number of don't-care symbols surviving in T_E (paper's LX)."""
        return self.stream.num_x

    @property
    def leftover_x_percent(self) -> float:
        """LX as a percentage of |T_D| (Table III)."""
        if self.original_length == 0:
            return 0.0
        return self.leftover_x / self.original_length * 100.0


@dataclass(frozen=True)
class Measurement:
    """Size/statistics-only result of the vectorized fast path."""

    k: int
    original_length: int
    compressed_size: int
    leftover_x: int
    case_counts: Dict[BlockCase, int]

    @property
    def compression_ratio(self) -> float:
        """CR% = (|T_D| - |T_E|) / |T_D| * 100."""
        if self.original_length == 0:
            return 0.0
        return (self.original_length - self.compressed_size) / self.original_length * 100.0

    @property
    def leftover_x_percent(self) -> float:
        """LX as a percentage of |T_D|."""
        if self.original_length == 0:
            return 0.0
        return self.leftover_x / self.original_length * 100.0


class NineCEncoder:
    """Fixed-block 9C encoder for a given block size K."""

    def __init__(self, k: int, codebook: Optional[Codebook] = None):
        if k < 2 or k % 2:
            raise ValueError("K must be an even integer >= 2")
        self.k = k
        self.codebook = codebook or Codebook.default()

    # ------------------------------------------------------------------
    # reference path
    # ------------------------------------------------------------------
    def select_case(self, block: TernaryVector) -> BlockCase:
        """Cheapest Table-I case feasible for one K-bit block."""
        half = self.k // 2
        left, right = block[:half], block[half:]
        flags = (
            (left.is_zero_compatible(), left.is_one_compatible()),
            (right.is_zero_compatible(), right.is_one_compatible()),
        )
        best_case = None
        best_cost = None
        for case in BlockCase:
            if not self._feasible(case, flags):
                continue
            cost = self.codebook.encoded_size(case, self.k)
            if best_cost is None or cost < best_cost:
                best_case, best_cost = case, cost
        if best_case is None:  # C9 is always feasible
            raise ValueError("no feasible block case; codebook is incomplete")
        return best_case

    @staticmethod
    def _feasible(case: BlockCase, flags) -> bool:
        for kind, (zero_ok, one_ok) in zip(case.halves, flags):
            if kind is HalfKind.ZEROS and not zero_ok:
                return False
            if kind is HalfKind.ONES and not one_ok:
                return False
        return True

    def encode(self, data: TernaryVector) -> Encoding:
        """Compress a ternary vector into a 9C :class:`Encoding`.

        Vectorized fast path: case selection runs once over the whole
        block grid (the same classification :meth:`measure` uses) and
        the Python loop only assembles codeword/mismatch chunks.
        Produces output bit-identical to :meth:`encode_reference`.
        """
        with _obs.span("encode"):
            encoding = self._encode_fast(data)
        if _obs.enabled():
            _record_encoding(encoding)
        return encoding

    def _encode_fast(self, data: TernaryVector) -> Encoding:
        """The uninstrumented fast path (the overhead-guard control)."""
        original_length = len(data)
        padded = self._pad(data)
        grid = padded.data.reshape(-1, self.k)
        chosen = self._classify(grid)
        stream = TernaryVector(self._assemble_stream(grid, chosen))
        return Encoding(
            k=self.k,
            codebook=self.codebook,
            original_length=original_length,
            stream=stream,
            blocks=self._block_records(chosen),
        )

    def _assemble_stream(self, grid: np.ndarray,
                         chosen: np.ndarray) -> np.ndarray:
        """Concatenated codeword/mismatch chunks for classified blocks.

        ``grid`` is the padded input reshaped to ``(n_blocks, K)`` and
        ``chosen`` the case column per row (from :meth:`_classify`).
        Because blocks are independent given (K, codebook), assembling
        any contiguous row range yields exactly that slice of the full
        stream — the property :mod:`repro.parallel` shards on.
        """
        half = self.k // 2
        cases = list(BlockCase)
        codewords = [np.asarray(self.codebook.codeword(case), dtype=np.uint8)
                     for case in cases]
        left_raw = [case.halves[0] is HalfKind.MISMATCH for case in cases]
        right_raw = [case.halves[1] is HalfKind.MISMATCH for case in cases]
        chunks: List[np.ndarray] = []
        for index, column in enumerate(chosen):
            chunks.append(codewords[column])
            if left_raw[column]:
                chunks.append(grid[index, :half])
            if right_raw[column]:
                chunks.append(grid[index, half:])
        if not chunks:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(chunks)

    def _block_records(self, chosen: np.ndarray) -> List[BlockRecord]:
        """Block records for a full run of classified case columns.

        Stream offsets fall out of a cumulative sum of per-case encoded
        sizes, so records for shard-concatenated ``chosen`` arrays come
        out globally correct without any per-shard offset fixup.
        """
        cases = list(BlockCase)
        sizes = np.asarray(
            [self.codebook.encoded_size(case, self.k) for case in cases],
            dtype=np.int64,
        )
        columns = np.asarray(chosen, dtype=np.int64)
        if not columns.size:
            return []
        offsets = np.concatenate(
            ([0], np.cumsum(sizes[columns])[:-1])
        )
        return [
            BlockRecord(index, cases[column], int(offset))
            for index, (column, offset)
            in enumerate(zip(columns.tolist(), offsets.tolist()))
        ]

    def encode_reference(self, data: TernaryVector) -> Encoding:
        """Per-block reference encoder (the fast path's oracle)."""
        original_length = len(data)
        padded = self._pad(data)
        half = self.k // 2
        writer = TernaryStreamWriter()
        blocks: List[BlockRecord] = []
        for index, start in enumerate(range(0, len(padded), self.k)):
            block = padded[start : start + self.k]
            case = self.select_case(block)
            blocks.append(BlockRecord(index, case, len(writer)))
            writer.write_bits(self.codebook.codeword(case))
            for side, kind in enumerate(case.halves):
                if kind is HalfKind.MISMATCH:
                    lo = start + side * half
                    writer.write_vector(padded[lo : lo + half])
        return Encoding(
            k=self.k,
            codebook=self.codebook,
            original_length=original_length,
            stream=writer.to_vector(),
            blocks=blocks,
        )

    def _pad(self, data: TernaryVector) -> TernaryVector:
        if len(data) % self.k == 0 and len(data) > 0:
            return data
        padded_length = max(self.k, ((len(data) + self.k - 1) // self.k) * self.k)
        return data.padded(padded_length, X)

    # ------------------------------------------------------------------
    # vectorized classification (shared by encode and measure)
    # ------------------------------------------------------------------
    def _classify(self, grid: np.ndarray) -> np.ndarray:
        """Cheapest-feasible case *column index* for every grid row.

        Same rule as :meth:`select_case`: among feasible cases pick the
        minimum encoded size, ties resolving to the lower case index
        (``argmin`` keeps the first minimum, matching the strict ``<``
        of the scalar loop).
        """
        half = self.k // 2
        left, right = grid[:, :half], grid[:, half:]

        def flags(half_grid: np.ndarray):
            zero_ok = ~np.any(half_grid == ONE, axis=1)
            one_ok = ~np.any(half_grid == ZERO, axis=1)
            return zero_ok, one_ok

        half_flags = {0: flags(left), 1: flags(right)}
        n_blocks = grid.shape[0]
        costs = np.full((n_blocks, len(BlockCase)), np.iinfo(np.int64).max, dtype=np.int64)
        for column, case in enumerate(BlockCase):
            feasible = np.ones(n_blocks, dtype=bool)
            for side, kind in enumerate(case.halves):
                zero_ok, one_ok = half_flags[side]
                if kind is HalfKind.ZEROS:
                    feasible &= zero_ok
                elif kind is HalfKind.ONES:
                    feasible &= one_ok
            costs[feasible, column] = self.codebook.encoded_size(case, self.k)
        return np.argmin(costs, axis=1)

    def measure(self, data: TernaryVector) -> Measurement:
        """Case counts, |T_E| and leftover-X without building the stream.

        Uses the same cheapest-feasible-case rule as :meth:`encode`;
        property tests assert the two paths agree exactly.
        """
        original_length = len(data)
        padded = self._pad(data)
        half = self.k // 2
        grid = padded.data.reshape(-1, self.k)
        left, right = grid[:, :half], grid[:, half:]
        chosen = self._classify(grid)
        cases = list(BlockCase)
        case_counts = {
            case: int(np.count_nonzero(chosen == column))
            for column, case in enumerate(cases)
        }
        compressed_size = int(
            sum(
                self.codebook.encoded_size(case, self.k) * count
                for case, count in case_counts.items()
            )
        )
        # leftover X = X symbols inside halves transmitted as mismatches
        x_left = np.count_nonzero(left == X, axis=1)
        x_right = np.count_nonzero(right == X, axis=1)
        leftover = 0
        for column, case in enumerate(cases):
            if case.num_mismatch_halves == 0:
                continue
            mask = chosen == column
            if case.halves[0] is HalfKind.MISMATCH:
                leftover += int(x_left[mask].sum())
            if case.halves[1] is HalfKind.MISMATCH:
                leftover += int(x_right[mask].sum())
        return Measurement(
            k=self.k,
            original_length=original_length,
            compressed_size=compressed_size,
            leftover_x=leftover,
            case_counts=case_counts,
        )


#: Codeword lengths are 1..5 under any Kraft-tight 9C assignment; the
#: bucket edges cover reassigned codebooks (Table VII) up to 8 bits.
_CODEWORD_LENGTH_BOUNDS = (1, 2, 3, 4, 5, 6, 8)


def _record_encoding(encoding: Encoding) -> None:
    """Fold one finished encode into the metrics registry (post-hoc)."""
    registry = _obs.get_registry()
    registry.counter("encode.calls").inc()
    registry.counter("encode.bits_in").inc(encoding.original_length)
    registry.counter("encode.bits_out").inc(encoding.compressed_size)
    registry.counter("encode.leftover_x").inc(encoding.leftover_x)
    case_counts = encoding.case_counts
    registry.count_cases("encode.blocks", case_counts)
    lengths = encoding.codebook.lengths
    histogram = registry.histogram(
        "encode.codeword_length", _CODEWORD_LENGTH_BOUNDS
    )
    for case, count in case_counts.items():
        if count:
            histogram.observe(lengths[case], count)
