"""Compression metrics reported in the paper's evaluation.

Covers the quantities of Tables II (CR%), III (LX%), VI (codeword
occurrence statistics N1..N9) and the analytic CR formula of Section IV,
which is cross-checked against the actual stream size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from .bitvec import TernaryVector
from .codewords import BlockCase, Codebook
from .encoder import Encoding, Measurement, NineCEncoder

EncodingLike = Union[Encoding, Measurement]


@dataclass(frozen=True)
class CompressionReport:
    """Summary of one 9C compression run."""

    k: int
    original_size: int
    compressed_size: int
    compression_ratio: float
    leftover_x: int
    leftover_x_percent: float
    case_counts: Dict[BlockCase, int]

    @property
    def codeword_statistics(self) -> Dict[str, int]:
        """N1..N9 keyed by codeword name (Table VI row)."""
        return {case.name.replace("C", "N"): count
                for case, count in self.case_counts.items()}


def report(result: EncodingLike) -> CompressionReport:
    """Build a :class:`CompressionReport` from an encoding or measurement."""
    return CompressionReport(
        k=result.k,
        original_size=result.original_length,
        compressed_size=result.compressed_size,
        compression_ratio=result.compression_ratio,
        leftover_x=result.leftover_x if isinstance(result, Measurement)
        else result.leftover_x,
        leftover_x_percent=result.leftover_x_percent,
        case_counts=dict(result.case_counts),
    )


def analytic_compressed_size(
    case_counts: Dict[BlockCase, int], k: int, codebook: Optional[Codebook] = None
) -> int:
    """|T_E| from codeword counts via the paper's Section IV formula.

    |T_E| = sum_i N_i * |C_i| + (K/2) * sum(mismatch halves) which the
    paper writes out per case.  Must equal the assembled stream length.
    """
    codebook = codebook or Codebook.default()
    return sum(
        count * codebook.encoded_size(case, k)
        for case, count in case_counts.items()
    )


def analytic_compression_ratio(
    case_counts: Dict[BlockCase, int],
    original_size: int,
    k: int,
    codebook: Optional[Codebook] = None,
) -> float:
    """CR% computed from counts alone (the paper's closed form)."""
    if original_size == 0:
        return 0.0
    te = analytic_compressed_size(case_counts, k, codebook)
    return (original_size - te) / original_size * 100.0


def sweep_block_sizes(
    data: TernaryVector,
    ks: Iterable[int],
    codebook: Optional[Codebook] = None,
) -> Dict[int, CompressionReport]:
    """CR/LX for a range of block sizes (one row of Tables II and III)."""
    out: Dict[int, CompressionReport] = {}
    for k in ks:
        measurement = NineCEncoder(k, codebook).measure(data)
        out[k] = report(measurement)
    return out


def best_block_size(
    data: TernaryVector,
    ks: Iterable[int],
    codebook: Optional[Codebook] = None,
) -> int:
    """The K with the highest CR% (the per-circuit K column of Table IV)."""
    reports = sweep_block_sizes(data, ks, codebook)
    return max(reports, key=lambda k: reports[k].compression_ratio)
