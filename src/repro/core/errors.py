"""Structured errors for the 9C stream layer.

The single-pin ATE link is the paper's whole premise, and a prefix code
on a serial link fails in characteristic ways: one flipped bit turns the
rest of the stream into garbage (desynchronization), a dropped symbol
truncates the tail, a corrupted frame fails its CRC.  Every decoder
failure mode surfaces as a :class:`StreamError` subclass carrying enough
context (bit offset, block index, frame index) to localize the damage.

``StreamError`` subclasses :class:`ValueError` so pre-existing callers
that catch ``ValueError`` keep working; :class:`TruncatedStreamError`
additionally subclasses :class:`EOFError` for the same reason.

The :class:`ServeError` hierarchy below belongs to the serving layer
(:mod:`repro.serve`): typed, wire-serializable failures — bad frames,
deadlines, shed load, open breakers, crashed workers — with a
``retryable`` hint per class.  It lives here, next to the stream
errors, so one module documents every failure type the pipeline can
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class StreamError(ValueError):
    """Base class for malformed / corrupted 9C stream conditions.

    Attributes ``bit_offset`` (position in the encoded stream),
    ``block_index`` (K-bit output block being decoded) and
    ``frame_index`` (when framing is in use) are ``None`` when unknown.
    """

    def __init__(
        self,
        message: str,
        *,
        bit_offset: Optional[int] = None,
        block_index: Optional[int] = None,
        frame_index: Optional[int] = None,
    ):
        super().__init__(message)
        self.message = message
        self.bit_offset = bit_offset
        self.block_index = block_index
        self.frame_index = frame_index
        # Every stream failure is a structured log event with its full
        # localization context.  The obs.log switch is checked first so
        # the disabled cost is one flag read; recovery paths that raise
        # and swallow many of these per decode still log each (that is
        # the point — silent recovery is how corruption hides).
        from ..obs import log as _log

        if _log.enabled():
            _log.warning(
                "stream.error", type=type(self).__name__, message=message,
                bit_offset=bit_offset, block_index=block_index,
                frame_index=frame_index,
            )

    def __str__(self) -> str:
        context = []
        if self.bit_offset is not None:
            context.append(f"bit offset {self.bit_offset}")
        if self.block_index is not None:
            context.append(f"block {self.block_index}")
        if self.frame_index is not None:
            context.append(f"frame {self.frame_index}")
        if context:
            return f"{self.message} ({', '.join(context)})"
        return self.message


class CodewordDesyncError(StreamError):
    """The bit sequence at the read position is not a valid codeword.

    Either an X symbol appeared inside a codeword, or the bits walked off
    the codeword trie — the classic symptom of a prefix code that lost
    synchronization after an upstream corruption.
    """


class TruncatedStreamError(StreamError, EOFError):
    """The stream ended mid-codeword, mid-payload or mid-frame."""


class FrameSyncError(StreamError):
    """A frame header is unreadable: bad sync marker or damaged fields."""


class FrameCRCError(StreamError):
    """A frame's CRC check failed (header or payload corruption)."""


# ----------------------------------------------------------------------
# serving-layer errors (repro.serve)
# ----------------------------------------------------------------------
class ServeError(Exception):
    """Base class for failures of the compression service.

    Every subclass carries a stable wire identifier (``code``) and a
    ``retryable`` hint so clients can distinguish "back off and retry"
    (overload, open breaker, crashed worker) from "fix the request"
    (bad frame, unknown op).  :meth:`to_wire` is the JSON shape the
    protocol layer puts in error responses — a request is never lost
    without one of these.
    """

    code = "serve_error"
    retryable = False

    def __init__(self, message: str, **context: object):
        super().__init__(message)
        self.message = message
        self.context = context

    def __str__(self) -> str:
        if self.context:
            detail = ", ".join(
                f"{key}={value}" for key, value in sorted(self.context.items())
            )
            return f"{self.message} ({detail})"
        return self.message

    def to_wire(self) -> dict:
        """JSON-safe error object for the protocol's error responses."""
        payload: dict = {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.context:
            payload["context"] = {
                key: value for key, value in sorted(self.context.items())
            }
        return payload


class BadRequestError(ServeError):
    """The request frame or its parameters are malformed."""

    code = "bad_request"


class MalformedFrameError(BadRequestError):
    """A wire frame is not valid newline-delimited JSON of the schema."""

    code = "malformed_frame"


class DeadlineExceededError(ServeError):
    """The request's deadline elapsed before a result was produced."""

    code = "deadline_exceeded"


class ServiceOverloadedError(ServeError):
    """Load was shed: the admission queue is full (429-style)."""

    code = "overloaded"
    retryable = True


class CircuitOpenError(ServeError):
    """The route's circuit breaker is open; the request fast-failed."""

    code = "circuit_open"
    retryable = True


class WorkerCrashError(ServeError):
    """A pool worker died (or was killed) while running the request."""

    code = "worker_crash"
    retryable = True


class DegradedResultError(ServeError):
    """Both the fast path and the reference fallback failed."""

    code = "degraded_result"


@dataclass
class DecodeDiagnostics:
    """Best-effort decode report: what was recovered, what was lost.

    Produced by recovery-mode decoding (``recover=True``).  ``errors``
    holds every :class:`StreamError` that was swallowed while recovering;
    ``resync_points`` are the bit offsets where decoding re-acquired the
    stream after damage (frame boundaries).
    """

    blocks_decoded: int = 0
    blocks_lost: int = 0
    frames_total: int = 0
    frames_damaged: int = 0
    resync_points: List[int] = field(default_factory=list)
    first_error_offset: Optional[int] = None
    errors: List[StreamError] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the stream decoded without any detected damage."""
        return not self.errors and self.frames_damaged == 0

    @property
    def detected(self) -> bool:
        """True when stream-level machinery flagged corruption."""
        return not self.clean

    def record(self, error: StreamError) -> None:
        """Log one swallowed error, tracking the first damage offset."""
        self.errors.append(error)
        if error.bit_offset is not None and (
            self.first_error_offset is None
            or error.bit_offset < self.first_error_offset
        ):
            self.first_error_offset = error.bit_offset

    def summary(self) -> str:
        """One-line human-readable digest."""
        if self.clean:
            return f"clean: {self.blocks_decoded} blocks decoded"
        return (
            f"damaged: {self.blocks_decoded} blocks decoded, "
            f"{self.blocks_lost} lost, {len(self.errors)} errors, "
            f"{self.frames_damaged}/{self.frames_total} frames damaged, "
            f"first error at bit {self.first_error_offset}"
        )
