"""Serialization of 9C encodings (.9c container) and raw test sets.

An ATE work-flow needs the compressed stream on disk together with the
decoder configuration.  The ``.9c`` container is a small line-oriented
text format:

    #9C v1
    k=8
    length=23754
    lengths=C1:1,C2:2,...          (codebook by lengths, canonical form)
    stream=0110X10...              (ternary payload; X = leftover)

The codebook travels as its length assignment only — canonical
codewords are reconstructed on load, which is exactly the information a
frequency-directed decoder needs (Table VII).

For the *uncompressed* side, :func:`save_test_set_binary` writes a raw
binary container (``.9ct``): a 13-byte header followed by one uint8
ternary code per scan cell, row-major.  Unlike the text format it can
be **memory-mapped** — :func:`memmap_stream` yields a zero-copy
read-only :class:`TernaryVector` over the payload, so a multi-GB
``T_D`` encodes in bounded RSS (each :mod:`repro.parallel` shard
touches only its own block range's pages).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .bitvec import X, TernaryVector
from .codewords import BlockCase, Codebook, canonical_codewords
from .decoder import NineCDecoder
from .encoder import Encoding

PathLike = Union[str, Path]

_MAGIC = "#9C v1"

#: Binary test-set container magic + version (``.9ct``).
BINARY_MAGIC = b"9CTS"
BINARY_VERSION = 1
_BINARY_HEADER = struct.Struct("<4sBII")  # magic, version, patterns, cells


@dataclass(frozen=True)
class BinaryTestSetHeader:
    """Parsed header of a ``.9ct`` binary test-set container."""

    num_patterns: int
    num_cells: int
    payload_offset: int

    @property
    def total_bits(self) -> int:
        """Total scan cells in the payload (|T_D|)."""
        return self.num_patterns * self.num_cells


def save_test_set_binary(test_set, path: PathLike) -> None:
    """Write a :class:`~repro.testdata.testset.TestSet` as ``.9ct``.

    The payload is the same pattern concatenation ``to_stream`` yields,
    one uint8 code per cell, so ``memmap_stream(path)`` is bit-for-bit
    ``test_set.to_stream()``.
    """
    header = _BINARY_HEADER.pack(
        BINARY_MAGIC, BINARY_VERSION,
        test_set.num_patterns, test_set.num_cells,
    )
    payload = test_set.to_stream().data.tobytes()
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(payload)


def read_binary_header(path: PathLike) -> BinaryTestSetHeader:
    """Parse and validate a ``.9ct`` header (payload size checked)."""
    target = Path(path)
    size = target.stat().st_size
    if size < _BINARY_HEADER.size:
        raise ValueError(f"{target}: too short for a .9ct header")
    with open(target, "rb") as handle:
        raw = handle.read(_BINARY_HEADER.size)
    magic, version, num_patterns, num_cells = _BINARY_HEADER.unpack(raw)
    if magic != BINARY_MAGIC:
        raise ValueError(f"{target}: not a .9ct container (bad magic)")
    if version != BINARY_VERSION:
        raise ValueError(
            f"{target}: unsupported .9ct version {version} "
            f"(expected {BINARY_VERSION})"
        )
    header = BinaryTestSetHeader(
        num_patterns=num_patterns, num_cells=num_cells,
        payload_offset=_BINARY_HEADER.size,
    )
    expected = header.payload_offset + header.total_bits
    if size != expected:
        raise ValueError(
            f"{target}: payload size mismatch "
            f"(file is {size} bytes, header implies {expected})"
        )
    return header


def memmap_stream(
    path: PathLike, *, validate: bool = False
) -> Tuple[TernaryVector, BinaryTestSetHeader]:
    """Zero-copy read-only view over a ``.9ct`` payload.

    Returns ``(stream, header)`` where ``stream`` wraps an
    ``np.memmap`` — no page of the payload is read until touched, so
    callers that process block ranges keep RSS bounded by their working
    set, not the file size.  ``validate=True`` range-checks every code,
    which pages in the whole file; leave it off for the streaming path
    (the header's size check already rejects structurally bad files,
    and the decoder rejects out-of-range symbols where they matter).
    """
    header = read_binary_header(path)
    payload = np.memmap(
        path, dtype=np.uint8, mode="r",
        offset=header.payload_offset, shape=(header.total_bits,),
    )
    if validate and payload.size and payload.max(initial=0) > X:
        raise ValueError(
            f"{path}: payload contains codes outside {{0, 1, 2}}"
        )
    return TernaryVector._wrap(payload), header


def load_test_set_binary(path: PathLike):
    """Read a ``.9ct`` container fully into a validated TestSet."""
    from ..testdata.testset import TestSet

    stream, header = memmap_stream(path, validate=True)
    # materialize off the map so the returned object owns its memory
    data = TernaryVector(np.asarray(stream.data).copy())
    return TestSet.from_stream(
        data, header.num_cells, name=Path(path).stem
    )


def dumps(encoding: Encoding) -> str:
    """Serialize an encoding to the ``.9c`` text format."""
    lengths = ",".join(
        f"{case.name}:{encoding.codebook.length(case)}" for case in BlockCase
    )
    return "\n".join([
        _MAGIC,
        f"k={encoding.k}",
        f"length={encoding.original_length}",
        f"lengths={lengths}",
        f"stream={encoding.stream.to_string()}",
        "",
    ])


def save(encoding: Encoding, path: PathLike) -> None:
    """Write an encoding to ``path``."""
    Path(path).write_text(dumps(encoding))


def loads(text: str) -> Encoding:
    """Parse the ``.9c`` text format back into an :class:`Encoding`.

    The block records are reconstructed by re-walking the stream with
    the embedded codebook, so the result is fully equivalent to the
    encoder's output (asserted by tests).
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0].strip() != _MAGIC:
        raise ValueError("not a .9c container (missing magic line)")
    fields = {}
    for line in lines[1:]:
        key, _, value = line.partition("=")
        fields[key.strip()] = value.strip()
    for required in ("k", "length", "lengths", "stream"):
        if required not in fields:
            raise ValueError(f"missing field {required!r} in .9c container")
    k = int(fields["k"])
    original_length = int(fields["length"])
    lengths = {}
    for item in fields["lengths"].split(","):
        name, _, bits = item.partition(":")
        lengths[BlockCase[name.strip()]] = int(bits)
    codebook = Codebook(canonical_codewords(lengths))
    stream = TernaryVector.from_string(fields["stream"])

    # Rebuild block records by decoding the stream structure.
    from .bitstream import TernaryStreamReader
    from .codewords import HalfKind
    from .encoder import BlockRecord

    reader = TernaryStreamReader(stream)
    blocks = []
    index = 0
    while not reader.at_end():
        offset = reader.position
        case = codebook.decode_case(reader.read_bit)
        for kind in case.halves:
            if kind is HalfKind.MISMATCH:
                reader.read_vector(k // 2)
        blocks.append(BlockRecord(index, case, offset))
        index += 1
    encoding = Encoding(
        k=k, codebook=codebook, original_length=original_length,
        stream=stream, blocks=blocks,
    )
    # sanity: the container must actually decode to `length` bits
    NineCDecoder(k, codebook).decode(encoding)
    return encoding


def load(path: PathLike) -> Encoding:
    """Read an encoding from ``path``."""
    return loads(Path(path).read_text())
