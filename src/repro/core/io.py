"""Serialization of 9C encodings (.9c container).

An ATE work-flow needs the compressed stream on disk together with the
decoder configuration.  The ``.9c`` container is a small line-oriented
text format:

    #9C v1
    k=8
    length=23754
    lengths=C1:1,C2:2,...          (codebook by lengths, canonical form)
    stream=0110X10...              (ternary payload; X = leftover)

The codebook travels as its length assignment only — canonical
codewords are reconstructed on load, which is exactly the information a
frequency-directed decoder needs (Table VII).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .bitvec import TernaryVector
from .codewords import BlockCase, Codebook, canonical_codewords
from .decoder import NineCDecoder
from .encoder import Encoding

PathLike = Union[str, Path]

_MAGIC = "#9C v1"


def dumps(encoding: Encoding) -> str:
    """Serialize an encoding to the ``.9c`` text format."""
    lengths = ",".join(
        f"{case.name}:{encoding.codebook.length(case)}" for case in BlockCase
    )
    return "\n".join([
        _MAGIC,
        f"k={encoding.k}",
        f"length={encoding.original_length}",
        f"lengths={lengths}",
        f"stream={encoding.stream.to_string()}",
        "",
    ])


def save(encoding: Encoding, path: PathLike) -> None:
    """Write an encoding to ``path``."""
    Path(path).write_text(dumps(encoding))


def loads(text: str) -> Encoding:
    """Parse the ``.9c`` text format back into an :class:`Encoding`.

    The block records are reconstructed by re-walking the stream with
    the embedded codebook, so the result is fully equivalent to the
    encoder's output (asserted by tests).
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0].strip() != _MAGIC:
        raise ValueError("not a .9c container (missing magic line)")
    fields = {}
    for line in lines[1:]:
        key, _, value = line.partition("=")
        fields[key.strip()] = value.strip()
    for required in ("k", "length", "lengths", "stream"):
        if required not in fields:
            raise ValueError(f"missing field {required!r} in .9c container")
    k = int(fields["k"])
    original_length = int(fields["length"])
    lengths = {}
    for item in fields["lengths"].split(","):
        name, _, bits = item.partition(":")
        lengths[BlockCase[name.strip()]] = int(bits)
    codebook = Codebook(canonical_codewords(lengths))
    stream = TernaryVector.from_string(fields["stream"])

    # Rebuild block records by decoding the stream structure.
    from .bitstream import TernaryStreamReader
    from .codewords import HalfKind
    from .encoder import BlockRecord

    reader = TernaryStreamReader(stream)
    blocks = []
    index = 0
    while not reader.at_end():
        offset = reader.position
        case = codebook.decode_case(reader.read_bit)
        for kind in case.halves:
            if kind is HalfKind.MISMATCH:
                reader.read_vector(k // 2)
        blocks.append(BlockRecord(index, case, offset))
        index += 1
    encoding = Encoding(
        k=k, codebook=codebook, original_length=original_length,
        stream=stream, blocks=blocks,
    )
    # sanity: the container must actually decode to `length` bits
    NineCDecoder(k, codebook).decode(encoding)
    return encoding


def load(path: PathLike) -> Encoding:
    """Read an encoding from ``path``."""
    return loads(Path(path).read_text())
