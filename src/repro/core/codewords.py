"""The 9C codebook (Table I of the paper).

A K-bit block is split into two K/2-bit halves and each half is classified
against the uniform patterns: *0-compatible* (every bit in {0, X}),
*1-compatible* (every bit in {1, X}) or *mismatch* (contains both a
specified 0 and a specified 1).  The nine resulting cases are:

====  ==========  ===========  =========================  =============
case  left half   right half   decoder input              size (bits)
====  ==========  ===========  =========================  =============
C1    0000        0000         C1                         1
C2    1111        1111         C2                         2
C3    0000        1111         C3                         5
C4    1111        0000         C4                         5
C5    0000        UUUU         C5 + right half            5 + K/2
C6    UUUU        0000         C6 + left half             5 + K/2
C7    1111        UUUU         C7 + right half            5 + K/2
C8    UUUU        1111         C8 + left half             5 + K/2
C9    UUUU        UUUU         C9 + whole block           4 + K
====  ==========  ===========  =========================  =============

The codeword lengths {1, 2, 5, 5, 5, 5, 5, 5, 4} satisfy the Kraft
inequality with equality, so a complete prefix-free code exists; the
paper's printed codeword bits are typographically corrupted, so we use the
canonical assignment (C1=0, C2=10, C9=1100, C3..C8=11010..11111).  Any
assignment with the same lengths produces identical compression ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from .bitvec import TernaryVector
from .errors import CodewordDesyncError


class HalfKind(Enum):
    """Classification of one K/2-bit half."""

    ZEROS = "0"
    ONES = "1"
    MISMATCH = "U"


class BlockCase(Enum):
    """The nine block cases of Table I, in the paper's row order."""

    C1 = 1
    C2 = 2
    C3 = 3
    C4 = 4
    C5 = 5
    C6 = 6
    C7 = 7
    C8 = 8
    C9 = 9

    @property
    def halves(self) -> Tuple[HalfKind, HalfKind]:
        """(left kind, right kind) for this case."""
        return _CASE_HALVES[self]

    @property
    def symbol(self) -> str:
        """Compact symbol used in Table I (e.g. ``0U`` for C5)."""
        left, right = self.halves
        return left.value + right.value

    @property
    def num_mismatch_halves(self) -> int:
        """How many halves are transmitted verbatim (0, 1 or 2)."""
        return sum(1 for kind in self.halves if kind is HalfKind.MISMATCH)


_CASE_HALVES: Dict[BlockCase, Tuple[HalfKind, HalfKind]] = {
    BlockCase.C1: (HalfKind.ZEROS, HalfKind.ZEROS),
    BlockCase.C2: (HalfKind.ONES, HalfKind.ONES),
    BlockCase.C3: (HalfKind.ZEROS, HalfKind.ONES),
    BlockCase.C4: (HalfKind.ONES, HalfKind.ZEROS),
    BlockCase.C5: (HalfKind.ZEROS, HalfKind.MISMATCH),
    BlockCase.C6: (HalfKind.MISMATCH, HalfKind.ZEROS),
    BlockCase.C7: (HalfKind.ONES, HalfKind.MISMATCH),
    BlockCase.C8: (HalfKind.MISMATCH, HalfKind.ONES),
    BlockCase.C9: (HalfKind.MISMATCH, HalfKind.MISMATCH),
}

#: Codeword lengths mandated by Table I, indexed by case.
PAPER_LENGTHS: Dict[BlockCase, int] = {
    BlockCase.C1: 1,
    BlockCase.C2: 2,
    BlockCase.C3: 5,
    BlockCase.C4: 5,
    BlockCase.C5: 5,
    BlockCase.C6: 5,
    BlockCase.C7: 5,
    BlockCase.C8: 5,
    BlockCase.C9: 4,
}


def canonical_codewords(
    lengths: Mapping[BlockCase, int],
) -> Dict[BlockCase, Tuple[int, ...]]:
    """Build a canonical prefix-free code for the given length assignment.

    Cases are ordered by (length, case index) and assigned consecutive
    canonical-Huffman codewords.  Raises :class:`ValueError` when the
    lengths violate the Kraft inequality.
    """
    kraft = sum(2.0 ** -length for length in lengths.values())
    if kraft > 1.0 + 1e-12:
        raise ValueError(f"lengths violate Kraft inequality (sum={kraft})")
    ordered = sorted(lengths, key=lambda c: (lengths[c], c.value))
    codewords: Dict[BlockCase, Tuple[int, ...]] = {}
    code = 0
    prev_len = 0
    for case in ordered:
        length = lengths[case]
        code <<= length - prev_len
        codewords[case] = tuple((code >> (length - 1 - i)) & 1 for i in range(length))
        code += 1
        prev_len = length
    return codewords


class Codebook:
    """A prefix-free mapping from :class:`BlockCase` to codeword bits."""

    def __init__(self, codewords: Mapping[BlockCase, Sequence[int]]):
        if set(codewords) != set(BlockCase):
            raise ValueError("codebook must define all nine cases")
        self._codewords: Dict[BlockCase, Tuple[int, ...]] = {
            case: tuple(int(b) for b in bits) for case, bits in codewords.items()
        }
        for case, bits in self._codewords.items():
            if not bits or any(b not in (0, 1) for b in bits):
                raise ValueError(f"invalid codeword for {case}: {bits}")
        self._check_prefix_free()
        self._trie = self._build_trie()

    @classmethod
    def default(cls) -> "Codebook":
        """The canonical codebook with the paper's Table I lengths."""
        return cls(canonical_codewords(PAPER_LENGTHS))

    @classmethod
    def from_lengths(cls, lengths: Mapping[BlockCase, int]) -> "Codebook":
        """Canonical codebook for an arbitrary (Kraft-feasible) length map."""
        return cls(canonical_codewords(lengths))

    def _check_prefix_free(self) -> None:
        words = sorted(self._codewords.values(), key=len)
        for i, short in enumerate(words):
            for long_word in words[i + 1 :]:
                if long_word[: len(short)] == short:
                    raise ValueError(
                        f"codebook is not prefix-free: {short} prefixes {long_word}"
                    )

    def _build_trie(self) -> dict:
        trie: dict = {}
        for case, bits in self._codewords.items():
            node = trie
            for bit in bits[:-1]:
                node = node.setdefault(bit, {})
            node[bits[-1]] = case
        return trie

    # ------------------------------------------------------------------
    def codeword(self, case: BlockCase) -> Tuple[int, ...]:
        """Codeword bits for a case."""
        return self._codewords[case]

    def length(self, case: BlockCase) -> int:
        """Codeword length for a case."""
        return len(self._codewords[case])

    @property
    def lengths(self) -> Dict[BlockCase, int]:
        """Length of every codeword, by case."""
        return {case: len(bits) for case, bits in self._codewords.items()}

    @property
    def max_length(self) -> int:
        """Longest codeword length (decoder worst-case receive cycles)."""
        return max(len(bits) for bits in self._codewords.values())

    def items(self) -> Iterable[Tuple[BlockCase, Tuple[int, ...]]]:
        """Iterate (case, codeword) pairs in case order."""
        return ((case, self._codewords[case]) for case in BlockCase)

    def decode_case(self, read_bit) -> BlockCase:
        """Consume bits via ``read_bit()`` until a codeword resolves.

        Raises :class:`~repro.core.errors.CodewordDesyncError` when the
        bits walk off the codeword trie or an X symbol appears inside a
        codeword — both symptoms of a desynchronized prefix code.
        """
        node = self._trie
        while True:
            bit = read_bit()
            if bit not in (0, 1):
                raise CodewordDesyncError(
                    f"X symbol inside a codeword (bit={bit})"
                )
            nxt = node.get(bit)
            if nxt is None:
                raise CodewordDesyncError(
                    "bit sequence is not a valid 9C codeword"
                )
            if isinstance(nxt, BlockCase):
                return nxt
            node = nxt

    def encoded_size(self, case: BlockCase, k: int) -> int:
        """Total T_E bits contributed by one ``k``-bit block of this case."""
        return len(self._codewords[case]) + (k // 2) * case.num_mismatch_halves

    def __eq__(self, other) -> bool:
        if not isinstance(other, Codebook):
            return NotImplemented
        return self._codewords == other._codewords

    def __repr__(self) -> str:
        rows = ", ".join(
            f"{case.name}={''.join(map(str, bits))}" for case, bits in self.items()
        )
        return f"Codebook({rows})"


@dataclass(frozen=True)
class CodingTableRow:
    """One row of Table I, rendered for a specific K."""

    case: BlockCase
    input_block: str
    symbol: str
    description: str
    codeword: str
    decoder_input: str
    size_bits: int


def coding_table(k: int, codebook: Codebook | None = None) -> list[CodingTableRow]:
    """Regenerate Table I for block size ``k``.

    Returns the nine rows with the same columns the paper prints
    (input block, symbol, description, codeword, decoder input, size).
    """
    if k < 2 or k % 2:
        raise ValueError("K must be an even integer >= 2")
    codebook = codebook or Codebook.default()
    half = k // 2
    repr_half = {HalfKind.ZEROS: "0" * half, HalfKind.ONES: "1" * half,
                 HalfKind.MISMATCH: "U" * half}
    describe = {HalfKind.ZEROS: "0s", HalfKind.ONES: "1s",
                HalfKind.MISMATCH: "mismatch"}
    rows = []
    for case in BlockCase:
        left, right = case.halves
        cw = "".join(map(str, codebook.codeword(case)))
        decoder_input = cw
        if case is BlockCase.C9:
            decoder_input += " + " + "U" * k
        elif case.num_mismatch_halves:
            decoder_input += " + " + "U" * half
        rows.append(
            CodingTableRow(
                case=case,
                input_block=repr_half[left] + " " + repr_half[right],
                symbol=case.symbol,
                description=f"left half {describe[left]}, right half {describe[right]}",
                codeword=cw,
                decoder_input=decoder_input,
                size_bits=codebook.encoded_size(case, k),
            )
        )
    return rows


def classify_half(half: TernaryVector) -> Tuple[bool, bool]:
    """(zero_compatible, one_compatible) flags for one half.

    Both flags are True for an all-X half; both False marks a mismatch.
    """
    return half.is_zero_compatible(), half.is_one_compatible()
