"""Bit-level stream primitives.

The compressed test set ``T_E`` produced by 9C is itself a ternary stream:
codewords are fully specified bits, but mismatch halves are copied verbatim
and may carry leftover don't-cares.  :class:`TernaryStreamWriter` therefore
accumulates {0, 1, X} symbols; :class:`TernaryStreamReader` walks them back
for software decoding and for driving the cycle-accurate decompressor
models.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .. import obs as _obs
from .bitvec import ONE, X, ZERO, TernaryVector
from .errors import StreamError, TruncatedStreamError


class TernaryStreamWriter:
    """Append-only writer of ternary symbols."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._pending: list[int] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def _flush_pending(self) -> None:
        """Convert buffered single-symbol writes into one numpy chunk."""
        if self._pending:
            self._chunks.append(np.array(self._pending, dtype=np.uint8))
            self._pending = []

    def write_bit(self, value: int) -> None:
        """Append a single symbol (0, 1 or X).

        Buffered in a plain Python list and converted to numpy lazily;
        allocating a 1-element array per symbol dominated encode time on
        large test sets.
        """
        if value not in (ZERO, ONE, X):
            raise ValueError(f"invalid ternary symbol: {value!r}")
        self._pending.append(value)
        self._length += 1

    def write_bits(self, values: Iterable[int]) -> None:
        """Append an iterable of symbols.

        Any symbol outside {0, 1, 2} raises :class:`ValueError` and
        leaves the stream untouched.  Validation happens on a wide
        integer array first — a narrow-dtype cast would let values like
        256 or -1 escape as numpy ``OverflowError`` instead of the
        documented contract.
        """
        try:
            wide = np.fromiter((int(v) for v in values), dtype=np.int64)
        except OverflowError as exc:  # beyond int64: certainly out of range
            raise ValueError("stream symbols must be in {0, 1, 2}") from exc
        if wide.size and (wide.min(initial=ZERO) < ZERO
                          or wide.max(initial=ZERO) > X):
            raise ValueError("stream symbols must be in {0, 1, 2}")
        if not wide.size:
            return
        self._flush_pending()
        self._chunks.append(wide.astype(np.uint8))
        self._length += int(wide.size)

    def write_vector(self, vec: TernaryVector) -> None:
        """Append a ternary vector's symbols.

        The symbols are copied: a caller that mutates or reuses the
        vector's buffer after writing cannot retroactively corrupt a
        later :meth:`to_vector` snapshot.
        """
        if not len(vec):
            return
        self._flush_pending()
        self._chunks.append(vec.data.copy())
        self._length += len(vec)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as ``width`` fully-specified bits, MSB first."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        bits = [(value >> (width - 1 - i)) & 1 for i in range(width)]
        self.write_bits(bits)

    def to_vector(self) -> TernaryVector:
        """Snapshot of everything written so far."""
        self._flush_pending()
        if _obs.enabled():
            # per-snapshot, never per-symbol: write_bit stays hook-free
            registry = _obs.get_registry()
            registry.counter("bitstream.writer.snapshots").inc()
            registry.counter("bitstream.writer.symbols").inc(self._length)
            registry.gauge("bitstream.writer.chunks").set(len(self._chunks))
        if not self._chunks:
            return TernaryVector(np.empty(0, dtype=np.uint8))
        return TernaryVector(np.concatenate(self._chunks))


class TernaryStreamReader:
    """Sequential reader over a ternary vector."""

    def __init__(self, stream: TernaryVector):
        self._data = stream.data
        self.position = 0

    def __len__(self) -> int:
        return int(self._data.size)

    @property
    def remaining(self) -> int:
        """Symbols left to read."""
        return int(self._data.size) - self.position

    def at_end(self) -> bool:
        """True when the stream is exhausted."""
        return self.position >= self._data.size

    def read_bit(self) -> int:
        """Read one symbol; raises :class:`TruncatedStreamError` past the end."""
        if self.at_end():
            raise TruncatedStreamError(
                "read past end of stream", bit_offset=self.position
            )
        value = int(self._data[self.position])
        self.position += 1
        return value

    def read_vector(self, n: int) -> TernaryVector:
        """Read ``n`` symbols as a vector."""
        if self.remaining < n:
            raise TruncatedStreamError(
                f"requested {n} symbols, {self.remaining} remain",
                bit_offset=self.position,
            )
        out = TernaryVector(self._data[self.position : self.position + n])
        self.position += n
        return out

    def read_uint(self, width: int) -> int:
        """Read ``width`` specified bits MSB-first as an unsigned int."""
        value = 0
        for _ in range(width):
            offset = self.position
            bit = self.read_bit()
            if bit == X:
                raise StreamError(
                    "X symbol inside an integer field", bit_offset=offset
                )
            value = (value << 1) | bit
        return value

    def peek_bit(self) -> int:
        """Look at the next symbol without consuming it."""
        if self.at_end():
            raise TruncatedStreamError(
                "peek past end of stream", bit_offset=self.position
            )
        return int(self._data[self.position])


def bits_from_int(value: int, width: int) -> tuple[int, ...]:
    """MSB-first bit tuple of ``value`` in ``width`` bits."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def int_from_bits(bits: Sequence[int]) -> int:
    """Interpret an MSB-first bit sequence as an unsigned int."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"invalid bit: {bit!r}")
        value = (value << 1) | bit
    return value
