"""Core 9C compression: ternary data, codebook, encoder, decoder, metrics."""

from .bitstream import (
    TernaryStreamReader,
    TernaryStreamWriter,
    bits_from_int,
    int_from_bits,
)
from .bitvec import ONE, X, ZERO, TernaryVector
from .codewords import (
    PAPER_LENGTHS,
    BlockCase,
    Codebook,
    CodingTableRow,
    HalfKind,
    canonical_codewords,
    classify_half,
    coding_table,
)
from .decoder import NineCDecoder, verify_roundtrip
from .encoder import BlockRecord, Encoding, Measurement, NineCEncoder
from .errors import (
    CodewordDesyncError,
    DecodeDiagnostics,
    FrameCRCError,
    FrameSyncError,
    StreamError,
    TruncatedStreamError,
)
from .adaptive import DEFAULT_MENU, AdaptiveEncoding, AdaptiveNineCEncoder
from .generalized import GeneralizedEncoder, GeneralizedMeasurement
from .io import dumps as dumps_encoding
from .io import load as load_encoding
from .io import loads as loads_encoding
from .io import save as save_encoding
from .frequency import (
    LENGTH_POOL,
    ReassignmentResult,
    assign_lengths_by_frequency,
    deviates_from_default_order,
    frequency_directed,
)
from .metrics import (
    CompressionReport,
    analytic_compressed_size,
    analytic_compression_ratio,
    best_block_size,
    report,
    sweep_block_sizes,
)

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "TernaryVector",
    "TernaryStreamReader",
    "TernaryStreamWriter",
    "bits_from_int",
    "int_from_bits",
    "BlockCase",
    "HalfKind",
    "Codebook",
    "CodingTableRow",
    "PAPER_LENGTHS",
    "canonical_codewords",
    "classify_half",
    "coding_table",
    "NineCEncoder",
    "NineCDecoder",
    "StreamError",
    "CodewordDesyncError",
    "TruncatedStreamError",
    "FrameSyncError",
    "FrameCRCError",
    "DecodeDiagnostics",
    "Encoding",
    "Measurement",
    "BlockRecord",
    "verify_roundtrip",
    "CompressionReport",
    "report",
    "sweep_block_sizes",
    "best_block_size",
    "analytic_compressed_size",
    "analytic_compression_ratio",
    "LENGTH_POOL",
    "assign_lengths_by_frequency",
    "frequency_directed",
    "deviates_from_default_order",
    "ReassignmentResult",
    "GeneralizedEncoder",
    "GeneralizedMeasurement",
    "save_encoding",
    "load_encoding",
    "dumps_encoding",
    "loads_encoding",
    "AdaptiveNineCEncoder",
    "AdaptiveEncoding",
    "DEFAULT_MENU",
]
