"""Adaptive-K 9C encoding (extension beyond the paper).

The paper fixes one K per test set and shows the optimum varies per
circuit (Tables II/VIII) and, implicitly, per *region* — dense ATPG-core
cubes want small K, sparse tails want large K.  This extension encodes
the stream in fixed-size windows, choosing the best K from a small menu
per window and spending a ceil(log2(len(menu)))-bit header on each.
The decoder remains a thin wrapper: the same nine-codeword FSM with a
reprogrammable counter limit.

Guarantee: adaptive CR is never more than (header bits) worse than the
best fixed menu K, and strictly better on heterogeneous data — the
ablation bench quantifies both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .bitstream import TernaryStreamReader, TernaryStreamWriter
from .bitvec import TernaryVector
from .codewords import Codebook, HalfKind
from .encoder import NineCEncoder

#: Default per-window K menu (2-bit headers).
DEFAULT_MENU: Tuple[int, ...] = (4, 8, 16, 32)


@dataclass
class AdaptiveEncoding:
    """Result of adaptive-K compression."""

    menu: Tuple[int, ...]
    window_bits: int
    original_length: int
    stream: TernaryVector
    window_ks: List[int]

    @property
    def header_bits_per_window(self) -> int:
        """Bits spent selecting K for each window."""
        return max(1, math.ceil(math.log2(len(self.menu))))

    @property
    def compressed_size(self) -> int:
        """|T_E| including all window headers."""
        return len(self.stream)

    @property
    def compression_ratio(self) -> float:
        """CR% = (|T_D| - |T_E|) / |T_D| * 100."""
        if self.original_length == 0:
            return 0.0
        return (self.original_length - self.compressed_size) \
            / self.original_length * 100.0

    @property
    def leftover_x(self) -> int:
        """Don't-cares surviving in the adaptive stream."""
        return self.stream.num_x


class AdaptiveNineCEncoder:
    """Windowed 9C with per-window block-size selection."""

    def __init__(
        self,
        menu: Sequence[int] = DEFAULT_MENU,
        window_bits: int = 2048,
        codebook: Optional[Codebook] = None,
    ):
        menu = tuple(menu)
        if not menu or any(k < 2 or k % 2 for k in menu):
            raise ValueError("menu must contain even block sizes >= 2")
        if len(set(menu)) != len(menu):
            raise ValueError("menu entries must be distinct")
        lcm = math.lcm(*menu)
        if window_bits % lcm:
            raise ValueError(
                f"window_bits must be a multiple of lcm(menu) = {lcm}"
            )
        self.menu = menu
        self.window_bits = window_bits
        self.codebook = codebook or Codebook.default()
        self._encoders = {k: NineCEncoder(k, self.codebook) for k in menu}

    # ------------------------------------------------------------------
    def encode(self, data: TernaryVector) -> AdaptiveEncoding:
        """Compress; each window uses its locally best K."""
        header_bits = max(1, math.ceil(math.log2(len(self.menu))))
        writer = TernaryStreamWriter()
        window_ks: List[int] = []
        for start in range(0, max(len(data), 1), self.window_bits):
            # the tail window keeps its natural length (the per-K encoder
            # pads it to a block multiple; padding it to a full window
            # would waste one bit per K pad bits)
            window = data[start : start + self.window_bits]
            best_k = min(
                self.menu,
                key=lambda k: self._encoders[k].measure(window).compressed_size,
            )
            encoding = self._encoders[best_k].encode(window)
            writer.write_uint(self.menu.index(best_k), header_bits)
            writer.write_vector(encoding.stream)
            window_ks.append(best_k)
        return AdaptiveEncoding(
            menu=self.menu,
            window_bits=self.window_bits,
            original_length=len(data),
            stream=writer.to_vector(),
            window_ks=window_ks,
        )

    def decode(self, encoding: AdaptiveEncoding) -> TernaryVector:
        """Invert :meth:`encode` (covering semantics, as plain 9C)."""
        if encoding.menu != self.menu \
                or encoding.window_bits != self.window_bits:
            raise ValueError("encoding parameters do not match this codec")
        header_bits = encoding.header_bits_per_window
        reader = TernaryStreamReader(encoding.stream)
        parts: List[TernaryVector] = []
        produced = 0
        while produced < encoding.original_length or \
                (encoding.original_length == 0 and not reader.at_end()):
            index = reader.read_uint(header_bits)
            if index >= len(self.menu):
                raise ValueError(f"invalid window header {index}")
            k = self.menu[index]
            remaining = encoding.original_length - produced
            window_length = min(self.window_bits, remaining) \
                if remaining > 0 else 0
            # the encoder padded the window to a K multiple (>= 1 block)
            target = max(k, -(-window_length // k) * k)
            window_bits_out: List[int] = []
            while len(window_bits_out) < target:
                case = self.codebook.decode_case(reader.read_bit)
                for kind in case.halves:
                    if kind is HalfKind.ZEROS:
                        window_bits_out.extend([0] * (k // 2))
                    elif kind is HalfKind.ONES:
                        window_bits_out.extend([1] * (k // 2))
                    else:
                        window_bits_out.extend(
                            reader.read_vector(k // 2)
                        )
            parts.append(TernaryVector(window_bits_out[:window_length]))
            produced += window_length
            if encoding.original_length == 0:
                break
        decoded = TernaryVector.concat(parts)
        return decoded[: encoding.original_length]
