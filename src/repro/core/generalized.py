"""Generalized segment-split block coding (the paper's §II ablation).

9C splits each K-bit block into **two** halves classified over
{0s, 1s, mismatch}, giving 3² = 9 cases.  The paper remarks that adding
more uniform block patterns "may slightly improve the compression ratio
but results in a more complicated and expensive decoder".  This module
makes that trade-off measurable: split each block into ``s`` equal
segments (3^s cases), assign codeword lengths by a Huffman build over the
measured case frequencies, and report both CR and decoder complexity
proxies (number of codewords, FSM trie states).

``segments=2`` with the paper's fixed lengths is exactly 9C; the ablation
bench sweeps s ∈ {1, 2, 4} to reproduce the sweet-spot argument.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .bitvec import ONE, X, ZERO, TernaryVector

SegmentKinds = Tuple[str, ...]  # e.g. ("0", "U") — one kind per segment


def _huffman_lengths(frequencies: Dict[SegmentKinds, int]) -> Dict[SegmentKinds, int]:
    """Optimal codeword lengths for the observed case frequencies.

    Local implementation (rather than reusing :mod:`repro.codes.huffman`)
    to keep ``repro.core`` free of dependencies on the baselines package.
    """
    import heapq

    items = [(freq, i, [case]) for i, (case, freq) in
             enumerate(sorted(frequencies.items()))]
    if not items:
        return {}
    if len(items) == 1:
        return {items[0][2][0]: 1}
    lengths = {case: 0 for _f, _i, cases in items for case in cases}
    heapq.heapify(items)
    counter = len(items)
    while len(items) > 1:
        fa, _, cases_a = heapq.heappop(items)
        fb, _, cases_b = heapq.heappop(items)
        for case in cases_a + cases_b:
            lengths[case] += 1
        heapq.heappush(items, (fa + fb, counter, cases_a + cases_b))
        counter += 1
    return lengths


@dataclass(frozen=True)
class GeneralizedMeasurement:
    """Size accounting for one generalized encoding."""

    k: int
    segments: int
    original_length: int
    compressed_size: int
    num_codewords: int
    case_counts: Dict[SegmentKinds, int]

    @property
    def compression_ratio(self) -> float:
        """CR% = (|T_D| - |T_E|) / |T_D| * 100."""
        if self.original_length == 0:
            return 0.0
        return (self.original_length - self.compressed_size) \
            / self.original_length * 100.0

    @property
    def trie_states(self) -> int:
        """Decoder FSM complexity proxy: internal trie nodes + idle."""
        return self.num_codewords  # one accepting path per codeword


class GeneralizedEncoder:
    """Segment-split coder with frequency-derived codeword lengths."""

    def __init__(self, k: int, segments: int = 2):
        if segments < 1:
            raise ValueError("need at least one segment")
        if k < segments or k % segments:
            raise ValueError("K must be a positive multiple of segments")
        self.k = k
        self.segments = segments
        self.segment_bits = k // segments

    # ------------------------------------------------------------------
    def classify(self, data: TernaryVector) -> List[SegmentKinds]:
        """Per-block cheapest-case classification (0/1 preferred over U)."""
        padded = self._pad(data)
        grid = padded.data.reshape(-1, self.segments, self.segment_bits)
        has0 = np.any(grid == ZERO, axis=2)
        has1 = np.any(grid == ONE, axis=2)
        cases: List[SegmentKinds] = []
        for block in range(grid.shape[0]):
            kinds = []
            for seg in range(self.segments):
                if not has1[block, seg]:
                    kinds.append("0")
                elif not has0[block, seg]:
                    kinds.append("1")
                else:
                    kinds.append("U")
            cases.append(tuple(kinds))
        return cases

    def measure(self, data: TernaryVector) -> GeneralizedMeasurement:
        """Compressed size with per-data optimal codeword lengths.

        Codeword lengths come from a Huffman build over the observed case
        frequencies (cases never observed get no codeword; a real design
        would reserve escape space, so this is an optimistic bound — fine
        for the ablation's direction-of-effect argument).
        """
        cases = self.classify(data)
        counts = Counter(cases)
        lengths = _huffman_lengths(dict(counts))
        payload_per_u = self.segment_bits
        size = 0
        for case, count in counts.items():
            mismatches = sum(1 for kind in case if kind == "U")
            size += count * (lengths[case] + mismatches * payload_per_u)
        return GeneralizedMeasurement(
            k=self.k,
            segments=self.segments,
            original_length=len(data),
            compressed_size=size,
            num_codewords=len(counts),
            case_counts=dict(counts),
        )

    def _pad(self, data: TernaryVector) -> TernaryVector:
        if len(data) % self.k == 0 and len(data) > 0:
            return data
        target = max(self.k, ((len(data) + self.k - 1) // self.k) * self.k)
        return data.padded(target, X)
